//! A full distributed auction over real TCP sockets.
//!
//! Three provider threads bring up a loopback TCP mesh — every frame
//! crosses the kernel network stack, exactly as it would between hosts
//! on a LAN — and each drives its own `SessionEngine` to a decision. The
//! engines cannot tell this transport from the in-process one; outcomes
//! match `cargo run --example quickstart` bid-for-bid.
//!
//! ```text
//! cargo run --release --example tcp_market
//! ```

use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::{drive, DoubleAuctionProgram, FrameworkConfig, SessionEngine};
use dauctioneer::net::TcpMesh;
use dauctioneer::types::{BidVector, Bw, Money, ProviderAsk, ProviderId, UserBid, UserId};

fn main() {
    // Three gateway owners jointly simulate the auctioneer (k = 1), this
    // time talking over real sockets.
    let m = 3;
    let cfg = FrameworkConfig::new(m, 1, 4, 2);

    // Four users bid for bandwidth at two gateways.
    let bids = BidVector::builder(4, 2)
        .user_bid(0, UserBid::new(Money::from_f64(1.20), Bw::from_f64(0.6)))
        .user_bid(1, UserBid::new(Money::from_f64(1.05), Bw::from_f64(0.4)))
        .user_bid(2, UserBid::new(Money::from_f64(0.90), Bw::from_f64(0.7)))
        .user_bid(3, UserBid::new(Money::from_f64(0.80), Bw::from_f64(0.3)))
        .provider_ask(0, ProviderAsk::new(Money::from_f64(0.15), Bw::from_f64(1.0)))
        .provider_ask(1, ProviderAsk::new(Money::from_f64(0.45), Bw::from_f64(1.0)))
        .build();

    // Bring up the socket mesh: m listeners, one TCP connection per
    // provider pair, established concurrently.
    let mut mesh = TcpMesh::loopback(m).expect("bring up loopback TCP mesh");
    let metrics = mesh.metrics();
    let endpoints = mesh.take_endpoints();
    println!("TCP mesh up: {m} providers, {} connections", m * (m - 1) / 2);

    // One thread per provider, as on real hardware: build the engine,
    // drive it over the socket endpoint until it decides (or the
    // deadline forces ⊥).
    let engines =
        SessionEngine::roster(&cfg, &Arc::new(DoubleAuctionProgram::new()), vec![bids; m], 42);
    let handles: Vec<_> = engines
        .into_iter()
        .zip(endpoints)
        .map(|(mut engine, mut endpoint)| {
            std::thread::spawn(move || {
                let outcome = drive(&mut engine, &mut endpoint, Duration::from_secs(60));
                (engine.me(), outcome)
            })
        })
        .collect();

    let outcomes: Vec<_> =
        handles.into_iter().map(|h| h.join().expect("provider thread")).collect();
    let snapshot = metrics.snapshot();
    println!(
        "session finished: {} messages, {} bytes over TCP",
        snapshot.total_messages(),
        snapshot.total_bytes()
    );

    // Definition 1: the auction stands iff every provider decided the
    // same valid pair.
    let unanimous = dauctioneer::core::unanimous(outcomes.iter().map(|(_, o)| Some(o)));
    for (who, outcome) in &outcomes {
        println!("  {who}: {}", if outcome.is_abort() { "⊥" } else { "agreed" });
    }
    let Some(result) = unanimous.as_result() else {
        println!("outcome: ⊥ (aborted)");
        return;
    };
    println!("outcome: agreed allocation");
    for user in UserId::all(4) {
        let got = result.allocation.user_total(user);
        let paid = result.payments.user_payment(user);
        println!("  {user}: allocated {got} bandwidth units, pays {paid}");
    }
    for provider in ProviderId::all(2) {
        let sold = result.allocation.provider_total(provider);
        let revenue = result.payments.provider_revenue(provider);
        println!("  {provider}: serves {sold} bandwidth units, receives {revenue}");
    }
    assert!(result.payments.is_budget_balanced());
}
