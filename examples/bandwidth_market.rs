//! The paper's case study (§5): gateway-bandwidth reservation in a
//! community network.
//!
//! Eight gateway owners (the community members with Internet uplinks)
//! jointly run the auctioneer for a double auction over their uplink
//! bandwidth, under the §6.2 workload, with realistic community-network
//! link latencies simulated by the discrete-event runtime.
//!
//! ```text
//! cargo run --release --example bandwidth_market
//! ```

use std::sync::Arc;

use dauctioneer::core::{DoubleAuctionProgram, FrameworkConfig};
use dauctioneer::mechanisms::baselines::double_welfare;
use dauctioneer::sim::{run_timed_auction, LinkModel};
use dauctioneer::types::ProviderId;
use dauctioneer::workload::DoubleAuctionWorkload;

fn main() {
    let gateways = 8; // providers: community members with Internet uplinks
    let households = 120; // users requesting bandwidth reservations
    let k = 2; // tolerate coalitions of up to 2 gateway owners
    let simulators = 5; // 2k+1 gateways run the simulation (§6.2)

    println!(
        "community network: {households} households bidding for uplink at {gateways} gateways"
    );
    println!("distributed auctioneer: {simulators} simulators, coalition bound k = {k}\n");

    let bids = DoubleAuctionWorkload::new(households, gateways, 2024).generate();
    let cfg = FrameworkConfig::new(simulators, k, households, gateways);

    let report = run_timed_auction(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids.clone(); simulators],
        LinkModel::community_net(),
        7,
    );

    let outcome = report.unanimous();
    let Some(result) = outcome.as_result() else {
        println!("outcome: ⊥ — the auction is void");
        return;
    };

    let winners = result.allocation.winners();
    println!(
        "auction cleared in {:?} (virtual time over community-network links)",
        report.span.expect("all gateways decided")
    );
    println!("traffic: {} messages, {} bytes across the mesh", report.messages, report.bytes);
    println!(
        "{} of {households} households receive bandwidth; social welfare = {}",
        winners.len(),
        double_welfare(&bids, &result.allocation)
    );
    println!("budget surplus kept by the community fund: {}\n", result.payments.budget_surplus());

    println!("per-gateway load:");
    for gw in ProviderId::all(gateways) {
        let sold = result.allocation.provider_total(gw);
        let cap = bids.provider_ask(gw).capacity();
        let revenue = result.payments.provider_revenue(gw);
        let pct = if cap.is_zero() { 0.0 } else { 100.0 * sold.as_f64() / cap.as_f64() };
        println!("  {gw}: {sold} / {cap} units ({pct:.0}% utilised), revenue {revenue}");
    }
    assert!(result.payments.is_budget_balanced());
}
