//! Misbehaving participants and what the framework does about them.
//!
//! Three scenarios on the same auction:
//!
//! 1. an **equivocating bidder** sends different bids to different
//!    providers — bid agreement still converges, and consistent bidders'
//!    bids survive verbatim (validity, §4.1);
//! 2. a **silent bidder** reaches only one provider — consensus resolves
//!    its slot one way or the other, identically everywhere;
//! 3. an **equivocating provider** tampers with its protocol messages —
//!    the deviation is detected and the outcome collapses to ⊥, so the
//!    deviator gains nothing (k-resilience, §3.3).
//!
//! ```text
//! cargo run --release --example byzantine_bidders
//! ```

use std::sync::Arc;

use dauctioneer::core::{DoubleAuctionProgram, FrameworkConfig};
use dauctioneer::sim::{run_auction_sim, Behavior, Equivocate, SchedulePolicy};
use dauctioneer::types::{BidVector, Bw, Money, ProviderAsk, ProviderId, UserBid, UserId};

fn base_bids(valuation_of_user0: f64) -> BidVector {
    BidVector::builder(3, 2)
        .user_bid(0, UserBid::new(Money::from_f64(valuation_of_user0), Bw::from_f64(0.5)))
        .user_bid(1, UserBid::new(Money::from_f64(1.0), Bw::from_f64(0.5)))
        .user_bid(2, UserBid::new(Money::from_f64(0.8), Bw::from_f64(0.5)))
        .provider_ask(0, ProviderAsk::new(Money::from_f64(0.1), Bw::from_f64(1.0)))
        .provider_ask(1, ProviderAsk::new(Money::from_f64(0.5), Bw::from_f64(1.0)))
        .build()
}

fn main() {
    let m = 3;
    let cfg = FrameworkConfig::new(m, 1, 3, 2);
    let program = Arc::new(DoubleAuctionProgram::new());

    // 1. Equivocating bidder: user 0 tells each provider a different
    //    valuation. Bid agreement must still converge.
    println!("— scenario 1: user 0 equivocates across providers —");
    let views: Vec<BidVector> = (0..m).map(|j| base_bids(1.1 + 0.05 * j as f64)).collect();
    let report = run_auction_sim(
        &cfg,
        Arc::clone(&program),
        views,
        vec![None, None, None],
        SchedulePolicy::SeededRandom(1),
        11,
    );
    let outcome = report.unanimous();
    println!("  unanimous outcome reached: {}", !outcome.is_abort());
    if let Some(result) = outcome.as_result() {
        // Users 1 and 2 were consistent; their slots survived verbatim, so
        // the auction proceeds for them regardless of user 0's games.
        println!("  consistent user 1 allocated: {}", result.allocation.user_total(UserId(1)));
    }

    // 2. Silent bidder: user 0's bid reached only provider 0.
    println!("— scenario 2: user 0's bid reached only provider 0 —");
    let mut views = vec![base_bids(1.1)];
    views.push(base_bids(1.1).with_user_entry(UserId(0), Default::default()));
    views.push(base_bids(1.1).with_user_entry(UserId(0), Default::default()));
    let report = run_auction_sim(
        &cfg,
        Arc::clone(&program),
        views,
        vec![None, None, None],
        SchedulePolicy::SeededRandom(2),
        22,
    );
    let outcome = report.unanimous();
    println!("  unanimous outcome reached: {}", !outcome.is_abort());

    // 3. Equivocating provider: provider 2 tampers with what it sends to
    //    provider 0. Detection ⇒ ⊥ ⇒ deviator utility 0.
    println!("— scenario 3: provider 2 equivocates at the protocol level —");
    let views: Vec<BidVector> = (0..m).map(|_| base_bids(1.1)).collect();
    let behaviors: Vec<Option<Box<dyn Behavior>>> =
        vec![None, None, Some(Box::new(Equivocate { victim: ProviderId(0) }))];
    let report = run_auction_sim(
        &cfg,
        Arc::clone(&program),
        views,
        behaviors,
        SchedulePolicy::SeededRandom(3),
        33,
    );
    println!("  outcome is ⊥ (deviation detected): {}", report.unanimous().is_abort());
    println!("  ⇒ under solution preference, deviating is never profitable.");
}
