//! A continuous bandwidth market: the open-world counterpart of
//! `bandwidth_market.rs`.
//!
//! Everything else in `examples/` is one-shot — bids exist, one auction
//! runs, threads die. Here the *market* is the long-lived thing: a
//! [`MarketService`] brings up a persistent 3-provider mesh once, two
//! independent gateway-town populations stream bids at it from their own
//! threads through cloned [`MarketHandle`]s, and the service decides
//! when to clear — every 6 accepted bids or 150 ms, whichever comes
//! first. Each closed epoch is one full paper session (bid agreement →
//! validation → replicated allocation) over the same mesh as every
//! other epoch.
//!
//! Run with: `cargo run --example continuous_market`

use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::DoubleAuctionProgram;
use dauctioneer::market::{EpochPolicy, MarketConfig, MarketService};
use dauctioneer::types::{Bw, Money, Outcome, ProviderAsk};
use dauctioneer::workload::ArrivalProcess;

fn main() {
    // Three gateway owners (k = 1 tolerated coalition) jointly run the
    // market for 12 user slots; each attaches its ask to every epoch.
    let config = MarketConfig::new(3, 1, 12, 3)
        .with_epoch(EpochPolicy::Hybrid { count: 6, max_wait: Duration::from_millis(150) })
        .with_asks(vec![
            ProviderAsk::new(Money::from_f64(0.10), Bw::from_f64(0.8)),
            ProviderAsk::new(Money::from_f64(0.18), Bw::from_f64(0.8)),
            ProviderAsk::new(Money::from_f64(0.30), Bw::from_f64(0.8)),
        ]);
    let mut market = MarketService::start(config, Arc::new(DoubleAuctionProgram::new()))
        .expect("valid market configuration");
    let outcomes = market.take_outcomes().expect("single subscriber");

    // Two towns' worth of bidders, each a clone of the handle on its own
    // thread: a bursty Poisson population and a steady uniform one.
    let feeders: Vec<_> = [
        ArrivalProcess::poisson(12, 300.0, 7),
        ArrivalProcess::uniform(12, Duration::from_millis(2), Duration::from_millis(6), 11),
    ]
    .into_iter()
    .enumerate()
    .map(|(town, process)| {
        let handle = market.handle();
        std::thread::spawn(move || {
            let mut submitted = 0u32;
            process.replay_paced(40, |arrival| {
                if handle.submit_bid(arrival.user, arrival.bid).is_ok() {
                    submitted += 1;
                }
                true
            });
            println!("town {town}: streamed {submitted} bids");
            submitted
        })
    })
    .collect();

    // Watch the market clear while the towns are still bidding.
    let mut watched = 0;
    while watched < 8 {
        match outcomes.recv_timeout(Duration::from_secs(5)) {
            Ok(epoch) => {
                watched += 1;
                match &epoch.outcome {
                    Outcome::Agreed(result) => println!(
                        "epoch {:>2} ({}): {} bids → {} winners, volume {}, cleared in {:?}",
                        epoch.epoch,
                        epoch.session,
                        epoch.accepted_bids,
                        result.allocation.winners().len(),
                        result.allocation.total(),
                        epoch.latency,
                    ),
                    Outcome::Abort => {
                        println!("epoch {:>2} ({}): ⊥", epoch.epoch, epoch.session)
                    }
                }
            }
            Err(_) => break, // towns done and queue drained
        }
    }

    for f in feeders {
        let _ = f.join();
    }
    // Drain-then-shutdown: whatever the towns queued after the last
    // printed epoch still becomes a final epoch before the mesh goes.
    let stats = market.shutdown();
    println!(
        "market closed: {} epochs, {:.1} sessions/s sustained, p50 {:?} / p99 {:?}, \
         {} bids accepted / {} rejected as duplicates, {} worker threads for the whole run",
        stats.epochs_closed,
        stats.sessions_per_sec,
        stats.epoch_latency_p50,
        stats.epoch_latency_p99,
        stats.bids_accepted,
        stats.bids_rejected_duplicate,
        stats.worker_threads,
    );
    assert!(stats.epochs_closed >= 8, "two towns' bids must close several epochs");
}
