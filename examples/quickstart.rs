//! Quickstart: run a fully distributed double auction among three
//! providers and print the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use dauctioneer::core::{run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions};
use dauctioneer::types::{BidVector, Bw, Money, ProviderAsk, ProviderId, UserBid, UserId};

fn main() {
    // Three gateway owners jointly simulate the auctioneer (k = 1: any
    // single provider may deviate without being able to cheat the rest).
    let m = 3;
    let cfg = FrameworkConfig::new(m, 1, 4, 2);

    // Four users bid for bandwidth at two gateways.
    let bids = BidVector::builder(4, 2)
        .user_bid(0, UserBid::new(Money::from_f64(1.20), Bw::from_f64(0.6)))
        .user_bid(1, UserBid::new(Money::from_f64(1.05), Bw::from_f64(0.4)))
        .user_bid(2, UserBid::new(Money::from_f64(0.90), Bw::from_f64(0.7)))
        .user_bid(3, UserBid::new(Money::from_f64(0.80), Bw::from_f64(0.3)))
        .provider_ask(0, ProviderAsk::new(Money::from_f64(0.15), Bw::from_f64(1.0)))
        .provider_ask(1, ProviderAsk::new(Money::from_f64(0.45), Bw::from_f64(1.0)))
        .build();

    // Every provider collected the same bids; the protocol agrees on them,
    // validates the agreement, and replicates the allocation algorithm.
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids.clone(); m],
        &RunOptions::default(),
    );

    let outcome = report.unanimous();
    println!(
        "session finished in {:?} using {} messages",
        report.elapsed,
        report.traffic.total_messages()
    );
    let Some(result) = outcome.as_result() else {
        println!("outcome: ⊥ (aborted)");
        return;
    };
    println!("outcome: agreed allocation");
    for user in UserId::all(4) {
        let got = result.allocation.user_total(user);
        let paid = result.payments.user_payment(user);
        println!("  {user}: allocated {got} bandwidth units, pays {paid}");
    }
    for provider in ProviderId::all(2) {
        let sold = result.allocation.provider_total(provider);
        let revenue = result.payments.provider_revenue(provider);
        println!("  {provider}: serves {sold} bandwidth units, receives {revenue}");
    }
    println!("budget surplus (buyers pay − sellers receive): {}", result.payments.budget_surplus());
    assert!(result.payments.is_budget_balanced());
}
