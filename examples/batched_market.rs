//! A batched bandwidth marketplace: many concurrent double-auction
//! sessions — one per resource pool — multiplexed over one shared
//! provider mesh.
//!
//! Every frame carries its session tag, so the same three providers can
//! clear eight independent markets at once over one transport; the batch
//! report makes throughput (sessions per second) a first-class number.
//!
//! Run with: `cargo run --example batched_market`

use std::sync::Arc;

use dauctioneer::core::{
    run_batch, BatchSession, DoubleAuctionProgram, FrameworkConfig, RunOptions,
};
use dauctioneer::types::SessionId;
use dauctioneer::workload::DoubleAuctionWorkload;

fn main() {
    let m = 3; // providers jointly simulating the auctioneer
    let k = 1; // tolerated coalition size (m > 2k)
    let n_users = 12; // bidders per market
    let cfg = FrameworkConfig::new(m, k, n_users, m);

    // Eight independent markets, each with its own workload.
    let sessions: Vec<BatchSession> = (0..8)
        .map(|pool| {
            let bids = DoubleAuctionWorkload::new(n_users, m, 1_000 + pool).generate();
            BatchSession::uniform(SessionId(pool), bids, m, 42 + pool)
        })
        .collect();

    println!("clearing {} markets over one {m}-provider mesh…", sessions.len());
    let report =
        run_batch(&cfg, Arc::new(DoubleAuctionProgram::new()), sessions, &RunOptions::default());

    for session in &report.sessions {
        let outcome = session.unanimous();
        match outcome.as_result() {
            Some(result) => println!(
                "  {}: {} winners, total allocated {}, payments {}",
                session.session,
                result.allocation.winners().len(),
                result.allocation.total(),
                result.payments.total_user_payments(),
            ),
            None => println!("  {}: ⊥ (aborted)", session.session),
        }
    }
    println!(
        "batch: {} sessions in {:?} → {:.1} sessions/sec, {} messages on the wire",
        report.sessions.len(),
        report.elapsed,
        report.sessions_per_sec(),
        report.traffic.total_messages(),
    );
    assert!(report.all_agreed(), "every market should clear");
}
