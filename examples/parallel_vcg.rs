//! Parallelising the VCG standard auction (§5.2.2 / Algorithm 1).
//!
//! Runs the same computation-heavy standard auction three ways — as a
//! centralised trusted auctioneer, and distributed with p = 2 and p = 4
//! parallel payment groups — and prints the timing comparison, the
//! miniature version of the paper's Figure 5 experiment.
//!
//! ```text
//! cargo run --release --example parallel_vcg
//! ```

use std::sync::Arc;
use std::time::Instant;

use dauctioneer::core::{FrameworkConfig, StandardAuctionProgram};
use dauctioneer::mechanisms::solver::BranchBoundConfig;
use dauctioneer::mechanisms::{Mechanism, SharedRng, StandardAuction, StandardAuctionConfig};
use dauctioneer::sim::{run_timed_auction, LinkModel};
use dauctioneer::workload::StandardAuctionWorkload;

fn main() {
    let n = 60; // users
    let m = 8; // providers (capacity holders and simulators)
    let (bids, capacities) = StandardAuctionWorkload::new(n, m, 99).generate();
    let auction = StandardAuction::new(StandardAuctionConfig {
        capacities,
        solver: BranchBoundConfig {
            epsilon_ppm: 10_000, // ε = 1%
            max_nodes: 500_000,  // search budget per solve
            shuffle_providers: true,
        },
    });

    // Centralised run (p = 1): one machine does everything.
    let started = Instant::now();
    let central = auction.run(&bids, &SharedRng::from_material(b"example"));
    let central_time = started.elapsed();
    let winners = central.allocation.winners().len();
    println!("standard auction: n = {n} users, m = {m} providers, {winners} winners");
    println!(
        "p=1 centralised: {central_time:?} (1 allocation solve + {winners} VCG payment solves)"
    );

    // Distributed runs: the payment solves spread across provider groups.
    for (k, label) in [(3usize, "p=2 (k=3)"), (1usize, "p=4 (k=1)")] {
        let cfg = FrameworkConfig::new(m, k, n, 0);
        let report = run_timed_auction(
            &cfg,
            Arc::new(StandardAuctionProgram::new(auction.clone())),
            vec![bids.clone(); m],
            LinkModel::community_net(),
            42,
        );
        let outcome = report.unanimous();
        assert!(!outcome.is_abort(), "honest run must not abort");
        let span = report.span.expect("all providers decided");
        println!(
            "{label}: {span:?} (virtual wall-clock, {} groups × ≥{} replicas each)",
            cfg.parallelism(),
            k + 1
        );
        // The distributed outcome pays the same winners (same agreed bids,
        // same coin-driven solver budget — welfare may differ only within ε).
        let result = outcome.as_result().unwrap();
        assert_eq!(result.allocation.num_users(), n);
    }
    println!("\nthe distributed runs beat the centralised one because the VCG payment");
    println!("computations (one NP-hard solve per winner) run in parallel groups,");
    println!("while the framework's agreement overhead stays in the milliseconds.");
}
