//! `dauction` — command-line driver for distributed auction runs.
//!
//! A small operational tool over the library. Two modes:
//!
//! * **one-shot** (default): generate a paper-§6 workload, run the
//!   chosen auction under the chosen runtime once, print the outcome.
//! * **`serve`**: run the continuous market daemon — a persistent
//!   provider mesh clearing epoch after epoch from a seeded open-world
//!   arrival stream, printing each epoch's outcome as it closes.
//! * **`coordinator`** / **`provider`**: the real multi-process
//!   deployment — an m-provider market as m+1 OS processes over real
//!   sockets, with peer liveness, `PeerDown` epoch aborts, and
//!   rejoin-at-epoch-boundary for restarted providers.
//! * **`verify-log`**: walk a journal's hash-chained settlement log
//!   offline and certify it (exit 1 naming the first divergent seal on
//!   tamper).
//! * **`flight-dump`**: pretty-print a crash flight-recorder dump (the
//!   JSON a SIGUSR1 or a fail-stop journal error writes).
//!
//! ```text
//! dauction [--auction double|standard] [--mechanism SPEC] [--n USERS] [--m PROVIDERS]
//!          [--k COALITION] [--seed SEED] [--runtime threads|des] [--latency zero|community]
//!          [--epsilon PPM] [--budget NODES]
//! dauction serve [--mechanism SPEC] [--rate BIDS_PER_SEC] [--epochs E] [--epoch-bids N]
//!          [--epoch-ms D] [--n USERS] [--m PROVIDERS] [--k COALITION] [--seed SEED]
//!          [--transport inproc|tcp] [--shards S] [--chaos SPEC]
//!          [--journal PATH] [--fsync always|never|every=N] [--recover]
//!          [--metrics-addr HOST:PORT] [--flight-path PATH] [--heartbeat-ms D]
//! dauction coordinator --listen HOST:PORT --providers M [--k COALITION] [--n USERS]
//!          [--epochs E] [--seed SEED] [--deadline-ms D] [--mesh-budget-ms D]
//!          [--join-timeout-ms D] [--epoch-ms D] [--journal PATH]
//!          [--fsync always|never|every=N] [--metrics-addr HOST:PORT]
//! dauction provider --id K --join HOST:PORT [--mesh-listen HOST:PORT]
//!          [--heartbeat-ms D] [--backoff-base-ms D] [--backoff-cap-ms D]
//!          [--reconnect-budget N]
//! dauction verify-log <PATH>
//! dauction flight-dump <PATH>
//! ```
//!
//! `--mechanism` selects the clearing mechanism by spec:
//! `double | standard[,eps=PPM] | combinatorial[,budget=NODES] |
//! divisible[,beta=PRICE]`. In one-shot mode it supersedes `--auction`;
//! in `serve` it decides what every epoch clears with, is stamped on
//! every epoch outcome and journal seal, and `--recover` refuses a
//! journal sealed under a different mechanism.
//!
//! `--chaos` injects seeded link faults into the persistent mesh; the
//! spec is the `key=value` format of `FaultPlan` (e.g.
//! `drop=0.05,dup=0.01,delay=0.2,delay-ms=1..10,corrupt=0.01,seed=7`).
//! The end-of-run summary then reports survivability: epochs cleared
//! vs ⊥-aborted under the plan.
//!
//! `--journal` arms the write-ahead epoch journal: accepted bids hit the
//! disk before they count, every cleared epoch is sealed onto a SHA-256
//! settlement chain. `--recover` resumes an existing journal after a
//! crash, re-clearing unsealed epochs to byte-identical outcomes
//! (`--recover --epochs 0` recovers, reports, and exits).
//!
//! `--metrics-addr` serves every market/net/chaos/journal counter in the
//! Prometheus text exposition format (`curl http://HOST:PORT/metrics`).
//! While serving, `kill -USR1 <pid>` dumps the crash flight recorder —
//! the last N structured market events — as JSON to `--flight-path` (or
//! stdout); a fail-stop journal error writes the same dump on its way
//! down. `--heartbeat-ms` prints a one-line stats heartbeat at that
//! cadence (0 disables; default 2000).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::{
    run_session, DoubleAuctionProgram, DynProgram, FrameworkConfig, RunOptions,
    StandardAuctionProgram, TransportKind,
};
use dauctioneer::market::{
    register_market_metrics, verify_log, EpochPolicy, FsyncPolicy, JournalConfig, MarketConfig,
    MarketService, MechanismSpec,
};
use dauctioneer::mechanisms::solver::BranchBoundConfig;
use dauctioneer::mechanisms::{StandardAuction, StandardAuctionConfig};
use dauctioneer::net::LatencyModel;
use dauctioneer::sim::{run_timed_auction, LinkModel};
use dauctioneer::telemetry::{FlightDump, MetricsServer, Registry};
use dauctioneer::types::{Outcome, ProviderId, UserId};
use dauctioneer::workload::{
    epoch_supply, ArrivalProcess, DoubleAuctionWorkload, StandardAuctionWorkload,
};

#[derive(Debug, Clone)]
struct Args {
    auction: String,
    mechanism: Option<String>,
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    runtime: String,
    latency: String,
    epsilon_ppm: u32,
    budget: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            auction: "double".into(),
            mechanism: None,
            n: 50,
            m: 3,
            k: 1,
            seed: 42,
            runtime: "threads".into(),
            latency: "zero".into(),
            epsilon_ppm: 10_000,
            budget: 200_000,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if flag == "--help" || flag == "-h" {
                return Err(HELP.to_string());
            }
            let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
            match flag {
                "--auction" => args.auction = value.clone(),
                "--mechanism" => args.mechanism = Some(value.clone()),
                "--n" => args.n = value.parse().map_err(|e| format!("--n: {e}"))?,
                "--m" => args.m = value.parse().map_err(|e| format!("--m: {e}"))?,
                "--k" => args.k = value.parse().map_err(|e| format!("--k: {e}"))?,
                "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
                "--runtime" => args.runtime = value.clone(),
                "--latency" => args.latency = value.clone(),
                "--epsilon" => {
                    args.epsilon_ppm = value.parse().map_err(|e| format!("--epsilon: {e}"))?
                }
                "--budget" => args.budget = value.parse().map_err(|e| format!("--budget: {e}"))?,
                other => return Err(format!("unknown flag {other}\n{HELP}")),
            }
            i += 2;
        }
        Ok(args)
    }
}

const HELP: &str = "usage: dauction [--auction double|standard] [--mechanism SPEC] [--n USERS] \
[--m PROVIDERS] [--k COALITION] [--seed SEED] [--runtime threads|des] \
[--latency zero|community] [--epsilon PPM] [--budget NODES]\n       dauction serve \
[--mechanism SPEC] [--rate BIDS_PER_SEC] [--epochs E] \
[--epoch-bids N] [--epoch-ms D] [--n USERS] [--m PROVIDERS] [--k COALITION] [--seed SEED] \
[--transport inproc|tcp] [--shards S] [--deadline-ms D] [--chaos drop=P,dup=P,reorder=P,\
delay=P,delay-ms=A..B,corrupt=P,seed=S,hold-ms=H] [--journal PATH] \
[--fsync always|never|every=N] [--recover] [--metrics-addr HOST:PORT] [--flight-path PATH] \
[--heartbeat-ms D]\n       dauction coordinator --listen HOST:PORT --providers M [--k COALITION] \
[--n USERS] [--epochs E] [--seed SEED] [--deadline-ms D] [--mesh-budget-ms D] \
[--join-timeout-ms D] [--epoch-ms D] [--journal PATH] [--fsync always|never|every=N] \
[--metrics-addr HOST:PORT]\n       dauction provider --id K --join HOST:PORT \
[--mesh-listen HOST:PORT] [--heartbeat-ms D] [--backoff-base-ms D] [--backoff-cap-ms D] \
[--reconnect-budget N]\n       dauction verify-log PATH\n       dauction flight-dump PATH\n\
mechanism SPEC: double | standard[,eps=PPM] | combinatorial[,budget=NODES] | \
divisible[,beta=PRICE]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        match serve_main(&argv[1..]) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    if argv.first().map(String::as_str) == Some("coordinator") {
        match coordinator_main(&argv[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    if argv.first().map(String::as_str) == Some("provider") {
        match provider_main(&argv[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    if argv.first().map(String::as_str) == Some("verify-log") {
        std::process::exit(verify_log_main(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("flight-dump") {
        std::process::exit(flight_dump_main(&argv[1..]));
    }
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // `--mechanism SPEC` supersedes the legacy `--auction` selector and
    // reaches all four mechanisms through the same grammar `serve` uses.
    let spec: Option<MechanismSpec> = match &args.mechanism {
        Some(text) => match text.parse() {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    println!(
        "dauction: {} auction, n={} users, m={} providers, k={} (p={})",
        spec.as_ref().map_or(args.auction.as_str(), |s| s.name()),
        args.n,
        args.m,
        args.k,
        args.m / (args.k + 1)
    );

    let (outcome, elapsed_label, elapsed) = match (spec, args.auction.as_str()) {
        (Some(MechanismSpec::Double), _) | (None, "double") => {
            let bids = DoubleAuctionWorkload::new(args.n, args.m, args.seed).generate();
            let cfg = FrameworkConfig::new(args.m, args.k, args.n, args.m);
            run(&args, cfg, Arc::new(DoubleAuctionProgram::new()), vec![bids; args.m])
        }
        (Some(spec), _) => {
            let (bids, capacities) =
                StandardAuctionWorkload::new(args.n, args.m, args.seed).generate();
            let program = DynProgram::new(spec.build_program(capacities));
            let cfg = FrameworkConfig::new(args.m, args.k, args.n, 0);
            run(&args, cfg, Arc::new(program), vec![bids; args.m])
        }
        (None, "standard") => {
            let (bids, capacities) =
                StandardAuctionWorkload::new(args.n, args.m, args.seed).generate();
            let auction = StandardAuction::new(StandardAuctionConfig {
                capacities,
                solver: BranchBoundConfig {
                    epsilon_ppm: args.epsilon_ppm,
                    max_nodes: args.budget,
                    shuffle_providers: true,
                },
            });
            let cfg = FrameworkConfig::new(args.m, args.k, args.n, 0);
            run(&args, cfg, Arc::new(StandardAuctionProgram::new(auction)), vec![bids; args.m])
        }
        (None, other) => {
            eprintln!(
                "unknown auction kind `{other}` (double|standard); \
                       or use --mechanism SPEC"
            );
            std::process::exit(2);
        }
    };

    println!("{elapsed_label}: {elapsed:?}");
    match outcome {
        Outcome::Abort => println!("outcome: ⊥ (aborted)"),
        Outcome::Agreed(result) => {
            let winners = result.allocation.winners();
            println!(
                "outcome: agreed — {} winners, total allocated {}, total payments {}",
                winners.len(),
                result.allocation.total(),
                result.payments.total_user_payments()
            );
            for user in winners.iter().take(8) {
                println!(
                    "  {user}: {} units, pays {}",
                    result.allocation.user_total(*user),
                    result.payments.user_payment(*user)
                );
            }
            if winners.len() > 8 {
                println!("  … and {} more", winners.len() - 8);
            }
            for provider in ProviderId::all(result.allocation.num_providers()) {
                let sold = result.allocation.provider_total(provider);
                if !sold.is_zero() {
                    println!(
                        "  {provider}: serves {}, receives {}",
                        sold,
                        result.payments.provider_revenue(provider)
                    );
                }
            }
            let _ = UserId(0);
        }
    }
}

/// The `coordinator` subcommand: the control-plane half of the
/// multi-process deployment. Binds the control listener, waits for all
/// `--providers` processes to join, clears `--epochs` epochs (sealing
/// every one onto the journal when armed), and prints each epoch plus a
/// survivability summary. Exit 0 on a completed run, 1 on bring-up
/// expiry or a journal fault.
fn coordinator_main(argv: &[String]) -> Result<i32, String> {
    use dauctioneer::market::{register_liveness_metrics, ClusterConfig, Coordinator};

    let mut listen: Option<String> = None;
    let mut m: Option<usize> = None;
    let mut k: Option<usize> = None;
    let mut n = 16usize;
    let mut epochs = 8u64;
    let mut seed = 42u64;
    let mut deadline_ms = 5000u64;
    let mut mesh_budget_ms = 2000u64;
    let mut join_timeout_ms = 30_000u64;
    let mut epoch_ms = 0u64;
    let mut journal_path: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut metrics_addr: Option<String> = None;

    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(HELP.to_string());
        }
        let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--listen" => listen = Some(value.clone()),
            "--providers" => m = Some(value.parse().map_err(|e| format!("--providers: {e}"))?),
            "--k" => k = Some(value.parse().map_err(|e| format!("--k: {e}"))?),
            "--n" => n = value.parse().map_err(|e| format!("--n: {e}"))?,
            "--epochs" => epochs = value.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--seed" => seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--deadline-ms" => {
                deadline_ms = value.parse().map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--mesh-budget-ms" => {
                mesh_budget_ms = value.parse().map_err(|e| format!("--mesh-budget-ms: {e}"))?
            }
            "--join-timeout-ms" => {
                join_timeout_ms = value.parse().map_err(|e| format!("--join-timeout-ms: {e}"))?
            }
            "--epoch-ms" => epoch_ms = value.parse().map_err(|e| format!("--epoch-ms: {e}"))?,
            "--journal" => journal_path = Some(std::path::PathBuf::from(value)),
            "--fsync" => fsync = value.parse().map_err(|e| format!("--fsync: {e}"))?,
            "--metrics-addr" => metrics_addr = Some(value.clone()),
            other => return Err(format!("unknown coordinator flag {other}\n{HELP}")),
        }
        i += 2;
    }
    let listen = listen.ok_or("coordinator requires --listen HOST:PORT")?;
    let m = m.ok_or("coordinator requires --providers M")?;
    let k = k.unwrap_or(m.saturating_sub(1) / 2);

    let mut config = ClusterConfig::new(m, k, n);
    config.epochs = epochs;
    config.seed = seed;
    config.session_deadline = Duration::from_millis(deadline_ms);
    config.mesh_budget = Duration::from_millis(mesh_budget_ms);
    config.join_timeout = Duration::from_millis(join_timeout_ms);
    config.epoch_period = Duration::from_millis(epoch_ms);
    config.journal = journal_path.clone();
    config.fsync = fsync;

    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let coordinator =
        Coordinator::new(listener, config).map_err(|e| format!("cannot start coordinator: {e}"))?;
    println!(
        "dauction coordinator: control plane on {}, m={m} providers (k={k}), {n} user \
         slots/epoch, {epochs} epochs, seed {seed}",
        coordinator.local_addr()
    );
    if let Some(path) = &journal_path {
        println!("journal armed: {} (fsync {fsync})", path.display());
    }
    let metrics_server = match &metrics_addr {
        Some(addr) => {
            let registry = Registry::new();
            register_liveness_metrics(&registry, coordinator.metrics());
            let server = MetricsServer::bind(addr, registry)
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            println!("metrics up: http://{}/metrics (Prometheus text format)", server.local_addr());
            Some(server)
        }
        None => None,
    };

    let result = coordinator.run(|epoch| match &epoch.outcome {
        Outcome::Abort => println!(
            "epoch {:>3} (session {}): {} bids, outcome ⊥ ({}), {:?}",
            epoch.epoch,
            epoch.session,
            epoch.accepted,
            epoch.reason.map_or("unknown", |r| r.label()),
            epoch.latency
        ),
        Outcome::Agreed(result) => println!(
            "epoch {:>3} (session {}): {} bids → {} winners, volume {}, cleared in {:?}",
            epoch.epoch,
            epoch.session,
            epoch.accepted,
            result.allocation.winners().len(),
            result.allocation.total(),
            epoch.latency
        ),
    });
    if let Some(mut server) = metrics_server {
        server.shutdown();
    }
    match result {
        Ok(report) => {
            println!(
                "survivability: {} epochs cleared, {} ⊥-aborted ({} peer_down), {} provider \
                 reconnect(s)",
                report.cleared(),
                report.aborted(),
                report.peer_down_aborts(),
                report.reconnects
            );
            Ok(0)
        }
        Err(e) => {
            eprintln!("coordinator failed: {e}");
            Ok(1)
        }
    }
}

/// The `provider` subcommand: one provider process of the
/// multi-process deployment. Joins the coordinator (redialling under a
/// jittered exponential backoff), clears every work order over a fresh
/// per-epoch mesh, and exits when the coordinator says shutdown. Exit 0
/// on a clean shutdown, 1 on an exhausted reconnect budget.
fn provider_main(argv: &[String]) -> Result<i32, String> {
    use dauctioneer::market::{run_provider, ProviderConfig};

    let mut id: Option<usize> = None;
    let mut join: Option<String> = None;
    let mut mesh_listen: Option<String> = None;
    let mut heartbeat_ms = 150u64;
    let mut backoff_base_ms = 50u64;
    let mut backoff_cap_ms = 2000u64;
    let mut reconnect_budget = 40u32;

    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(HELP.to_string());
        }
        let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--id" => id = Some(value.parse().map_err(|e| format!("--id: {e}"))?),
            "--join" => join = Some(value.clone()),
            "--mesh-listen" => mesh_listen = Some(value.clone()),
            "--heartbeat-ms" => {
                heartbeat_ms = value.parse().map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            "--backoff-base-ms" => {
                backoff_base_ms = value.parse().map_err(|e| format!("--backoff-base-ms: {e}"))?
            }
            "--backoff-cap-ms" => {
                backoff_cap_ms = value.parse().map_err(|e| format!("--backoff-cap-ms: {e}"))?
            }
            "--reconnect-budget" => {
                reconnect_budget = value.parse().map_err(|e| format!("--reconnect-budget: {e}"))?
            }
            other => return Err(format!("unknown provider flag {other}\n{HELP}")),
        }
        i += 2;
    }
    let id = id.ok_or("provider requires --id K")?;
    let join = join.ok_or("provider requires --join HOST:PORT")?;

    let mut config = ProviderConfig::new(id, join.clone());
    if let Some(addr) = mesh_listen {
        config.mesh_listen = addr;
    }
    config.heartbeat = Duration::from_millis(heartbeat_ms);
    config.backoff_base = Duration::from_millis(backoff_base_ms);
    config.backoff_cap = Duration::from_millis(backoff_cap_ms);
    config.reconnect_budget = reconnect_budget;
    // De-synchronize restart herds: jitter differs per process life.
    config.backoff_seed =
        (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(std::process::id());

    println!("dauction provider {id}: joining coordinator at {join}");
    match run_provider(config) {
        Ok(report) => {
            println!(
                "provider {id} done: {} epochs ({} cleared, {} ⊥), {} rejoin(s)",
                report.epochs, report.cleared, report.aborted, report.rejoins
            );
            Ok(0)
        }
        Err(e) => {
            eprintln!("provider {id} failed: {e}");
            Ok(1)
        }
    }
}

/// The `verify-log` subcommand: walk a settlement journal offline,
/// re-deriving the hash chain seal by seal. Prints a certification
/// summary and exits 0 on success; prints the first divergence (which
/// seal, which fault) and exits 1 on tamper or a torn tail.
fn verify_log_main(argv: &[String]) -> i32 {
    let [path] = argv else {
        eprintln!("usage: dauction verify-log PATH");
        return 2;
    };
    match verify_log(std::path::Path::new(path)) {
        Ok(summary) => {
            println!(
                "verify-log: OK — {} records, {} sealed epochs, {} accepted bids, \
                 mechanism {}, chain tip {}",
                summary.records,
                summary.seals,
                summary.accepted,
                summary.mechanism.as_deref().unwrap_or("(none sealed)"),
                summary.tip.to_hex()
            );
            0
        }
        Err(e) => {
            eprintln!("verify-log: FAILED — {e}");
            1
        }
    }
}

/// The `flight-dump` subcommand: read a flight-recorder JSON dump (as
/// written on SIGUSR1 or by a fail-stop journal error) and pretty-print
/// it one event per line. Exits 1 on an unreadable or malformed dump.
fn flight_dump_main(argv: &[String]) -> i32 {
    let [path] = argv else {
        eprintln!("usage: dauction flight-dump PATH");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("flight-dump: cannot read {path}: {e}");
            return 1;
        }
    };
    let dump = match FlightDump::parse(&text) {
        Ok(dump) => dump,
        Err(e) => {
            eprintln!("flight-dump: malformed dump: {e}");
            return 1;
        }
    };
    println!(
        "flight-dump: {} events retained (capacity {}), {} recorded in total",
        dump.events.len(),
        dump.capacity,
        dump.recorded
    );
    for event in &dump.events {
        let fields: Vec<String> = event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "  #{:<6} +{:>10.3?} {:<5} {:<18} {}",
            event.seq,
            event.at,
            event.level.label(),
            event.kind,
            fields.join(" ")
        );
    }
    0
}

/// SIGUSR1 → flight dump, without a signal-handling dependency: the
/// handler only flips an atomic; a poller thread in `serve_main` does
/// the actual dump. Non-Linux builds compile the stub that never fires.
#[cfg(target_os = "linux")]
mod usr1 {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    /// SIGUSR1 on every Linux ABI this builds for (x86-64, aarch64).
    const SIGUSR1: i32 = 10;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_usr1(_: i32) {
        // Only an atomic store: async-signal-safe by construction.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    /// Install the handler (idempotent).
    pub fn install() {
        unsafe {
            signal(SIGUSR1, on_usr1 as *const () as usize);
        }
    }

    /// Consume a pending trigger.
    pub fn take() -> bool {
        TRIGGERED.swap(false, Ordering::Relaxed)
    }
}

#[cfg(not(target_os = "linux"))]
mod usr1 {
    pub fn install() {}
    pub fn take() -> bool {
        false
    }
}

/// The `serve` subcommand: a continuous double-auction market fed by a
/// seeded Poisson arrival stream, printing each epoch as it closes and a
/// stats summary at the end. Bounded by `--epochs`.
fn serve_main(argv: &[String]) -> Result<(), String> {
    let mut mechanism = MechanismSpec::default();
    let mut rate = 400.0f64;
    let mut epochs = 5u64;
    let mut epoch_bids: Option<usize> = None;
    let mut epoch_ms: Option<u64> = None;
    let mut n = 16usize;
    let mut m = 3usize;
    let mut k: Option<usize> = None;
    let mut seed = 42u64;
    let mut transport = TransportKind::InProc;
    let mut shards = 1usize;
    let mut chaos: Option<dauctioneer::net::FaultPlan> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut journal_path: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut recover = false;
    let mut metrics_addr: Option<String> = None;
    let mut flight_path: Option<std::path::PathBuf> = None;
    let mut heartbeat_ms = 2000u64;

    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(HELP.to_string());
        }
        // Boolean flag: takes no value.
        if flag == "--recover" {
            recover = true;
            i += 1;
            continue;
        }
        let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--mechanism" => mechanism = value.parse().map_err(|e| format!("{e}"))?,
            "--rate" => rate = value.parse().map_err(|e| format!("--rate: {e}"))?,
            "--epochs" => epochs = value.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--epoch-bids" => {
                epoch_bids = Some(value.parse().map_err(|e| format!("--epoch-bids: {e}"))?)
            }
            "--epoch-ms" => epoch_ms = Some(value.parse().map_err(|e| format!("--epoch-ms: {e}"))?),
            "--n" => n = value.parse().map_err(|e| format!("--n: {e}"))?,
            "--m" => m = value.parse().map_err(|e| format!("--m: {e}"))?,
            "--k" => k = Some(value.parse().map_err(|e| format!("--k: {e}"))?),
            "--seed" => seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--transport" => {
                transport = match value.as_str() {
                    "inproc" => TransportKind::InProc,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport `{other}` (inproc|tcp)")),
                }
            }
            "--shards" => shards = value.parse().map_err(|e| format!("--shards: {e}"))?,
            "--chaos" => chaos = Some(value.parse().map_err(|e| format!("--chaos: {e}"))?),
            "--deadline-ms" => {
                deadline_ms = Some(value.parse().map_err(|e| format!("--deadline-ms: {e}"))?)
            }
            "--journal" => journal_path = Some(std::path::PathBuf::from(value)),
            "--fsync" => fsync = value.parse().map_err(|e| format!("--fsync: {e}"))?,
            "--metrics-addr" => metrics_addr = Some(value.clone()),
            "--flight-path" => flight_path = Some(std::path::PathBuf::from(value)),
            "--heartbeat-ms" => {
                heartbeat_ms = value.parse().map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            other => return Err(format!("unknown serve flag {other}\n{HELP}")),
        }
        i += 2;
    }

    if !(rate > 0.0 && rate.is_finite()) {
        return Err(format!("--rate must be a positive number of bids per second, got {rate}"));
    }
    let k = k.unwrap_or(m.saturating_sub(1) / 2);
    let policy = match (epoch_bids, epoch_ms) {
        (Some(count), Some(ms)) => {
            EpochPolicy::Hybrid { count, max_wait: Duration::from_millis(ms) }
        }
        (Some(count), None) => EpochPolicy::ByCount(count),
        (None, Some(ms)) => EpochPolicy::ByTime(Duration::from_millis(ms)),
        (None, None) => EpochPolicy::ByCount(8),
    };
    // §6.2-shaped supply sized to the expected epoch demand, shared
    // with the market_soak bench (see workload::epoch_supply).
    let expected_bids = match policy {
        EpochPolicy::ByCount(c) | EpochPolicy::Hybrid { count: c, .. } => c as f64,
        EpochPolicy::ByTime(d) => (rate * d.as_secs_f64()).max(2.0),
    };
    let mut config = MarketConfig::new(m, k, n, m)
        .with_epoch(policy)
        .with_transport(transport, shards)
        .with_mechanism(mechanism);
    config.asks = epoch_supply(m, expected_bids);
    config.seed = seed;
    config.chaos = chaos;
    // Under chaos, epochs that lost a critical message wait out the full
    // session deadline before reading ⊥; default it down so a bounded
    // demo run stays bounded. `--deadline-ms` overrides either way.
    config.session_deadline = match deadline_ms {
        Some(ms) => Duration::from_millis(ms),
        None if config.chaos.is_some() => Duration::from_secs(5),
        None => config.session_deadline,
    };
    match journal_path {
        Some(path) => {
            let mut jc = JournalConfig::new(path).with_fsync(fsync);
            if recover {
                jc = jc.recovering();
            }
            config.journal = Some(jc);
        }
        None if recover => return Err("--recover requires --journal PATH".into()),
        None => {}
    }
    config.telemetry.flight_dump_path = flight_path.clone();

    println!(
        "dauction serve: continuous {} market (spec `{mechanism}`), m={m} providers (k={k}), \
         {n} user slots/epoch, {rate} bids/s Poisson, {policy:?}, {transport:?}×{shards} \
         shard(s); stopping after {epochs} epochs",
        mechanism.name()
    );
    if let Some(plan) = &config.chaos {
        println!("chaos plane armed: {plan} (replay any epoch from this spec)");
    }

    if let Some(jc) = &config.journal {
        println!(
            "journal armed: {} (fsync {}{})",
            jc.path.display(),
            jc.fsync,
            if jc.recover { ", recovering" } else { "" }
        );
    }

    let mut market =
        MarketService::start_from_spec(config).map_err(|e| format!("cannot start market: {e}"))?;
    if let Some(report) = market.recovery_report() {
        println!(
            "recovered: {} sealed epochs intact, {} in-flight epoch(s) re-cleared, {} torn \
             bytes dropped; resuming at epoch {}",
            report.sealed.len(),
            report.replayed.len(),
            report.dropped_bytes,
            report.next_epoch
        );
        for epoch in &report.replayed {
            match &epoch.outcome {
                Outcome::Abort => println!(
                    "  replayed epoch {:>3} (session {}): {} bids, outcome ⊥",
                    epoch.epoch, epoch.session, epoch.accepted_bids
                ),
                Outcome::Agreed(result) => println!(
                    "  replayed epoch {:>3} (session {}): {} bids → {} winners, volume {}, \
                     payments {}",
                    epoch.epoch,
                    epoch.session,
                    epoch.accepted_bids,
                    result.allocation.winners().len(),
                    result.allocation.total(),
                    result.payments.total_user_payments(),
                ),
            }
        }
    }
    println!(
        "transport up: io_threads={} (epoll reactor: O(1) per socket mesh; 0 = in-process \
         channels)",
        market.traffic().io_threads
    );
    let outcomes = market.take_outcomes().expect("outcomes not yet taken");
    let handle = market.handle();
    let watch = market.watch();

    // The unified telemetry plane: a scrape endpoint over the market's
    // own counters, a SIGUSR1-triggered flight dump, and a periodic
    // one-line heartbeat. All read-only observers of shared state.
    let metrics_server = match &metrics_addr {
        Some(addr) => {
            let registry = Registry::new();
            register_market_metrics(&registry, watch.clone());
            let server = MetricsServer::bind(addr, registry)
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            println!("metrics up: http://{}/metrics (Prometheus text format)", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let ops_stop = Arc::new(AtomicBool::new(false));
    usr1::install();
    let flight_poller = {
        let watch = watch.clone();
        let ops_stop = Arc::clone(&ops_stop);
        let flight_path = flight_path.clone();
        std::thread::spawn(move || {
            while !ops_stop.load(Ordering::Relaxed) {
                if usr1::take() {
                    let dump = watch.flight_dump_json();
                    match &flight_path {
                        Some(path) => match std::fs::write(path, &dump) {
                            Ok(()) => eprintln!("flight dump written to {}", path.display()),
                            Err(e) => eprintln!("flight dump to {} failed: {e}", path.display()),
                        },
                        None => print!("{dump}"),
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };
    let heartbeat = (heartbeat_ms > 0).then(|| {
        let watch = watch.clone();
        let ops_stop = Arc::clone(&ops_stop);
        std::thread::spawn(move || {
            let period = Duration::from_millis(heartbeat_ms);
            loop {
                // Sleep in short slices so shutdown never waits a full
                // heartbeat period.
                let woke = std::time::Instant::now();
                while woke.elapsed() < period {
                    if ops_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                let stats = watch.stats();
                println!(
                    "[heartbeat] epochs {} cleared / {} aborted, {:.1}/s, queue {}, bids {} \
                     accepted / {} shed, chaos faults {}, journal {} B",
                    stats.epochs_cleared,
                    stats.epochs_aborted,
                    stats.sessions_per_sec,
                    stats.queue_depth,
                    stats.bids_accepted,
                    stats.bids_shed,
                    stats.chaos.total(),
                    stats.journal_bytes,
                );
            }
        })
    });

    // Feeder: replay the seeded arrival stream in real time until told
    // to stop (the stream itself is infinite). `--epochs 0` skips it —
    // recover/report/exit without admitting a single new bid.
    let stop = Arc::new(AtomicBool::new(false));
    let feeder = (epochs > 0).then(|| {
        let stop = Arc::clone(&stop);
        let process = ArrivalProcess::poisson(n, rate, seed);
        std::thread::spawn(move || {
            process.replay_paced(usize::MAX, |arrival| {
                if stop.load(Ordering::Relaxed) {
                    return false;
                }
                match handle.submit_bid(arrival.user, arrival.bid) {
                    // Shed under overload: drop this bid, keep streaming
                    // (the stats count it).
                    Ok(()) | Err(dauctioneer::market::SubmitError::Overloaded) => true,
                    Err(dauctioneer::market::SubmitError::Closed) => false,
                }
            });
        })
    });

    let mut seen = 0u64;
    while seen < epochs {
        let Ok(epoch) = outcomes.recv_timeout(Duration::from_secs(30)) else {
            eprintln!("no epoch closed within 30s; shutting down");
            break;
        };
        seen += 1;
        match &epoch.outcome {
            Outcome::Abort => println!(
                "epoch {:>3} (session {}): {} bids, outcome ⊥, {:?}",
                epoch.epoch, epoch.session, epoch.accepted_bids, epoch.latency
            ),
            Outcome::Agreed(result) => println!(
                "epoch {:>3} (session {}): {} bids → {} winners, volume {}, payments {}, \
                 cleared in {:?}",
                epoch.epoch,
                epoch.session,
                epoch.accepted_bids,
                result.allocation.winners().len(),
                result.allocation.total(),
                result.payments.total_user_payments(),
                epoch.latency
            ),
        }
    }

    stop.store(true, Ordering::Relaxed);
    if let Some(feeder) = feeder {
        let _ = feeder.join();
    }
    ops_stop.store(true, Ordering::Relaxed);
    let _ = flight_poller.join();
    if let Some(heartbeat) = heartbeat {
        let _ = heartbeat.join();
    }
    let stats = market.shutdown();
    if let Some(mut server) = metrics_server {
        server.shutdown();
    }
    let aborted_by: Vec<String> = stats
        .epochs_aborted_by_reason
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(reason, count)| format!("{reason}={count}"))
        .collect();
    println!(
        "survivability: {} epochs cleared, {} ⊥-aborted{}",
        stats.epochs_cleared,
        stats.epochs_aborted,
        if aborted_by.is_empty() { String::new() } else { format!(" ({})", aborted_by.join(", ")) }
    );
    if stats.chaos.total() > 0 {
        println!(
            "chaos injected: {} dropped, {} duplicated, {} reordered, {} delayed, {} corrupted, \
             {} partitioned",
            stats.chaos.dropped,
            stats.chaos.duplicated,
            stats.chaos.reordered,
            stats.chaos.delayed,
            stats.chaos.corrupted,
            stats.chaos.partitioned,
        );
    }
    println!(
        "served {} epochs in {:?}: {:.1} sessions/s sustained, epoch latency p50 {:?} / p99 \
         {:?}; bids: {} accepted, {} shed, {} rejected (invalid {}, duplicate {}, unknown {})",
        stats.epochs_closed,
        stats.uptime,
        stats.sessions_per_sec,
        stats.epoch_latency_p50,
        stats.epoch_latency_p99,
        stats.bids_accepted,
        stats.bids_shed,
        stats.bids_rejected_invalid + stats.bids_rejected_duplicate + stats.bids_rejected_unknown,
        stats.bids_rejected_invalid,
        stats.bids_rejected_duplicate,
        stats.bids_rejected_unknown,
    );
    if stats.journal_bytes > 0 {
        println!(
            "journal: {} bytes, {} fsyncs (mean {:?}, max {:?})",
            stats.journal_bytes,
            stats.journal_fsyncs,
            stats.journal_fsync_mean,
            stats.journal_fsync_max,
        );
    }
    Ok(())
}

fn run<P: dauctioneer::core::AllocatorProgram + 'static>(
    args: &Args,
    cfg: FrameworkConfig,
    program: Arc<P>,
    collected: Vec<dauctioneer::types::BidVector>,
) -> (Outcome, &'static str, Duration) {
    match args.runtime.as_str() {
        "des" => {
            let link = match args.latency.as_str() {
                "community" => LinkModel::community_net(),
                _ => LinkModel::instant(),
            };
            let report = run_timed_auction(&cfg, program, collected, link, args.seed);
            (
                report.unanimous(),
                "virtual span (discrete-event, one CPU per provider)",
                report.span.unwrap_or(Duration::ZERO),
            )
        }
        _ => {
            let latency = match args.latency.as_str() {
                "community" => LatencyModel::CommunityNet,
                _ => LatencyModel::Zero,
            };
            let report = run_session(
                &cfg,
                program,
                collected,
                &RunOptions { deadline: Duration::from_secs(600), latency, seed: args.seed },
            );
            (report.unanimous(), "wall-clock (threaded)", report.elapsed)
        }
    }
}
