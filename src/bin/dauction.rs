//! `dauction` — command-line driver for one-off distributed auction runs.
//!
//! A small operational tool over the library: generates a paper-§6
//! workload, runs the chosen auction under the chosen runtime, and prints
//! the outcome summary. Useful for quick experiments without writing code.
//!
//! ```text
//! dauction [--auction double|standard] [--n USERS] [--m PROVIDERS] [--k COALITION]
//!          [--seed SEED] [--runtime threads|des] [--latency zero|community]
//!          [--epsilon PPM] [--budget NODES]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::{
    run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions, StandardAuctionProgram,
};
use dauctioneer::mechanisms::solver::BranchBoundConfig;
use dauctioneer::mechanisms::{StandardAuction, StandardAuctionConfig};
use dauctioneer::net::LatencyModel;
use dauctioneer::sim::{run_timed_auction, LinkModel};
use dauctioneer::types::{Outcome, ProviderId, UserId};
use dauctioneer::workload::{DoubleAuctionWorkload, StandardAuctionWorkload};

#[derive(Debug, Clone)]
struct Args {
    auction: String,
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    runtime: String,
    latency: String,
    epsilon_ppm: u32,
    budget: u64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            auction: "double".into(),
            n: 50,
            m: 3,
            k: 1,
            seed: 42,
            runtime: "threads".into(),
            latency: "zero".into(),
            epsilon_ppm: 10_000,
            budget: 200_000,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if flag == "--help" || flag == "-h" {
                return Err(HELP.to_string());
            }
            let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
            match flag {
                "--auction" => args.auction = value.clone(),
                "--n" => args.n = value.parse().map_err(|e| format!("--n: {e}"))?,
                "--m" => args.m = value.parse().map_err(|e| format!("--m: {e}"))?,
                "--k" => args.k = value.parse().map_err(|e| format!("--k: {e}"))?,
                "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
                "--runtime" => args.runtime = value.clone(),
                "--latency" => args.latency = value.clone(),
                "--epsilon" => {
                    args.epsilon_ppm = value.parse().map_err(|e| format!("--epsilon: {e}"))?
                }
                "--budget" => args.budget = value.parse().map_err(|e| format!("--budget: {e}"))?,
                other => return Err(format!("unknown flag {other}\n{HELP}")),
            }
            i += 2;
        }
        Ok(args)
    }
}

const HELP: &str = "usage: dauction [--auction double|standard] [--n USERS] [--m PROVIDERS] \
[--k COALITION] [--seed SEED] [--runtime threads|des] [--latency zero|community] \
[--epsilon PPM] [--budget NODES]";

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!(
        "dauction: {} auction, n={} users, m={} providers, k={} (p={})",
        args.auction,
        args.n,
        args.m,
        args.k,
        args.m / (args.k + 1)
    );

    let (outcome, elapsed_label, elapsed) = match args.auction.as_str() {
        "double" => {
            let bids = DoubleAuctionWorkload::new(args.n, args.m, args.seed).generate();
            let cfg = FrameworkConfig::new(args.m, args.k, args.n, args.m);
            run(&args, cfg, Arc::new(DoubleAuctionProgram::new()), vec![bids; args.m])
        }
        "standard" => {
            let (bids, capacities) =
                StandardAuctionWorkload::new(args.n, args.m, args.seed).generate();
            let auction = StandardAuction::new(StandardAuctionConfig {
                capacities,
                solver: BranchBoundConfig {
                    epsilon_ppm: args.epsilon_ppm,
                    max_nodes: args.budget,
                    shuffle_providers: true,
                },
            });
            let cfg = FrameworkConfig::new(args.m, args.k, args.n, 0);
            run(&args, cfg, Arc::new(StandardAuctionProgram::new(auction)), vec![bids; args.m])
        }
        other => {
            eprintln!("unknown auction kind `{other}` (double|standard)");
            std::process::exit(2);
        }
    };

    println!("{elapsed_label}: {elapsed:?}");
    match outcome {
        Outcome::Abort => println!("outcome: ⊥ (aborted)"),
        Outcome::Agreed(result) => {
            let winners = result.allocation.winners();
            println!(
                "outcome: agreed — {} winners, total allocated {}, total payments {}",
                winners.len(),
                result.allocation.total(),
                result.payments.total_user_payments()
            );
            for user in winners.iter().take(8) {
                println!(
                    "  {user}: {} units, pays {}",
                    result.allocation.user_total(*user),
                    result.payments.user_payment(*user)
                );
            }
            if winners.len() > 8 {
                println!("  … and {} more", winners.len() - 8);
            }
            for provider in ProviderId::all(result.allocation.num_providers()) {
                let sold = result.allocation.provider_total(provider);
                if !sold.is_zero() {
                    println!(
                        "  {provider}: serves {}, receives {}",
                        sold,
                        result.payments.provider_revenue(provider)
                    );
                }
            }
            let _ = UserId(0);
        }
    }
}

fn run<P: dauctioneer::core::AllocatorProgram + 'static>(
    args: &Args,
    cfg: FrameworkConfig,
    program: Arc<P>,
    collected: Vec<dauctioneer::types::BidVector>,
) -> (Outcome, &'static str, Duration) {
    match args.runtime.as_str() {
        "des" => {
            let link = match args.latency.as_str() {
                "community" => LinkModel::community_net(),
                _ => LinkModel::instant(),
            };
            let report = run_timed_auction(&cfg, program, collected, link, args.seed);
            (
                report.unanimous(),
                "virtual span (discrete-event, one CPU per provider)",
                report.span.unwrap_or(Duration::ZERO),
            )
        }
        _ => {
            let latency = match args.latency.as_str() {
                "community" => LatencyModel::CommunityNet,
                _ => LatencyModel::Zero,
            };
            let report = run_session(
                &cfg,
                program,
                collected,
                &RunOptions { deadline: Duration::from_secs(600), latency, seed: args.seed },
            );
            (report.unanimous(), "wall-clock (threaded)", report.elapsed)
        }
    }
}
