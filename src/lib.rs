//! # dauctioneer — a distributed auctioneer for decentralized systems
//!
//! Umbrella crate for the reproduction of Khan, Vilaça, Rodrigues and
//! Freitag, *A Distributed Auctioneer for Resource Allocation in
//! Decentralized Systems* (ICDCS 2016). It re-exports the workspace
//! crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `dauctioneer-types` | bids, allocations, payments, wire codec |
//! | [`crypto`] | `dauctioneer-crypto` | SHA-256, commitments, seed derivation |
//! | [`mechanisms`] | `dauctioneer-mechanisms` | double auction, (1−ε)-VCG standard auction, multi-unit XOR-bundle combinatorial auction (node-budgeted branch-and-bound with a bound-reporting greedy fallback), divisible-resource water-filling auction with Clarke-pivot payments |
//! | [`net`] | `dauctioneer-net` | threaded transport, latency models, traffic metrics |
//! | [`core`] | `dauctioneer-core` | the framework: bid agreement, coin, allocator, auctioneer |
//! | [`sim`] | `dauctioneer-sim` | game-theoretic simulator, deviations, utilities |
//! | [`workload`] | `dauctioneer-workload` | the paper's §6 workload generators |
//! | [`market`] | `dauctioneer-market` | continuous epochs, journal + recovery, runtime [`market::MechanismSpec`] selection |
//! | [`telemetry`] | `dauctioneer-telemetry` | metrics registry, scrape endpoint, epoch traces, flight recorder |
//!
//! All four production mechanisms run behind the same replicated
//! pipeline and can be selected at runtime from a spec string — see
//! [`market::MechanismSpec`] and the `--mechanism` flag of the
//! `dauction` binary (`double | standard[,eps=PPM] |
//! combinatorial[,budget=NODES] | divisible[,beta=PRICE]`).
//!
//! ## Quick start: one session
//!
//! Run a fully distributed double auction among three providers — this
//! is `examples/quickstart.rs` in miniature: three gateway owners
//! jointly simulate the auctioneer (`k = 1`) for four users bidding for
//! bandwidth at two gateways, then read the agreed allocation and
//! payments off the unanimous outcome:
//!
//! ```
//! use std::sync::Arc;
//! use dauctioneer::core::{run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions};
//! use dauctioneer::types::{BidVector, Bw, Money, ProviderAsk, ProviderId, UserBid, UserId};
//!
//! let cfg = FrameworkConfig::new(3, 1, 4, 2);
//! let bids = BidVector::builder(4, 2)
//!     .user_bid(0, UserBid::new(Money::from_f64(1.20), Bw::from_f64(0.6)))
//!     .user_bid(1, UserBid::new(Money::from_f64(1.05), Bw::from_f64(0.4)))
//!     .user_bid(2, UserBid::new(Money::from_f64(0.90), Bw::from_f64(0.7)))
//!     .user_bid(3, UserBid::new(Money::from_f64(0.80), Bw::from_f64(0.3)))
//!     .provider_ask(0, ProviderAsk::new(Money::from_f64(0.15), Bw::from_f64(1.0)))
//!     .provider_ask(1, ProviderAsk::new(Money::from_f64(0.45), Bw::from_f64(1.0)))
//!     .build();
//!
//! // Every provider collected the same bids; the protocol agrees on
//! // them, validates the agreement, and replicates the allocator.
//! let report = run_session(
//!     &cfg,
//!     Arc::new(DoubleAuctionProgram::new()),
//!     vec![bids.clone(); 3],
//!     &RunOptions::default(),
//! );
//!
//! // Definition 1: the auction stands iff every provider decided the
//! // same valid (allocation, payments) pair.
//! let outcome = report.unanimous();
//! let result = outcome.as_result().expect("honest run must agree");
//! let winners = UserId::all(4).filter(|u| result.allocation.user_total(*u).as_f64() > 0.0);
//! assert!(winners.count() > 0, "somebody wins bandwidth");
//! let sold: f64 = ProviderId::all(2).map(|p| result.allocation.provider_total(p).as_f64()).sum();
//! assert!(sold > 0.0, "somebody sells bandwidth");
//! assert!(result.payments.is_budget_balanced());
//! ```
//!
//! ## Quick start: a batch of concurrent sessions
//!
//! A marketplace clears many auctions at once. [`core::run_batch`]
//! multiplexes N tagged sessions over one shared provider mesh;
//! [`core::run_batch_with`] adds the scaling knobs (hub shards ×
//! in-process or TCP transport) behind the same API:
//!
//! ```
//! use std::sync::Arc;
//! use dauctioneer::core::{
//!     run_batch_with, BatchConfig, BatchSession, DoubleAuctionProgram, FrameworkConfig,
//!     RunOptions,
//! };
//! use dauctioneer::types::SessionId;
//! use dauctioneer::workload::DoubleAuctionWorkload;
//!
//! let cfg = FrameworkConfig::new(3, 1, 10, 3);
//! let sessions = (0..8)
//!     .map(|s| {
//!         let bids = DoubleAuctionWorkload::new(10, 3, 42 + s).generate();
//!         BatchSession::uniform(SessionId(s), bids, 3, 100 + s)
//!     })
//!     .collect();
//! let report = run_batch_with(
//!     &cfg,
//!     Arc::new(DoubleAuctionProgram::new()),
//!     sessions,
//!     &RunOptions::default(),
//!     &BatchConfig::sharded(2), // 2 independent hub shards
//! );
//! assert!(report.all_agreed(), "every session cleared");
//! assert!(report.sessions_per_sec() > 0.0);
//! ```
//!
//! See the `examples/` directory for larger scenarios: the community-
//! network bandwidth market of the paper's case study, the parallel VCG
//! auction, a session with Byzantine bidders and a deviating provider,
//! and `tcp_market` — the same auction as the first quick start, but
//! carried over a real TCP socket mesh.

pub use dauctioneer_core as core;
pub use dauctioneer_crypto as crypto;
pub use dauctioneer_market as market;
pub use dauctioneer_mechanisms as mechanisms;
pub use dauctioneer_net as net;
pub use dauctioneer_sim as sim;
pub use dauctioneer_telemetry as telemetry;
pub use dauctioneer_types as types;
pub use dauctioneer_workload as workload;
