//! # dauctioneer — a distributed auctioneer for decentralized systems
//!
//! Umbrella crate for the reproduction of Khan, Vilaça, Rodrigues and
//! Freitag, *A Distributed Auctioneer for Resource Allocation in
//! Decentralized Systems* (ICDCS 2016). It re-exports the workspace
//! crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `dauctioneer-types` | bids, allocations, payments, wire codec |
//! | [`crypto`] | `dauctioneer-crypto` | SHA-256, commitments, seed derivation |
//! | [`mechanisms`] | `dauctioneer-mechanisms` | double auction, (1−ε)-VCG standard auction |
//! | [`net`] | `dauctioneer-net` | threaded transport, latency models, traffic metrics |
//! | [`core`] | `dauctioneer-core` | the framework: bid agreement, coin, allocator, auctioneer |
//! | [`sim`] | `dauctioneer-sim` | game-theoretic simulator, deviations, utilities |
//! | [`workload`] | `dauctioneer-workload` | the paper's §6 workload generators |
//!
//! ## Quick start
//!
//! Run a fully distributed double auction among three providers:
//!
//! ```
//! use std::sync::Arc;
//! use dauctioneer::core::{run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions};
//! use dauctioneer::workload::DoubleAuctionWorkload;
//!
//! let cfg = FrameworkConfig::new(3, 1, 10, 3);
//! let bids = DoubleAuctionWorkload::new(10, 3, 42).generate();
//! let report = run_session(
//!     &cfg,
//!     Arc::new(DoubleAuctionProgram::new()),
//!     vec![bids; 3],
//!     &RunOptions::default(),
//! );
//! let outcome = report.unanimous();
//! assert!(!outcome.is_abort());
//! ```
//!
//! See the `examples/` directory for larger scenarios: the community-
//! network bandwidth market of the paper's case study, the parallel VCG
//! auction, and a session with Byzantine bidders and a deviating
//! provider.

pub use dauctioneer_core as core;
pub use dauctioneer_crypto as crypto;
pub use dauctioneer_mechanisms as mechanisms;
pub use dauctioneer_net as net;
pub use dauctioneer_sim as sim;
pub use dauctioneer_types as types;
pub use dauctioneer_workload as workload;
