//! Minimal, offline re-implementation of the subset of the [`bytes`] crate
//! API this workspace uses: cheaply cloneable immutable byte buffers
//! ([`Bytes`]), an append-only builder ([`BytesMut`]) and the [`BufMut`]
//! write trait.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few external crates it needs (see `vendor/`). Only the API
//! surface actually consumed by the workspace is provided.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]) }
    }

    /// Wrap a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(bytes) }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { repr: Repr::Shared(Arc::from(data)) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { repr: Repr::Shared(Arc::from(v.into_boxed_slice())) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Bytes the buffer can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop the contents, keeping the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_eq() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, Bytes::from_static(b"abc"));
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], b"abc");
        let c = b.clone();
        assert_eq!(c, b);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(1);
        buf.put_u16_le(2);
        buf.put_u32_le(3);
        buf.put_u64_le(4);
        buf.put_i64_le(-5);
        buf.put_slice(b"xy");
        assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 8 + 2);
        let frozen = buf.freeze();
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[frozen.len() - 2..], b"xy");
    }

    #[test]
    fn bytes_mut_clear_keeps_capacity() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"scratch");
        let cap = buf.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap, "clear must keep the allocation");
        buf.reserve(64);
        assert!(buf.capacity() >= 64);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
