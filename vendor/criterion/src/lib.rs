//! Minimal, offline re-implementation of the subset of the [`criterion`]
//! benchmarking API this workspace uses. Benchmarks run and print a mean
//! per iteration; there is no statistical analysis, warm-up modelling, or
//! HTML report — just enough to keep `cargo bench` working without
//! crates.io access.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identify a benchmark by its parameter value only.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { name: param.to_string() }
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(function: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{param}", function.into()) }
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `body` repeatedly and record per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let iters = self.sample_size.max(1);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `body` against one `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut body: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        body(&mut bencher, input);
        println!(
            "{}/{}: mean {:?} ({} iters)",
            self.name,
            id.name,
            bencher.mean(),
            bencher.samples.len()
        );
    }

    /// Benchmark a parameterless body.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut body: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        body(&mut bencher);
        println!(
            "{}/{}: mean {:?} ({} iters)",
            self.name,
            id.name,
            bencher.mean(),
            bencher.samples.len()
        );
    }

    /// Finish the group (upstream renders a summary here).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Benchmark one named function.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: 10 };
        body(&mut bencher);
        println!("{name}: mean {:?} ({} iters)", bencher.mean(), bencher.samples.len());
        self
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::from_parameter(1), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
