//! Minimal, offline re-implementation of the subset of the
//! [`crossbeam-channel`] API this workspace uses, backed by
//! `std::sync::mpsc`.
//!
//! The workspace only needs multi-producer single-consumer channels (each
//! provider owns its inbox receiver), which is exactly what `mpsc`
//! provides; the crossbeam surface re-implemented here is [`unbounded`],
//! [`bounded`], cloneable [`Sender`]s and timeout-aware receives.
//!
//! [`crossbeam-channel`]: https://docs.rs/crossbeam-channel

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of a channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: SenderInner<T>,
}

#[derive(Debug)]
enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let inner = match &self.inner {
            SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
        };
        Sender { inner }
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if the receiving half has disconnected.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderInner::Unbounded(tx) => tx.send(msg),
            SenderInner::Bounded(tx) => tx.send(msg),
        }
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders disconnect.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Wait up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// Receive without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: SenderInner::Unbounded(tx) }, Receiver { inner: rx })
}

/// Create a bounded channel with the given capacity; sends block when it
/// is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender { inner: SenderInner::Bounded(tx) }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn bounded_roundtrip_and_clone() {
        let (tx, rx) = bounded(2);
        let tx2 = tx.clone();
        tx.send(1u8).unwrap();
        tx2.send(2u8).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }
}
