//! Minimal, offline re-implementation of the subset of the [`polling`]
//! crate's API this workspace uses: a Linux `epoll` wrapper.
//!
//! The socket transports used to spend two OS threads per peer
//! connection (a blocking reader and a coalescing writer); this crate is
//! what lets one reactor thread drive *every* nonblocking socket of a
//! mesh instead. The surface is the same shape as `polling`'s:
//!
//! * [`Poller::new`] — `epoll_create1`, plus an `eventfd` **waker**
//!   registered under a reserved key so other threads can interrupt a
//!   blocked [`Poller::wait`] ([`Poller::notify`]);
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] —
//!   `epoll_ctl`, with per-source readable/writable [`Interest`] and
//!   level- or edge-triggered [`PollMode`];
//! * [`Poller::wait`] — `epoll_wait` into a reusable [`Events`] buffer,
//!   with an optional timeout.
//!
//! [`connect_nonblocking`] rounds the subset out: a `SOCK_NONBLOCK`
//! TCP dial whose completion is *observed through the poller* (writable
//! readiness, then `TcpStream::take_error` for the `SO_ERROR` verdict)
//! instead of blocking the calling thread — what event-driven mesh
//! bring-up needs in place of dial-retry sleep loops.
//!
//! Everything is direct FFI onto the C library the Rust standard library
//! already links; there are no external dependencies. Non-Linux targets
//! get a stub that fails with `io::ErrorKind::Unsupported` at runtime,
//! keeping the workspace compiling (the transports that need a poller
//! are only ever exercised on Linux hosts).
//!
//! [`polling`]: https://docs.rs/polling

#![deny(missing_docs)]

/// Readiness interest for a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source becomes readable (or hangs up).
    pub readable: bool,
    /// Wake when the source becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Neither — the source stays registered but delivers nothing.
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// Level- or edge-triggered delivery for a registered source.
///
/// Level (`EPOLLLT`, the default) re-reports readiness on every wait
/// until the condition is drained — forgiving, and what the reactor uses
/// for reads. Edge (`EPOLLET`) reports each readiness *transition* once;
/// the caller must drain to `WouldBlock` or lose the wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollMode {
    /// Level-triggered readiness (epoll's default).
    #[default]
    Level,
    /// Edge-triggered readiness (`EPOLLET`).
    Edge,
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the source was registered under.
    pub key: usize,
    /// The source is readable — or hung up / errored, which a read will
    /// surface as EOF or an error, so it is folded in here.
    pub readable: bool,
    /// The source is writable — or errored, which a write will surface.
    pub writable: bool,
}

/// Reusable buffer of readiness events for [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An empty buffer with room for a typical mesh's worth of events.
    pub fn new() -> Events {
        Events::with_capacity(256)
    }

    /// An empty buffer reporting at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity.max(1)), capacity: capacity.max(1) }
    }

    /// Iterate over the events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop the events of the last wait.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Default for Events {
    fn default() -> Events {
        Events::new()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Events, Interest, PollMode};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    // The handful of C library symbols this crate rides on. The Rust
    // standard library already links libc, so these resolve without any
    // build-script or external-crate machinery.
    mod ffi {
        use std::os::raw::{c_int, c_uint, c_void};

        // The kernel's `struct epoll_event` is packed on x86-64 (12
        // bytes, no padding before `data`) and naturally aligned
        // everywhere else — mirroring glibc's declaration exactly.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
            pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
            pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLLET: u32 = 1 << 31;
        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;
        pub const AF_INET: c_int = 2;
        pub const AF_INET6: c_int = 10;
        pub const SOCK_STREAM: c_int = 1;
        pub const SOCK_NONBLOCK: c_int = 0o4000;
        pub const SOCK_CLOEXEC: c_int = 0o2000000;

        // `struct sockaddr_in` / `sockaddr_in6`, laid out by hand so no
        // libc *crate* is needed. Network byte order for port/address.
        #[repr(C)]
        pub struct SockAddrIn {
            pub sin_family: u16,
            pub sin_port: u16,
            pub sin_addr: u32,
            pub sin_zero: [u8; 8],
        }

        #[repr(C)]
        pub struct SockAddrIn6 {
            pub sin6_family: u16,
            pub sin6_port: u16,
            pub sin6_flowinfo: u32,
            pub sin6_addr: [u8; 16],
            pub sin6_scope_id: u32,
        }
    }

    /// Key [`Poller::notify`]'s internal eventfd is registered under;
    /// never reported to callers.
    const WAKER_KEY: u64 = u64::MAX;

    /// An epoll instance plus its eventfd waker.
    #[derive(Debug)]
    pub struct Poller {
        epoll: OwnedFd,
        waker: OwnedFd,
    }

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    impl Poller {
        /// `epoll_create1` plus an `eventfd` waker registered under a
        /// reserved key.
        ///
        /// # Errors
        ///
        /// Any syscall failure (fd exhaustion, kernel limits).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls; fds are immediately wrapped in
            // OwnedFd so they cannot leak.
            let ep = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(last_err());
            }
            let epoll = unsafe { OwnedFd::from_raw_fd(ep) };
            let ev = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
            if ev < 0 {
                return Err(last_err());
            }
            let waker = unsafe { OwnedFd::from_raw_fd(ev) };
            let poller = Poller { epoll, waker };
            poller.ctl(
                ffi::EPOLL_CTL_ADD,
                poller.waker.as_raw_fd(),
                Some((WAKER_KEY, ffi::EPOLLIN)),
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, spec: Option<(u64, u32)>) -> io::Result<()> {
            let mut ev = ffi::EpollEvent { events: 0, data: 0 };
            let ptr = match spec {
                Some((data, events)) => {
                    ev.events = events;
                    ev.data = data;
                    &mut ev as *mut ffi::EpollEvent
                }
                None => std::ptr::null_mut(),
            };
            // SAFETY: fd is a live descriptor owned by the caller; the
            // event struct outlives the call.
            if unsafe { ffi::epoll_ctl(self.epoll.as_raw_fd(), op, fd, ptr) } < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        fn mask(interest: Interest, mode: PollMode) -> u32 {
            let mut events = ffi::EPOLLRDHUP;
            if interest.readable {
                events |= ffi::EPOLLIN;
            }
            if interest.writable {
                events |= ffi::EPOLLOUT;
            }
            if mode == PollMode::Edge {
                events |= ffi::EPOLLET;
            }
            events
        }

        /// Register `source` under `key` with the given interest.
        ///
        /// # Errors
        ///
        /// `epoll_ctl` failure (already registered, bad fd, …).
        ///
        /// # Panics
        ///
        /// Panics on the reserved waker key (`usize::MAX`).
        pub fn add(
            &self,
            source: &impl AsRawFd,
            key: usize,
            interest: Interest,
            mode: PollMode,
        ) -> io::Result<()> {
            assert!((key as u64) != WAKER_KEY, "key reserved for the poller's waker");
            self.ctl(
                ffi::EPOLL_CTL_ADD,
                source.as_raw_fd(),
                Some((key as u64, Self::mask(interest, mode))),
            )
        }

        /// Re-arm an already-registered `source` with new interest.
        ///
        /// # Errors
        ///
        /// `epoll_ctl` failure (not registered, bad fd, …).
        ///
        /// # Panics
        ///
        /// Panics on the reserved waker key (`usize::MAX`).
        pub fn modify(
            &self,
            source: &impl AsRawFd,
            key: usize,
            interest: Interest,
            mode: PollMode,
        ) -> io::Result<()> {
            assert!((key as u64) != WAKER_KEY, "key reserved for the poller's waker");
            self.ctl(
                ffi::EPOLL_CTL_MOD,
                source.as_raw_fd(),
                Some((key as u64, Self::mask(interest, mode))),
            )
        }

        /// Deregister `source` entirely.
        ///
        /// # Errors
        ///
        /// `epoll_ctl` failure (not registered, bad fd, …).
        pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
            self.ctl(ffi::EPOLL_CTL_DEL, source.as_raw_fd(), None)
        }

        /// Block until readiness events arrive, `timeout` expires
        /// (`Ok(0)`), or [`Poller::notify`] is called; `EINTR` retries
        /// internally, waker events are drained and never reported.
        ///
        /// # Errors
        ///
        /// Any non-`EINTR` `epoll_wait` failure.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.inner.clear();
            // Round sub-millisecond timeouts *up*: epoll_wait(…, 0) would
            // turn a 100µs deadline into a busy spin.
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => {
                    let ms = t.as_millis() + u128::from(t.subsec_nanos() % 1_000_000 != 0);
                    ms.min(i32::MAX as u128) as i32
                }
            };
            let mut raw: Vec<ffi::EpollEvent> =
                vec![ffi::EpollEvent { events: 0, data: 0 }; events.capacity];
            // SAFETY: raw is a live buffer of capacity entries.
            let n = loop {
                let n = unsafe {
                    ffi::epoll_wait(
                        self.epoll.as_raw_fd(),
                        raw.as_mut_ptr(),
                        raw.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = last_err();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &raw[..n] {
                if ev.data == WAKER_KEY {
                    // Drain the eventfd so the next notify() re-arms it.
                    let mut scratch = [0u8; 8];
                    // SAFETY: 8-byte read from a nonblocking eventfd.
                    unsafe {
                        ffi::read(self.waker.as_raw_fd(), scratch.as_mut_ptr().cast(), 8);
                    }
                    continue;
                }
                let err = ev.events & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0;
                events.inner.push(Event {
                    key: ev.data as usize,
                    readable: ev.events & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0 || err,
                    writable: ev.events & ffi::EPOLLOUT != 0 || err,
                });
            }
            Ok(events.inner.len())
        }

        /// Wake a concurrent [`Poller::wait`] from any thread
        /// (idempotent until the next wait drains the waker).
        ///
        /// # Errors
        ///
        /// `write` failure on the eventfd other than `EAGAIN`.
        pub fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            // SAFETY: 8-byte write to a live eventfd. EAGAIN means the
            // counter is already nonzero — the wakeup is pending, which
            // is all notify promises.
            let n = unsafe { ffi::write(self.waker.as_raw_fd(), (&one as *const u64).cast(), 8) };
            if n < 0 {
                let err = last_err();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    /// Begin a nonblocking TCP dial: the returned stream is either
    /// connected already or connecting in the background; completion is
    /// observed as poller writability, with `TcpStream::take_error`
    /// delivering the `SO_ERROR` verdict.
    ///
    /// # Errors
    ///
    /// Socket creation failure, or a `connect` failure other than
    /// `EINPROGRESS`.
    pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        let (domain, sockaddr, len): (_, Vec<u8>, u32) = match addr {
            SocketAddr::V4(v4) => {
                let sa = ffi::SockAddrIn {
                    sin_family: ffi::AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                    sin_zero: [0; 8],
                };
                // SAFETY: plain-old-data struct reinterpreted as bytes.
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        (&sa as *const ffi::SockAddrIn).cast::<u8>(),
                        std::mem::size_of::<ffi::SockAddrIn>(),
                    )
                }
                .to_vec();
                (ffi::AF_INET, bytes, std::mem::size_of::<ffi::SockAddrIn>() as u32)
            }
            SocketAddr::V6(v6) => {
                let sa = ffi::SockAddrIn6 {
                    sin6_family: ffi::AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo().to_be(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                // SAFETY: plain-old-data struct reinterpreted as bytes.
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        (&sa as *const ffi::SockAddrIn6).cast::<u8>(),
                        std::mem::size_of::<ffi::SockAddrIn6>(),
                    )
                }
                .to_vec();
                (ffi::AF_INET6, bytes, std::mem::size_of::<ffi::SockAddrIn6>() as u32)
            }
        };
        // SAFETY: fd is checked and immediately wrapped in TcpStream.
        let fd = unsafe {
            ffi::socket(domain, ffi::SOCK_STREAM | ffi::SOCK_NONBLOCK | ffi::SOCK_CLOEXEC, 0)
        };
        if fd < 0 {
            return Err(last_err());
        }
        // SAFETY: fd is a fresh, owned TCP socket descriptor.
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        // SAFETY: sockaddr is a valid, correctly-sized address struct.
        let rc = unsafe { ffi::connect(stream.as_raw_fd(), sockaddr.as_ptr().cast(), len) };
        if rc == 0 {
            return Ok(stream); // connected synchronously (loopback often does)
        }
        let err = last_err();
        match err.raw_os_error() {
            Some(code) if code == EINPROGRESS => Ok(stream),
            _ => Err(err),
        }
    }

    const EINPROGRESS: i32 = 115;
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Events, Interest, PollMode};
    use std::io;
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "polling: epoll is Linux-only in this vendored subset",
        )
    }

    /// Stub poller for non-Linux targets: everything fails at runtime.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }
        pub fn add(&self, _: &impl AsRawFd, _: usize, _: Interest, _: PollMode) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn modify(
            &self,
            _: &impl AsRawFd,
            _: usize,
            _: Interest,
            _: PollMode,
        ) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn delete(&self, _: &impl AsRawFd) -> io::Result<()> {
            Err(unsupported())
        }
        pub fn wait(&self, _: &mut Events, _: Option<Duration>) -> io::Result<usize> {
            Err(unsupported())
        }
        pub fn notify(&self) -> io::Result<()> {
            Err(unsupported())
        }
    }

    pub fn connect_nonblocking(_: SocketAddr) -> io::Result<TcpStream> {
        Err(unsupported())
    }
}

pub use sys::connect_nonblocking;
pub use sys::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let start = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        // Indefinite wait: only the notify can end it.
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 0, "waker events are filtered, not reported");
        t.join().unwrap();
    }

    #[test]
    fn readable_socket_reports_its_key() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, 42, Interest::READABLE, PollMode::Level).unwrap();
        client.write_all(b"ping").unwrap();

        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev = events.iter().find(|e| e.key == 42).expect("socket readiness");
        assert!(ev.readable);

        // Level-triggered: still readable on the next wait until drained.
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 42 && e.readable));
        let mut buf = [0u8; 8];
        let mut server = server;
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        poller.delete(&server).unwrap();
    }

    #[test]
    fn writable_interest_toggles_via_modify() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        // A fresh socket's send buffer is empty: writable fires at once.
        poller.add(&client, 7, Interest::WRITABLE, PollMode::Level).unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.writable));
        // Drop write interest: nothing fires any more.
        poller.modify(&client, 7, Interest::READABLE, PollMode::Level).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(!events.iter().any(|e| e.key == 7));
    }

    #[test]
    fn nonblocking_connect_completes_through_the_poller() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(addr).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&stream, 1, Interest::WRITABLE, PollMode::Level).unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 1 && e.writable));
        assert!(stream.take_error().unwrap().is_none(), "SO_ERROR clean after connect");
        let _ = listener.accept().unwrap();
    }

    #[test]
    fn edge_mode_reports_a_transition_once() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&server, 9, Interest::READABLE, PollMode::Edge).unwrap();
        client.write_all(b"edge").unwrap();
        let mut events = Events::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 9 && e.readable));
        // Without draining the socket, the edge does not re-fire.
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        assert!(!events.iter().any(|e| e.key == 9));
    }
}
