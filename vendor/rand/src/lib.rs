//! Minimal, offline re-implementation of the subset of the [`rand`] 0.8
//! API this workspace uses: [`RngCore`], [`SeedableRng`], [`Rng`] with
//! `gen_range`, [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! [`rngs::StdRng`] here is **xoshiro256++** (public domain algorithm by
//! Blackman and Vigna) rather than the upstream ChaCha12; the workspace
//! never relies on the exact stream of the upstream `StdRng`, only on
//! determinism in the seed, which this implementation provides.
//!
//! [`rand`]: https://docs.rs/rand

/// Core low-level random number generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Instantiate from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Instantiate from a `u64`, expanding it with SplitMix64 as upstream
    /// `rand` does for small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in gen_range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let draw = ((span as u128 * rng.next_u64() as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = (((span + 1) as u128 * rng.next_u64() as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_half_open(0.0, 1.0, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait for slices: random shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = i as u64 + 1;
                let j = ((span as u128 * rng.next_u64() as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn from_seed_all_zero_is_fixed_up() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
