//! Minimal, offline re-implementation of the subset of the [`proptest`]
//! API this workspace uses: the [`proptest!`] macro, composable
//! [`Strategy`] values (ranges, tuples, `prop_map`, `prop_flat_map`,
//! [`collection::vec`][fn@collection::vec], [`option::of`], [`prop_oneof!`], [`Just`],
//! [`any`]), and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, acceptable for this workspace's tests:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message where the assertion formats them) but is not minimised.
//! * Case generation is deterministic per test (seeded from the test
//!   name), so failures reproduce run-to-run.
//!
//! [`proptest`]: https://docs.rs/proptest
//! [`Strategy`]: strategy::Strategy
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleUniform};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// A weighted choice among boxed strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` branches.
        ///
        /// # Panics
        ///
        /// Panics if `branches` is empty or all weights are zero.
        pub fn new(branches: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            let total_weight: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one weighted branch");
            Union { branches, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = (&mut *rng as &mut dyn RngCore).next_u64() % self.total_weight;
            for (weight, strat) in &self.branches {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total weight")
        }
    }

    /// Box a strategy for use in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill_bytes(&mut out);
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// A length range for [`vec`][fn@vec].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// The strategy returned by [`vec`][fn@vec].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod option {
    //! `Option` strategies.

    use rand::rngs::StdRng;
    use rand::RngCore;

    use crate::strategy::Strategy;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // None for roughly a quarter of cases, as a useful mix.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some(inner)` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a [`prop_assume!`]; try another.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    /// An input rejection.
    pub fn reject(msg: &str) -> TestCaseError {
        TestCaseError::Reject(msg.to_string())
    }
}

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Give up (panic) after this many [`prop_assume!`] rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256 cases; this workspace's protocol-level
        // properties are expensive, so the vendored default is smaller.
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

/// Drive one property: repeat `run_one` until `config.cases` cases pass.
///
/// # Panics
///
/// Panics when a case fails, or when too many cases are rejected by
/// [`prop_assume!`].
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut run_one: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut hasher = DefaultHasher::new();
    name.hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match run_one(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many rejected cases ({rejected}); weaken prop_assume! filters"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Define property tests: each `fn` runs `config.cases` times with fresh
/// random inputs drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident(
            $($pat:pat_param in $strat:expr),+ $(,)?
        ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure fails only this case's run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` == `{:?}`", left, right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+)
            ),
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{:?}` != `{:?}`", left, right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            ),
        }
    };
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -3i64..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..5, 0u32..5).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_and_option_strategies(
            v in crate::collection::vec(crate::option::of(0u8..10), 2..=4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            for x in v.into_iter().flatten() {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![1 => Just(0u8), 4 => 1u8..=9]) {
            prop_assume!(x != 5);
            prop_assert!(x < 10);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..2, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let err = std::panic::catch_unwind(|| {
            crate::run_cases(&ProptestConfig::with_cases(1), "doomed", |_| {
                Err(crate::TestCaseError::fail("boom".into()))
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("boom"));
    }
}
