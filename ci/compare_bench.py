#!/usr/bin/env python3
"""Bench-regression gate: compare fresh BENCH_*.json files against the
checked-in BENCH_baseline/ snapshots.

Fails (exit 1) when, for any row present in both baseline and current:

  * a sessions/s throughput metric drops below 75% of baseline, or
  * the market p99 epoch-close latency grows beyond 2x baseline
    (with a small absolute grace so microsecond noise cannot trip it), or
  * journal durability costs regress: journaled ingest throughput falls
    below 75% of its baseline, the in-file overhead of `fsync=never`
    journaling exceeds the ingest-overhead ceiling (journaled ingest
    under 30% of the unjournaled row of the SAME run), or crash
    recovery time grows beyond the recovery-time ceiling (2x baseline), or
  * the telemetry plane gets expensive: the in-run telemetry-on/off
    ingest ratio reported by BENCH_telemetry.json falls below 95% —
    flight ring, epoch traces, and a live scrape endpoint together may
    cost at most 5% of saturated ingest throughput, or
  * combinatorial winner determination slows down: BENCH_wd.json's
    per-size best solve time grows beyond 2x baseline (same grace as
    latency), the node budget stops being a hard cap, or a row's
    certified optimality bound (bound_ppm_min) collapses below 90% of
    the baseline's certification. The fallback rate is reported per
    size so a budget-accounting bug (fallback never engaging at 10^4
    bids) is visible in the summary, or
  * the deployment loses its outage bounds: BENCH_ha.json (written by
    the process-kill harness) reports the outage-window epoch-close
    p99 and the kill-to-rejoin-to-clear time; either growing beyond 2x
    baseline means epochs touching a dead peer stopped resolving by
    detection, or the reconnect path (backoff reset, re-handshake,
    epoch-boundary rejoin) got stuck.

Rows only present on one side are reported but never fail the gate, so
adding a sweep point does not require touching the baseline in the same
commit. Regenerate baselines with:

    cargo run --release -p dauctioneer-bench --bin market_soak -- --quick --json
    cargo run --release -p dauctioneer-bench --bin batch_throughput -- --quick --rounds 1 --json
    cargo run --release -p dauctioneer-bench --bin winner_determination -- --quick --json
    cargo bench -p dauctioneer-bench --bench wire_hot_path -- --json
    BENCH_HA_OUT=BENCH_ha.json cargo test --release --test process_kill
    mv BENCH_market_soak.json BENCH_journal.json BENCH_telemetry.json \
       BENCH_batch_throughput.json BENCH_wire.json BENCH_wd.json \
       BENCH_ha.json BENCH_baseline/
"""

import argparse
import json
import sys
from pathlib import Path

THROUGHPUT_FLOOR = 0.75  # current must be >= 75% of baseline sessions/s
LATENCY_CEIL = 2.0  # current p99 must be <= 2x baseline
LATENCY_GRACE_S = 0.050  # absolute slack below which p99 growth is noise
# Ingest-overhead ceiling: buffered (fsync=never) journaling may not eat
# more than 70% of the unjournaled ingest throughput of the same run.
# In-file and generous on purpose: it catches a hot-path disaster (a
# sync or copy snuck into every append), not scheduler jitter.
JOURNAL_OVERHEAD_FLOOR = 0.30
# The recovery-time ceiling reuses LATENCY_CEIL/LATENCY_GRACE_S: crash
# recovery may not take more than 2x baseline (plus the noise grace).
# Telemetry overhead ceiling: with the full plane on (flight recorder,
# epoch traces, metrics collectors, a scraped endpoint), saturated
# ingest must stay within 5% of the telemetry-off run of the SAME
# interleaved sweep. In-run on purpose: a slow CI host shifts both
# modes together, so the ratio isolates the plane's own cost.
TELEMETRY_OVERHEAD_FLOOR = 0.95
# Certified-bound floor for the budgeted winner-determination fallback:
# a row's bound_ppm_min may not fall below 90% of the baseline's. The
# bound is a *certificate* (welfare / root fractional bound), so a
# collapse means either the greedy seed or the search got worse.
WD_BOUND_FLOOR = 0.90


def load(path: Path):
    with open(path) as f:
        return json.load(f)


def check_throughput(name, key, baseline, current, failures, lines, metric="sessions/s"):
    if baseline <= 0:
        return
    ratio = current / baseline
    verdict = "ok"
    if ratio < THROUGHPUT_FLOOR:
        verdict = "REGRESSION"
        failures.append(
            f"{name} [{key}]: {metric} fell to {ratio:.0%} of baseline "
            f"({current:.1f} vs {baseline:.1f}, floor {THROUGHPUT_FLOOR:.0%})"
        )
    lines.append(f"  {name} [{key}] {metric}: {baseline:.1f} -> {current:.1f} ({ratio:.2f}x) {verdict}")


def check_latency(name, key, baseline, current, failures, lines, metric="p99 epoch-close latency"):
    bound = max(baseline * LATENCY_CEIL, baseline + LATENCY_GRACE_S)
    verdict = "ok"
    if current > bound:
        verdict = "REGRESSION"
        failures.append(
            f"{name} [{key}]: {metric} grew {current / baseline if baseline else float('inf'):.1f}x "
            f"({current * 1e3:.1f}ms vs {baseline * 1e3:.1f}ms, bound {bound * 1e3:.1f}ms)"
        )
    lines.append(
        f"  {name} [{key}] {metric}: {baseline * 1e3:.1f}ms -> {current * 1e3:.1f}ms {verdict}"
    )


def index_rows(rows, key_fields):
    return {tuple(row.get(k) for k in key_fields): row for row in rows}


def compare_batch_throughput(base, cur, failures, lines):
    name = "batch_throughput"
    base_rows = index_rows(base.get("batched_vs_sequential", []), ("sessions",))
    cur_rows = index_rows(cur.get("batched_vs_sequential", []), ("sessions",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        if crow is None:
            lines.append(f"  {name} [batched sessions={key[0]}]: row missing in current run (skipped)")
            continue
        check_throughput(
            name,
            f"batched sessions={key[0]}",
            brow["batched_sessions_per_s"],
            crow["batched_sessions_per_s"],
            failures,
            lines,
        )
    base_rows = index_rows(base.get("shards_x_transport", []), ("sessions", "transport", "shards"))
    cur_rows = index_rows(cur.get("shards_x_transport", []), ("sessions", "transport", "shards"))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"sessions={key[0]} {key[1]} shards={key[2]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(name, label, brow["sessions_per_s"], crow["sessions_per_s"], failures, lines)


def compare_wire(base, cur, failures, lines):
    name = "wire_hot_path"
    base_rows = index_rows(base.get("ops", []), ("op",))
    cur_rows = index_rows(cur.get("ops", []), ("op",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"op={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(
            name, label, brow["ops_per_s"], crow["ops_per_s"], failures, lines, metric="ops/s"
        )
    # Mesh m-sweep: steady-state frames/s through a real reactor mesh,
    # bring-up time, and the hard O(1) I/O-thread invariant. A relapse to
    # per-peer threads shows up as io_threads > baseline and fails even
    # when throughput happens to survive.
    base_rows = index_rows(base.get("mesh_sweep", []), ("m", "lanes"))
    cur_rows = index_rows(cur.get("mesh_sweep", []), ("m", "lanes"))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"mesh m={key[0]} lanes={key[1]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(
            name,
            label,
            brow["frames_per_s"],
            crow["frames_per_s"],
            failures,
            lines,
            metric="frames/s",
        )
        check_latency(
            name,
            label,
            brow["bring_up_s"],
            crow["bring_up_s"],
            failures,
            lines,
            metric="mesh bring-up",
        )
        if crow["io_threads"] > brow["io_threads"]:
            failures.append(
                f"{name} [{label}]: io_threads grew {brow['io_threads']} -> "
                f"{crow['io_threads']} (per-peer thread relapse)"
            )
            lines.append(
                f"  {name} [{label}] io_threads: {brow['io_threads']} -> "
                f"{crow['io_threads']} REGRESSION"
            )
        else:
            lines.append(
                f"  {name} [{label}] io_threads: {brow['io_threads']} -> "
                f"{crow['io_threads']} ok"
            )


def compare_market_soak(base, cur, failures, lines):
    name = "market_soak"
    base_rows = index_rows(base.get("runs", []), ("arrival",))
    cur_rows = index_rows(cur.get("runs", []), ("arrival",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"arrival={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(name, label, brow["sessions_per_sec"], crow["sessions_per_sec"], failures, lines)
        check_latency(
            name,
            label,
            brow["epoch_latency_p99_s"],
            crow["epoch_latency_p99_s"],
            failures,
            lines,
        )


def compare_journal(base, cur, failures, lines):
    name = "journal"
    base_rows = index_rows(base.get("runs", []), ("mode",))
    cur_rows = index_rows(cur.get("runs", []), ("mode",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"mode={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(
            name,
            label,
            brow["ingest_bids_per_sec"],
            crow["ingest_bids_per_sec"],
            failures,
            lines,
            metric="ingest bids/s",
        )
    # Ingest-overhead ceiling, *within* the current run so a uniformly
    # slower CI host cannot mask a journal hot-path regression.
    plain = cur_rows.get(("unjournaled",))
    buffered = cur_rows.get(("fsync=never",))
    if plain and buffered and plain["ingest_bids_per_sec"] > 0:
        ratio = buffered["ingest_bids_per_sec"] / plain["ingest_bids_per_sec"]
        verdict = "ok"
        if ratio < JOURNAL_OVERHEAD_FLOOR:
            verdict = "REGRESSION"
            failures.append(
                f"{name} [overhead]: fsync=never ingest is {ratio:.0%} of unjournaled "
                f"(ceiling: no less than {JOURNAL_OVERHEAD_FLOOR:.0%})"
            )
        lines.append(f"  {name} [overhead] fsync=never/unjournaled ingest: {ratio:.2f}x {verdict}")
    brec, crec = base.get("recovery"), cur.get("recovery")
    if brec and crec:
        check_latency(
            name,
            f"recovery epochs={crec.get('unsealed_epochs')}",
            brec["recovery_time_s"],
            crec["recovery_time_s"],
            failures,
            lines,
            metric="crash recovery time",
        )


def compare_telemetry(base, cur, failures, lines):
    name = "telemetry"
    base_rows = index_rows(base.get("runs", []), ("mode",))
    cur_rows = index_rows(cur.get("runs", []), ("mode",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"telemetry={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_throughput(
            name,
            label,
            brow["ingest_bids_per_sec"],
            crow["ingest_bids_per_sec"],
            failures,
            lines,
            metric="ingest bids/s",
        )
    # The headline gate: the in-run on/off ratio. Both runs of the pair
    # come from the same interleaved best-of-N sweep on the same host,
    # so anything below the floor is the telemetry plane itself.
    ratio = cur.get("overhead_ratio")
    if ratio is not None:
        verdict = "ok"
        if ratio < TELEMETRY_OVERHEAD_FLOOR:
            verdict = "REGRESSION"
            failures.append(
                f"{name} [overhead]: telemetry-on ingest is {ratio:.1%} of telemetry-off "
                f"(floor {TELEMETRY_OVERHEAD_FLOOR:.0%} — the plane may cost at most "
                f"{1 - TELEMETRY_OVERHEAD_FLOOR:.0%})"
            )
        lines.append(f"  {name} [overhead] on/off ingest ratio: {ratio:.3f} {verdict}")
    # The on-run must actually have been observed, else the ratio is a
    # comparison of nothing: zero scrapes means the endpoint was dead.
    on_row = cur_rows.get(("on",))
    if on_row is not None and on_row.get("scrapes_served", 0) == 0:
        failures.append(f"{name} [on]: zero scrapes served — the metrics endpoint never answered")


def compare_ha(base, cur, failures, lines):
    name = "ha"
    base_rows = index_rows(base.get("runs", []), ("scenario",))
    cur_rows = index_rows(cur.get("runs", []), ("scenario",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"scenario={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        # The outage window must stay detection-bound: a relapse to
        # deadline-bound closes shows up as seconds, not milliseconds.
        check_latency(
            name,
            label,
            brow["outage_epoch_p99_s"],
            crow["outage_epoch_p99_s"],
            failures,
            lines,
            metric="outage-window epoch p99",
        )
        # Rejoin-to-clear: restart instant to the first cleared epoch.
        # Dominated by the epoch period plus the redial backoff, so the
        # 2x ceiling catches a broken backoff reset or a stuck rejoin.
        check_latency(
            name,
            label,
            brow["reconnect_s"],
            crow["reconnect_s"],
            failures,
            lines,
            metric="reconnect time",
        )
        if crow.get("outage_epochs", 0) < 1:
            failures.append(
                f"{name} [{label}]: the kill produced no peer_down-aborted epoch"
            )


def compare_wd(base, cur, failures, lines):
    name = "winner_determination"
    base_rows = index_rows(base.get("runs", []), ("bids",))
    cur_rows = index_rows(cur.get("runs", []), ("bids",))
    for key, brow in base_rows.items():
        crow = cur_rows.get(key)
        label = f"bids={key[0]}"
        if crow is None:
            lines.append(f"  {name} [{label}]: row missing in current run (skipped)")
            continue
        check_latency(
            name,
            label,
            brow["wd_time_s"],
            crow["wd_time_s"],
            failures,
            lines,
            metric="WD solve time",
        )
        # The node budget is a determinism invariant, not a perf knob: a
        # replica that visits more nodes than the budget diverges from
        # its peers, so any excursion fails outright.
        if crow["nodes"] > crow["node_budget"]:
            failures.append(
                f"{name} [{label}]: visited {crow['nodes']} nodes over a "
                f"{crow['node_budget']}-node budget — the cap must be hard"
            )
        # Certified-bound floor: the fallback must keep certifying about
        # as much of the optimum as it used to.
        bb, cb = brow.get("bound_ppm_min", 0), crow.get("bound_ppm_min", 0)
        if bb > 0:
            verdict = "ok"
            if cb < bb * WD_BOUND_FLOOR:
                verdict = "REGRESSION"
                failures.append(
                    f"{name} [{label}]: certified bound fell {bb} -> {cb} ppm "
                    f"(floor {WD_BOUND_FLOOR:.0%} of baseline)"
                )
            lines.append(
                f"  {name} [{label}] certified bound: {bb} -> {cb} ppm, "
                f"fallback rate {crow.get('fallback_rate', 0):.0%} {verdict}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_baseline"))
    parser.add_argument("--current", type=Path, default=Path("."))
    parser.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="FILE",
        help="compare only these BENCH files (repeatable); CI jobs that "
        "produce a single file use this so the other baselines do not "
        "count as missing",
    )
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        metavar="FILE",
        help="exclude these BENCH files from the gate (repeatable)",
    )
    args = parser.parse_args()

    comparisons = [
        ("BENCH_batch_throughput.json", compare_batch_throughput),
        ("BENCH_market_soak.json", compare_market_soak),
        ("BENCH_journal.json", compare_journal),
        ("BENCH_telemetry.json", compare_telemetry),
        ("BENCH_wire.json", compare_wire),
        ("BENCH_wd.json", compare_wd),
        ("BENCH_ha.json", compare_ha),
    ]
    known = {filename for filename, _ in comparisons}
    for selected in args.only + args.skip:
        if selected not in known:
            print(f"FAIL: unknown bench file {selected!r} (known: {sorted(known)})")
            return 1
    if args.only:
        comparisons = [(f, fn) for f, fn in comparisons if f in args.only]
    if args.skip:
        comparisons = [(f, fn) for f, fn in comparisons if f not in args.skip]
    failures, lines = [], []
    compared = 0
    for filename, compare in comparisons:
        base_path = args.baseline / filename
        cur_path = args.current / filename
        if not base_path.exists():
            lines.append(f"  {filename}: no baseline checked in (skipped)")
            continue
        if not cur_path.exists():
            failures.append(f"{filename}: baseline exists but the current run produced no file")
            continue
        compare(load(base_path), load(cur_path), failures, lines)
        compared += 1

    print("bench-regression gate:")
    for line in lines:
        print(line)
    if compared == 0:
        print("FAIL: nothing was compared — baseline or current files missing entirely")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"ok: {compared} bench file(s) within thresholds "
          f"(floor {THROUGHPUT_FLOOR:.0%} sessions/s, ceil {LATENCY_CEIL:.1f}x p99)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
