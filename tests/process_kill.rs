//! The process-kill survival harness: run the real multi-process
//! deployment — one `dauction coordinator` plus three `dauction
//! provider` child processes over real sockets — SIGKILL one provider
//! mid-epoch at a seeded point, and prove the deployment contract:
//!
//! * **honest-or-⊥ on survivors** — no epoch hangs and none diverges;
//!   every abort during the outage classifies `peer_down` (never
//!   `unknown`);
//! * **bounded close during the outage** — epochs touching the dead
//!   peer resolve within detection time, far below the session
//!   deadline budget;
//! * **rejoin at the next epoch boundary** — the restarted provider
//!   joins under a fresh incarnation within the reconnect budget and
//!   the cluster clears epochs again;
//! * **journal integrity across the kill** — `dauction verify-log`
//!   certifies the coordinator's settlement chain after the run.
//!
//! The kill point derives from `CRASH_SEED` (CI sets a date-derived
//! value echoed to the step summary; any failure reproduces by
//! exporting the seed the log prints). When `BENCH_HA_OUT` is set the
//! harness emits a `BENCH_ha.json` row — outage-window epoch p99 and
//! rejoin-to-clear time — for the `ci/compare_bench.py` gate.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dauctioneer::market::verify_log;

const EPOCHS: u64 = 30;
const DEADLINE_MS: u64 = 3000;
const MESH_BUDGET_MS: u64 = 1500;
const EPOCH_MS: u64 = 250;

fn crash_seed() -> u64 {
    std::env::var("CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x2026_0808)
}

/// xorshift64*: tiny, seedable, good enough to scatter kill points.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.0
    }
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn wait_exit(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// One timestamped line of the coordinator's stdout.
#[derive(Debug, Clone)]
struct Line {
    at: Instant,
    text: String,
}

/// Parse the `{:?}` rendering of a `Duration` (`"11.3ms"`, `"1.057s"`,
/// `"980.3µs"`, `"17ns"`).
fn parse_duration(text: &str) -> Option<Duration> {
    let text = text.trim();
    let (number, scale) = if let Some(v) = text.strip_suffix("µs") {
        (v, 1e-6)
    } else if let Some(v) = text.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = text.strip_suffix("ns") {
        (v, 1e-9)
    } else if let Some(v) = text.strip_suffix('s') {
        (v, 1.0)
    } else {
        return None;
    };
    number.parse::<f64>().ok().map(|v| Duration::from_secs_f64(v * scale))
}

/// A coordinator epoch line, decoded.
#[derive(Debug, Clone)]
struct EpochLine {
    cleared: bool,
    reason: Option<String>,
    latency: Duration,
    at: Instant,
}

/// Decode `epoch  N (session S): ... cleared in D` /
/// `epoch  N (session S): ... outcome ⊥ (reason), D` lines.
fn parse_epoch_line(line: &Line) -> Option<EpochLine> {
    let text = line.text.trim_start();
    if !text.starts_with("epoch") {
        return None;
    }
    let latency = parse_duration(text.rsplit([' ', ',']).next()?)
        .or_else(|| parse_duration(text.rsplit("cleared in ").next()?))?;
    if let Some(rest) = text.split("outcome ⊥ (").nth(1) {
        let reason = rest.split(')').next()?.to_string();
        return Some(EpochLine { cleared: false, reason: Some(reason), latency, at: line.at });
    }
    if text.contains("cleared in") {
        return Some(EpochLine { cleared: true, reason: None, latency, at: line.at });
    }
    None
}

fn spawn_provider(bin: &str, id: usize, addr: &str) -> Reaper {
    Reaper(
        Command::new(bin)
            .args(["provider", "--id", &id.to_string(), "--join", addr])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dauction provider"),
    )
}

/// The acceptance test of the multi-process deployment: a
/// 1-coordinator + 3-provider market of real OS processes survives a
/// SIGKILL of one provider mid-epoch.
#[test]
fn sigkill_mid_epoch_survivors_stay_honest_and_killed_provider_rejoins() {
    let bin = env!("CARGO_BIN_EXE_dauction");
    let seed = crash_seed();
    println!("process-kill harness seed: {seed} (export CRASH_SEED={seed} to reproduce)");
    let mut rng = Rng(seed | 1);

    let mut journal = std::env::temp_dir();
    journal.push(format!("dauction-prockill-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    // The coordinator binds an ephemeral port and prints it; the
    // harness reads its stdout both for the address and for the
    // per-epoch outcome lines.
    let coordinator = Command::new(bin)
        .args([
            "coordinator",
            "--listen",
            "127.0.0.1:0",
            "--providers",
            "3",
            "--n",
            "8",
            "--seed",
            "7",
            "--epochs",
            &EPOCHS.to_string(),
            "--deadline-ms",
            &DEADLINE_MS.to_string(),
            "--mesh-budget-ms",
            &MESH_BUDGET_MS.to_string(),
            "--epoch-ms",
            &EPOCH_MS.to_string(),
            "--join-timeout-ms",
            "30000",
            "--journal",
        ])
        .arg(&journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn dauction coordinator");
    let mut coordinator = Reaper(coordinator);

    let lines: Arc<Mutex<Vec<Line>>> = Arc::new(Mutex::new(Vec::new()));
    let stdout = coordinator.0.stdout.take().expect("coordinator stdout piped");
    let reader = {
        let lines = Arc::clone(&lines);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                lines.lock().expect("lines lock").push(Line { at: Instant::now(), text: line });
            }
        })
    };
    let wait_for = |pred: &dyn Fn(&[Line]) -> bool, timeout: Duration, what: &str| {
        let start = Instant::now();
        loop {
            if pred(&lines.lock().expect("lines lock")) {
                return;
            }
            assert!(start.elapsed() < timeout, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    wait_for(
        &|l| l.iter().any(|x| x.text.contains("control plane on")),
        Duration::from_secs(15),
        "the control-plane address",
    );
    let addr = {
        let held = lines.lock().expect("lines lock");
        let line = held.iter().find(|x| x.text.contains("control plane on")).unwrap();
        let after = line.text.split("control plane on ").nth(1).unwrap();
        after.split(',').next().unwrap().trim().to_string()
    };
    println!("coordinator control plane: {addr}");

    let mut providers: Vec<Option<Reaper>> =
        (0..3).map(|id| Some(spawn_provider(bin, id, &addr))).collect();

    // Seeded kill point: let a few epochs clear, then SIGKILL one
    // provider partway into an epoch period.
    let pre_kill = 2 + (rng.next() % 4) as usize;
    let victim = (rng.next() % 3) as usize;
    let sub_epoch_delay = Duration::from_millis(rng.next() % EPOCH_MS);
    wait_for(
        &|l| l.iter().filter(|x| parse_epoch_line(x).is_some()).count() >= pre_kill,
        Duration::from_secs(60),
        "the pre-kill epochs",
    );
    std::thread::sleep(sub_epoch_delay);
    let mut dead = providers[victim].take().expect("victim handle");
    dead.0.kill().expect("SIGKILL the victim provider");
    dead.0.wait().expect("reap the victim");
    drop(dead);
    println!("killed provider {victim} after {pre_kill} epochs (+{sub_epoch_delay:?})");

    // The coordinator must notice — at least one epoch aborts with the
    // new PeerDown classification — and must keep closing epochs on a
    // bounded clock rather than hanging on the dead peer.
    wait_for(
        &|l| {
            l.iter().filter_map(parse_epoch_line).any(|e| e.reason.as_deref() == Some("peer_down"))
        },
        Duration::from_secs(30),
        "a peer_down abort after the kill",
    );

    // Restart the victim: same id, a new process (new mesh port, fresh
    // incarnation). It must rejoin within the reconnect budget and the
    // cluster must clear epochs again.
    let restarted_at = Instant::now();
    providers[victim] = Some(spawn_provider(bin, victim, &addr));
    wait_for(
        &|l| {
            let epochs: Vec<EpochLine> = l.iter().filter_map(parse_epoch_line).collect();
            epochs.iter().any(|e| e.cleared && e.at > restarted_at)
        },
        Duration::from_secs(60),
        "a cleared epoch after the rejoin",
    );
    let reconnect = {
        let held = lines.lock().expect("lines lock");
        let first_clear = held
            .iter()
            .filter_map(parse_epoch_line)
            .find(|e| e.cleared && e.at > restarted_at)
            .expect("cleared epoch after rejoin");
        first_clear.at - restarted_at
    };
    println!("rejoin-to-clear time: {reconnect:?}");

    // Let the run complete and collect the full transcript.
    let status = wait_exit(&mut coordinator.0, Duration::from_secs(120))
        .expect("coordinator finished its epochs");
    assert!(status.success(), "coordinator exited non-zero");
    drop(coordinator);
    let _ = reader.join();
    for provider in providers.iter_mut().flatten() {
        let status = wait_exit(&mut provider.0, Duration::from_secs(30)).expect("provider exited");
        assert!(status.success(), "a surviving provider exited non-zero");
    }

    let transcript = lines.lock().expect("lines lock").clone();
    let epochs: Vec<EpochLine> = transcript.iter().filter_map(parse_epoch_line).collect();
    assert_eq!(epochs.len() as u64, EPOCHS, "every epoch printed an outcome line");

    // Honest-or-⊥: no divergence among survivors, and every
    // kill-induced abort classifies non-unknown.
    for (i, epoch) in epochs.iter().enumerate() {
        assert_ne!(epoch.reason.as_deref(), Some("divergence"), "epoch {i}: survivors diverged");
        assert_ne!(
            epoch.reason.as_deref(),
            Some("unknown"),
            "epoch {i}: an abort failed to classify"
        );
    }
    let outage: Vec<&EpochLine> =
        epochs.iter().filter(|e| e.reason.as_deref() == Some("peer_down")).collect();
    assert!(!outage.is_empty(), "the kill produced no peer_down abort");
    let cleared = epochs.iter().filter(|e| e.cleared).count();
    assert!(
        cleared >= pre_kill,
        "only {cleared} epochs cleared across the whole run ({} outage aborts)",
        outage.len()
    );
    assert!(
        epochs.iter().any(|e| e.cleared && e.at > restarted_at),
        "no epoch cleared after the rejoin"
    );

    // Bounded close during the outage: peer-down epochs resolve by
    // detection, and no epoch of the run exceeds the full budget
    // (deadline + mesh bring-up + collection grace).
    let budget = Duration::from_millis(DEADLINE_MS + MESH_BUDGET_MS) + Duration::from_secs(3);
    let mut outage_latencies: Vec<Duration> = outage.iter().map(|e| e.latency).collect();
    outage_latencies.sort();
    let outage_p99 = *outage_latencies.last().expect("outage epochs present");
    assert!(
        outage_p99 < Duration::from_millis(DEADLINE_MS),
        "outage epochs must resolve by detection, not by the session deadline \
         (p99 {outage_p99:?})"
    );
    for (i, epoch) in epochs.iter().enumerate() {
        assert!(
            epoch.latency < budget,
            "epoch {i} close latency {:?} exceeded the {budget:?} budget",
            epoch.latency
        );
    }

    // The summary counts the rejoin.
    let summary = transcript
        .iter()
        .find(|l| l.text.contains("survivability:"))
        .expect("survivability summary printed");
    assert!(
        !summary.text.contains("0 provider reconnect(s)"),
        "the liveness layer counted no reconnect: {}",
        summary.text
    );

    // Settlement-chain integrity on the coordinator's journal: the
    // library walk and the CLI must both certify it.
    let summary = verify_log(&journal).expect("coordinator journal verifies after the kill");
    assert_eq!(summary.seals, EPOCHS, "every epoch sealed, aborted ones included");
    let cli = Command::new(bin)
        .arg("verify-log")
        .arg(&journal)
        .stdout(Stdio::null())
        .status()
        .expect("run verify-log");
    assert!(cli.success(), "verify-log rejected the coordinator journal");

    // The HA bench row for ci/compare_bench.py, when requested.
    if let Ok(out) = std::env::var("BENCH_HA_OUT") {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let json = format!(
            "{{\"bench\":\"ha\",\"provenance\":{{\"git_sha\":\"{}\",\
             \"host_cores\":{host_cores},\"unix_time\":{unix_time}}},\
             \"config\":{{\"m\":3,\"k\":1,\"n_users\":8,\"epochs\":{EPOCHS},\
             \"epoch_ms\":{EPOCH_MS},\"deadline_ms\":{DEADLINE_MS},\
             \"mesh_budget_ms\":{MESH_BUDGET_MS},\"seed\":{seed}}},\"runs\":[{{\
             \"scenario\":\"kill-one-provider\",\"outage_epochs\":{},\
             \"outage_epoch_p99_s\":{},\"reconnect_s\":{},\"epochs_cleared\":{}}}]}}\n",
            std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".into()),
            outage.len(),
            outage_p99.as_secs_f64(),
            reconnect.as_secs_f64(),
            cleared,
        );
        std::fs::write(&out, json).expect("write BENCH_ha.json");
        println!("wrote HA bench row to {out}");
    }
    std::fs::remove_file(&journal).unwrap();
}

/// Bring-up failure must name the providers that never arrived, not
/// just count them.
#[test]
fn coordinator_names_the_providers_that_never_joined() {
    let bin = env!("CARGO_BIN_EXE_dauction");
    let output = Command::new(bin)
        .args([
            "coordinator",
            "--listen",
            "127.0.0.1:0",
            "--providers",
            "3",
            "--epochs",
            "1",
            "--join-timeout-ms",
            "300",
        ])
        .output()
        .expect("run coordinator without providers");
    assert!(!output.status.success(), "bring-up must fail with no providers");
    let stderr = String::from_utf8_lossy(&output.stderr);
    for id in 0..3 {
        assert!(
            stderr.contains(&format!("provider {id}")),
            "bring-up error must name provider {id}:\n{stderr}"
        );
    }
}
