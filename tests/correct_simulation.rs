//! Definition 1 of the paper: the distributed simulation must produce the
//! outcome the trusted auctioneer would have produced on the agreed bids.
//!
//! These tests run the *full protocol stack* (bid agreement → validation →
//! coin → task graph) in the deterministic simulator and compare against
//! centralised executions of the same allocation algorithms.

use std::sync::Arc;

use dauctioneer::core::{DoubleAuctionProgram, FrameworkConfig, StandardAuctionProgram};
use dauctioneer::mechanisms::props::{feasibility_violations, rationality_violations};
use dauctioneer::mechanisms::solver::{solve_exhaustive, Instance};
use dauctioneer::mechanisms::{
    baselines::standard_welfare, DoubleAuction, Mechanism, SharedRng, StandardAuction,
    StandardAuctionConfig,
};
use dauctioneer::sim::{run_auction_sim, SchedulePolicy};
use dauctioneer::types::{BidVector, Bw, Money, Outcome, ProviderAsk, UserBid};
use dauctioneer::workload::{DoubleAuctionWorkload, StandardAuctionWorkload};

fn no_behaviors(m: usize) -> Vec<Option<Box<dyn dauctioneer::sim::Behavior>>> {
    (0..m).map(|_| None).collect()
}

/// The double auction is deterministic, so the distributed outcome must
/// *equal* the centralised one — the strongest form of Definition 1.
#[test]
fn distributed_double_auction_equals_centralised() {
    for seed in 0..5u64 {
        let bids = DoubleAuctionWorkload::new(20, 4, seed).generate();
        let m = 3;
        let cfg = FrameworkConfig::new(m, 1, 20, 4);
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids.clone(); m],
            no_behaviors(m),
            SchedulePolicy::SeededRandom(seed),
            seed,
        );
        let distributed = report.unanimous();
        let centralised = DoubleAuction::new().run(&bids, &SharedRng::from_material(b"anything"));
        assert_eq!(
            distributed,
            Outcome::Agreed(centralised),
            "distributed outcome must equal the trusted auctioneer's (seed {seed})"
        );
    }
}

/// With an exact solver, the distributed standard auction must find the
/// true optimum and charge VCG payments satisfying feasibility and
/// individual rationality.
#[test]
fn distributed_standard_auction_is_exact_and_rational() {
    for seed in 0..3u64 {
        let (bids, capacities) = StandardAuctionWorkload::new(8, 2, seed).generate();
        let auction = StandardAuction::new(StandardAuctionConfig::exact(capacities.clone()));
        let m = 3;
        let cfg = FrameworkConfig::new(m, 1, 8, 0);
        let report = run_auction_sim(
            &cfg,
            Arc::new(StandardAuctionProgram::new(auction)),
            vec![bids.clone(); m],
            no_behaviors(m),
            SchedulePolicy::Fifo,
            seed * 100,
        );
        let outcome = report.unanimous();
        let result = outcome.as_result().expect("honest run agrees");

        // Optimal welfare, verified against exhaustive enumeration.
        let optimum = solve_exhaustive(&Instance::from_bids(&bids, &capacities)).welfare;
        assert_eq!(
            standard_welfare(&bids, &result.allocation),
            optimum,
            "distributed run must find the optimum (seed {seed})"
        );
        assert!(feasibility_violations(&bids, result, Some(&capacities)).is_empty());
        assert!(rationality_violations(&bids, result).is_empty());
    }
}

/// The protocol itself is deterministic given seeds: two identical
/// sessions decide identically (replicated state machines cannot diverge).
#[test]
fn sessions_are_reproducible() {
    let bids = DoubleAuctionWorkload::new(15, 3, 9).generate();
    let m = 3;
    let cfg = FrameworkConfig::new(m, 1, 15, 3);
    let run = || {
        run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids.clone(); m],
            no_behaviors(m),
            SchedulePolicy::SeededRandom(5),
            77,
        )
        .unanimous()
    };
    assert_eq!(run(), run());
}

/// Validity (§4.1): bids submitted consistently to every provider survive
/// bid agreement verbatim, even when other bidders equivocate arbitrarily.
#[test]
fn consistent_bids_survive_equivocating_bidders() {
    let m = 3;
    let honest_bid = UserBid::new(Money::from_f64(1.2), Bw::from_f64(0.5));
    let views: Vec<BidVector> = (0..m)
        .map(|j| {
            BidVector::builder(2, 1)
                .user_bid(0, honest_bid)
                // User 1 tells every provider something different.
                .user_bid(
                    1,
                    UserBid::new(Money::from_f64(0.8 + 0.07 * j as f64), Bw::from_f64(0.3)),
                )
                .provider_ask(0, ProviderAsk::new(Money::from_f64(0.1), Bw::from_f64(9.0)))
                .build()
        })
        .collect();
    let cfg = FrameworkConfig::new(m, 1, 2, 1);
    let report = run_auction_sim(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        views,
        no_behaviors(m),
        SchedulePolicy::SeededRandom(3),
        123,
    );
    let outcome = report.unanimous();
    assert!(!outcome.is_abort(), "bidder-level misbehaviour must not abort the auction");
}

/// Paper §6: the minimum provider counts for each coalition bound are
/// 3, 5 and 7 (m > 2k); the configured parallelism matches Fig. 5's p.
#[test]
fn configuration_matches_paper_parameters() {
    assert!(FrameworkConfig::new(3, 1, 1, 0).validate().is_ok());
    assert!(FrameworkConfig::new(5, 2, 1, 0).validate().is_ok());
    assert!(FrameworkConfig::new(8, 3, 1, 0).validate().is_ok());
    assert!(FrameworkConfig::new(2, 1, 1, 0).validate().is_err());
    assert_eq!(FrameworkConfig::new(8, 1, 1, 0).parallelism(), 4);
    assert_eq!(FrameworkConfig::new(8, 3, 1, 0).parallelism(), 2);
}
