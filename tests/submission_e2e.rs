//! End-to-end submission path: the §3.2 collection rules — late,
//! duplicate, invalid, and missing bids becoming ⊥ — flowing through
//! `submission::BidCollector` into a **full distributed session**, and
//! through the continuous market service, with the ⊥ substitutions
//! visible in the final unanimous outcome.
//!
//! The collector rules were previously unit-tested in isolation; these
//! tests close the gap to the paper: the substituted ⊥ entries must
//! survive bid agreement and the replicated allocator, i.e. a bidder
//! that submitted late/invalid/never can not win, and a duplicate
//! submission's *first* bid is the one the market clears.

use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::{
    run_session, BidCollector, DoubleAuctionProgram, FrameworkConfig, RunOptions, SubmissionOutcome,
};
use dauctioneer::market::{EpochPolicy, MarketConfig, MarketService};
use dauctioneer::types::{BidVector, Bw, Money, Outcome, ProviderAsk, UserBid, UserId};

fn valid(valuation: f64) -> UserBid {
    UserBid::new(Money::from_f64(valuation), Bw::from_f64(0.5))
}

fn asks() -> [ProviderAsk; 3] {
    [
        ProviderAsk::new(Money::from_f64(0.10), Bw::from_f64(1.0)),
        ProviderAsk::new(Money::from_f64(0.20), Bw::from_f64(1.0)),
        ProviderAsk::new(Money::from_f64(0.30), Bw::from_f64(1.0)),
    ]
}

/// Run the §3.2 gauntlet into one collector and return the closed
/// vector every provider will input to bid agreement.
///
/// Slots: 0 = valid, 1 = invalid (⊥), 2 = duplicate (first kept),
/// 3 = late (⊥), 4 = never submitted (⊥), 5 = valid.
fn collect_gauntlet() -> BidVector {
    let mut c = BidCollector::new(6, 3);
    assert_eq!(c.submit(UserId(0), valid(1.20)), SubmissionOutcome::Accepted);
    // Invalid: zero valuation. The slot stays ⊥ and the submission is burnt.
    assert_eq!(
        c.submit(UserId(1), UserBid::new(Money::ZERO, Bw::from_f64(0.5))),
        SubmissionOutcome::RejectedInvalid
    );
    assert_eq!(c.submit(UserId(1), valid(1.25)), SubmissionOutcome::RejectedDuplicate);
    // Duplicate: the FIRST (high) bid is kept, the second (low) discarded.
    assert_eq!(c.submit(UserId(2), valid(1.10)), SubmissionOutcome::Accepted);
    assert_eq!(c.submit(UserId(2), valid(0.01)), SubmissionOutcome::RejectedDuplicate);
    assert_eq!(c.submit(UserId(5), valid(1.00)), SubmissionOutcome::Accepted);
    for (slot, ask) in asks().into_iter().enumerate() {
        c.set_ask(slot, ask);
    }
    let bids = c.close();
    // Late: after the deadline. Slot 3 stays ⊥.
    assert_eq!(c.submit(UserId(3), valid(1.30)), SubmissionOutcome::RejectedLate);
    bids
}

#[test]
fn collector_bottoms_survive_a_full_session() {
    let bids = collect_gauntlet();
    // The closed vector carries exactly the substitutions the paper mandates.
    assert!(bids.user_bid(UserId(0)).is_valid());
    assert!(!bids.user_bid(UserId(1)).is_valid(), "invalid ⇒ ⊥");
    assert!(bids.user_bid(UserId(2)).is_valid());
    assert!(!bids.user_bid(UserId(3)).is_valid(), "late ⇒ ⊥");
    assert!(!bids.user_bid(UserId(4)).is_valid(), "missing ⇒ ⊥");
    assert_eq!(
        bids.user_bid(UserId(2)).as_bid().unwrap().valuation(),
        Money::from_f64(1.10),
        "duplicate keeps the first submission"
    );

    // Now the full distributed pipeline: 3 providers, bid agreement,
    // validation, replicated allocation.
    let cfg = FrameworkConfig::new(3, 1, 6, 3);
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids; 3],
        &RunOptions::default(),
    );
    let outcome = report.unanimous();
    let result = outcome.as_result().expect("honest session clears");

    // The ⊥-substituted bidders cannot win anything…
    for u in [1u32, 3, 4] {
        assert!(
            result.allocation.user_total(UserId(u)).is_zero(),
            "user {u} was ⊥-substituted and must not win"
        );
        assert_eq!(result.payments.user_payment(UserId(u)), Money::ZERO);
    }
    // …while the surviving valid bidders trade.
    assert!(
        !result.allocation.winners().is_empty(),
        "valid bids must still clear against the asks"
    );
    for winner in result.allocation.winners() {
        assert!([UserId(0), UserId(2), UserId(5)].contains(&winner));
    }
}

#[test]
fn duplicate_first_bid_decides_the_outcome() {
    // Same gauntlet, but user 2's submissions arrive the other way
    // round: the kept FIRST bid is now the 0.01 lowball, so user 2 must
    // lose the auction it previously won.
    let mut c = BidCollector::new(6, 3);
    c.submit(UserId(0), valid(1.20));
    c.submit(UserId(2), valid(0.01)); // first: kept
    c.submit(UserId(2), valid(1.10)); // second: discarded
    c.submit(UserId(5), valid(1.00));
    for (slot, ask) in asks().into_iter().enumerate() {
        c.set_ask(slot, ask);
    }
    let bids = c.close();
    let cfg = FrameworkConfig::new(3, 1, 6, 3);
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids; 3],
        &RunOptions::default(),
    );
    let result = report.unanimous().as_result().expect("clears").clone();
    assert!(result.allocation.user_total(UserId(2)).is_zero(), "the kept lowball bid must lose");
}

/// The same gauntlet streamed through the continuous market produces
/// the same unanimous outcome as the direct collector → run_session
/// path: the service's ingestion is the collector, end to end.
#[test]
fn market_service_matches_direct_collector_path() {
    let mut config = MarketConfig::new(3, 1, 6, 3)
        // Count accepted bids only: the gauntlet accepts exactly 3.
        .with_epoch(EpochPolicy::ByCount(3))
        .with_asks(asks().to_vec());
    config.seed = 4242;
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("valid");
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();

    handle.submit_bid(UserId(0), valid(1.20)).unwrap();
    handle.submit_bid(UserId(1), UserBid::new(Money::ZERO, Bw::from_f64(0.5))).unwrap(); // invalid
    handle.submit_bid(UserId(1), valid(1.25)).unwrap(); // duplicate of a burnt slot
    handle.submit_bid(UserId(2), valid(1.10)).unwrap();
    handle.submit_bid(UserId(2), valid(0.01)).unwrap(); // duplicate, discarded
    handle.submit_bid(UserId(5), valid(1.00)).unwrap(); // 3rd accepted: closes epoch

    let epoch = outcomes.recv_timeout(Duration::from_secs(30)).expect("epoch closes");
    assert_eq!(epoch.accepted_bids, 3);

    // The epoch's closed vector equals the direct collector's (modulo
    // the late submission, which the epoch never saw).
    let direct = {
        let mut c = BidCollector::new(6, 3);
        c.submit(UserId(0), valid(1.20));
        c.submit(UserId(1), UserBid::new(Money::ZERO, Bw::from_f64(0.5)));
        c.submit(UserId(1), valid(1.25));
        c.submit(UserId(2), valid(1.10));
        c.submit(UserId(2), valid(0.01));
        c.submit(UserId(5), valid(1.00));
        for (slot, ask) in asks().into_iter().enumerate() {
            c.set_ask(slot, ask);
        }
        c.close()
    };
    assert_eq!(epoch.bids, direct, "market ingestion IS the collector");

    // And the epoch outcome equals the one-shot session over that vector.
    let cfg = FrameworkConfig::new(3, 1, 6, 3).with_session(epoch.session);
    let replay = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![direct; 3],
        &RunOptions { seed: epoch.seed, ..RunOptions::default() },
    );
    assert_eq!(replay.unanimous(), epoch.outcome);
    assert!(!matches!(epoch.outcome, Outcome::Abort));

    let stats = market.shutdown();
    assert_eq!(stats.bids_accepted, 3);
    assert_eq!(stats.bids_rejected_invalid, 1);
    assert_eq!(stats.bids_rejected_duplicate, 2);
}
