//! End-to-end chaos acceptance: every named scenario, on both
//! transports, terminates in the identical honest outcome or the
//! paper's ⊥-abort — never a hang, never a divergent clearing — and
//! seeded fault runs replay.
//!
//! This is the test-suite form of the `chaos_sweep --suite` contract
//! (the bench binary sweeps more sessions and reports survivability;
//! this suite pins the invariants into `cargo test`).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use dauctioneer::core::{
    run_batch_with, AdversaryKind, BatchConfig, BatchReport, BatchSession, DoubleAuctionProgram,
    DynProgram, FrameworkConfig, RunOptions, TransportKind,
};
use dauctioneer::market::{AbortReason, EpochPolicy, MarketConfig, MarketService, MechanismSpec};
use dauctioneer::net::FaultPlan;
use dauctioneer::types::{Bw, Money, Outcome, ProviderAsk, ProviderId, SessionId, UserBid, UserId};
use dauctioneer::workload::{
    chaos_suite, ChaosScenario, DoubleAuctionWorkload, Expectation, StandardAuctionWorkload,
};

const M: usize = 3;
const N_USERS: usize = 4;
const SESSIONS: usize = 2;

fn cfg() -> FrameworkConfig {
    FrameworkConfig::new(M, 1, N_USERS, M)
}

fn specs(seed: u64) -> Vec<BatchSession> {
    (0..SESSIONS)
        .map(|s| {
            let bids = DoubleAuctionWorkload::new(N_USERS, M, seed + s as u64).generate();
            BatchSession::uniform(SessionId(s as u64), bids, M, seed + 977 * s as u64)
        })
        .collect()
}

fn options() -> RunOptions {
    RunOptions { deadline: Duration::from_secs(1), ..RunOptions::default() }
}

fn run_sharded(
    scenario: &ChaosScenario,
    transport: TransportKind,
    shards: usize,
    seed: u64,
) -> BatchReport {
    let (chaos, adversaries) = scenario.faults(seed, M);
    run_batch_with(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        specs(seed),
        &options(),
        &BatchConfig { shards, transport, chaos, adversaries },
    )
}

fn run(scenario: &ChaosScenario, transport: TransportKind, seed: u64) -> BatchReport {
    run_sharded(scenario, transport, 1, seed)
}

/// The transport matrix every scenario must survive: in-process
/// channels, a dedicated TCP mesh, and **two shards multiplexed over
/// one TCP mesh** (`tcp-mux`) — the chaos/adversary stack wraps the mux
/// lane endpoints exactly as it wraps any other transport.
const MATRIX: [(TransportKind, usize, &str); 3] = [
    (TransportKind::InProc, 1, "inproc"),
    (TransportKind::Tcp, 1, "tcp"),
    (TransportKind::Tcp, 2, "tcp-mux"),
];

fn outcome_matrix(report: &BatchReport) -> Vec<Vec<Outcome>> {
    report.sessions.iter().map(|s| s.outcomes.clone()).collect()
}

/// The §3.2 contract of one faulty run against its honest reference:
/// per provider, the outcome is the identical honest pair or ⊥; within
/// a session, no two providers clear different trades.
fn assert_honest_or_bottom(
    scenario: &str,
    transport: &str,
    report: &BatchReport,
    honest: &[Outcome],
) {
    for (session, honest_outcome) in report.sessions.iter().zip(honest) {
        assert!(!honest_outcome.is_abort(), "reference run must clear");
        for outcome in &session.outcomes {
            if !outcome.is_abort() {
                assert_eq!(
                    outcome, honest_outcome,
                    "{scenario}/{transport} session {}: a provider cleared a non-honest trade",
                    session.session
                );
            }
        }
    }
}

#[test]
fn every_scenario_terminates_honest_or_bottom_on_both_transports() {
    let seed = 0xC4A0;
    let baseline = run(&chaos_suite()[0], TransportKind::InProc, seed);
    assert!(baseline.all_agreed(), "fault-free baseline must clear everything");
    let honest: Vec<Outcome> = baseline.sessions.iter().map(|s| s.unanimous()).collect();

    for scenario in chaos_suite() {
        for (transport, shards, label) in MATRIX {
            // Returning at all is the termination half of the contract:
            // undecided sessions read ⊥ at the deadline instead of
            // hanging.
            let report = run_sharded(&scenario, transport, shards, seed);
            assert_eq!(report.sessions.len(), SESSIONS);
            assert_honest_or_bottom(scenario.name, label, &report, &honest);
            if scenario.expect == Expectation::HonestOnly {
                assert!(
                    report.all_agreed(),
                    "{}/{label}: faults within the model's assumptions must still clear",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn tcp_mux_replays_and_matches_the_fault_free_reference() {
    // The mux column's replay half: chaos over two lanes of one socket
    // mesh is still a deterministic function of the seed (fault
    // decisions are salted per shard, so the reference is another
    // tcp-mux run, not the single-shard rows), and the benign plan over
    // the mux is outcome-identical to the unwrapped mux run.
    let seed = 0xBEEF;
    for scenario in chaos_suite().iter().filter(|s| s.replayable_outcomes()) {
        let first = outcome_matrix(&run_sharded(scenario, TransportKind::Tcp, 2, seed));
        let again = outcome_matrix(&run_sharded(scenario, TransportKind::Tcp, 2, seed));
        assert_eq!(first, again, "{}: tcp-mux must replay from its seed", scenario.name);
    }
    let unwrapped = run_batch_with(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        specs(88),
        &options(),
        &BatchConfig { shards: 2, transport: TransportKind::Tcp, ..BatchConfig::default() },
    );
    let wrapped = run_batch_with(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        specs(88),
        &options(),
        &BatchConfig {
            shards: 2,
            transport: TransportKind::Tcp,
            chaos: Some(FaultPlan::seeded(5)),
            ..BatchConfig::default()
        },
    );
    assert!(wrapped.all_agreed());
    assert_eq!(outcome_matrix(&unwrapped), outcome_matrix(&wrapped));
}

#[test]
fn replayable_scenarios_are_seed_deterministic_across_backends() {
    let seed = 0xD1CE;
    for scenario in chaos_suite().iter().filter(|s| s.replayable_outcomes()) {
        let inproc = outcome_matrix(&run(scenario, TransportKind::InProc, seed));
        let again = outcome_matrix(&run(scenario, TransportKind::InProc, seed));
        assert_eq!(inproc, again, "{}: same seed, same outcomes", scenario.name);
        let tcp = outcome_matrix(&run(scenario, TransportKind::Tcp, seed));
        assert_eq!(inproc, tcp, "{}: InProc and TCP must agree for one seed", scenario.name);
    }
}

#[test]
fn benign_plan_is_outcome_identical_to_the_unwrapped_transport() {
    // The drop-probability-0 plan (all knobs zero) must be outcome-
    // invisible on every backend: wrapping is free until armed.
    for transport in [TransportKind::InProc, TransportKind::Tcp] {
        let unwrapped = run_batch_with(
            &cfg(),
            Arc::new(DoubleAuctionProgram::new()),
            specs(77),
            &options(),
            &BatchConfig { shards: 1, transport, ..BatchConfig::default() },
        );
        let wrapped = run_batch_with(
            &cfg(),
            Arc::new(DoubleAuctionProgram::new()),
            specs(77),
            &options(),
            &BatchConfig {
                shards: 1,
                transport,
                chaos: Some(FaultPlan::seeded(123)),
                ..BatchConfig::default()
            },
        );
        assert!(wrapped.all_agreed());
        assert_eq!(outcome_matrix(&unwrapped), outcome_matrix(&wrapped), "{transport:?}");
    }
}

// ---------------------------------------------------------------------
// The mechanism matrix: the chaos contract is mechanism-independent.
//
// The combinatorial program replicates an NP-hard node-budgeted search
// and the divisible program runs Algorithm-1-style payment groups, yet
// under every chaos scenario both must read exactly like the double
// auction: the identical honest outcome at every provider, or ⊥ —
// never a divergent clearing, never a hang.
// ---------------------------------------------------------------------

/// The two new mechanism specs the matrix covers; the double and
/// standard auctions are exercised by the tests above and the core
/// suites.
fn mechanism_matrix() -> [MechanismSpec; 2] {
    ["combinatorial,budget=20000".parse().unwrap(), "divisible,beta=0.05".parse().unwrap()]
}

/// Sessions carrying §6.3-shaped user bids (providers hold capacity but
/// do not bid), plus the capacity vector the mechanism program is built
/// around.
fn mechanism_specs(seed: u64) -> (Vec<BatchSession>, Vec<Bw>) {
    let (_, capacities) = StandardAuctionWorkload::new(N_USERS, M, seed).generate();
    let sessions = (0..SESSIONS)
        .map(|s| {
            let (bids, _) = StandardAuctionWorkload::new(N_USERS, M, seed + s as u64).generate();
            BatchSession::uniform(SessionId(s as u64), bids, M, seed + 977 * s as u64)
        })
        .collect();
    (sessions, capacities)
}

fn run_mechanism(
    spec: MechanismSpec,
    scenario: &ChaosScenario,
    transport: TransportKind,
    seed: u64,
) -> BatchReport {
    let (sessions, capacities) = mechanism_specs(seed);
    let (chaos, adversaries) = scenario.faults(seed, M);
    // No ask slots: §6.3-style providers publish capacity out of band
    // (baked into the program) instead of bidding.
    run_batch_with(
        &FrameworkConfig::new(M, 1, N_USERS, 0),
        Arc::new(DynProgram::new(spec.build_program(capacities))),
        sessions,
        &options(),
        &BatchConfig { shards: 1, transport, chaos, adversaries },
    )
}

#[test]
fn combinatorial_and_divisible_terminate_honest_or_bottom_under_chaos() {
    let seed = 0xC0DE;
    for spec in mechanism_matrix() {
        let baseline = run_mechanism(spec, &chaos_suite()[0], TransportKind::InProc, seed);
        assert!(baseline.all_agreed(), "{spec}: fault-free baseline must clear everything");
        let honest: Vec<Outcome> = baseline.sessions.iter().map(|s| s.unanimous()).collect();

        for scenario in chaos_suite() {
            for transport in [TransportKind::InProc, TransportKind::Tcp] {
                let report = run_mechanism(spec, &scenario, transport, seed);
                assert_eq!(report.sessions.len(), SESSIONS);
                assert_honest_or_bottom(scenario.name, &format!("{spec}"), &report, &honest);
                if scenario.expect == Expectation::HonestOnly {
                    assert!(
                        report.all_agreed(),
                        "{}/{spec}: faults within the model's assumptions must still clear",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn mechanism_outcomes_replay_identically_across_backends() {
    // The budget is counted in search *nodes*, so the combinatorial
    // clearing — fallback and all — and the randomness-free divisible
    // clearing are pure functions of (seed, bids): InProc and TCP runs
    // of the same seeded scenario must agree outcome-for-outcome.
    let seed = 0xD05E;
    for spec in mechanism_matrix() {
        for scenario in chaos_suite().iter().filter(|s| s.replayable_outcomes()) {
            let inproc =
                outcome_matrix(&run_mechanism(spec, scenario, TransportKind::InProc, seed));
            let again = outcome_matrix(&run_mechanism(spec, scenario, TransportKind::InProc, seed));
            assert_eq!(inproc, again, "{}/{spec}: same seed, same outcomes", scenario.name);
            let tcp = outcome_matrix(&run_mechanism(spec, scenario, TransportKind::Tcp, seed));
            assert_eq!(
                inproc, tcp,
                "{}/{spec}: InProc and TCP must agree for one seed",
                scenario.name
            );
        }
    }
}

#[test]
fn market_survivability_counters_account_for_every_epoch() {
    // A lossy mesh under the continuous market: epochs keep closing,
    // each one reads the honest outcome or ⊥, and the cleared/aborted
    // split accounts for every epoch. Shutdown drains — no hang.
    let mut config = MarketConfig::new(M, 1, N_USERS, 1)
        .with_epoch(EpochPolicy::ByCount(2))
        .with_asks(vec![ProviderAsk::new(Money::from_f64(0.1), Bw::from_f64(4.0))])
        .with_chaos(FaultPlan::seeded(31).with_drop(0.25));
    config.session_deadline = Duration::from_millis(600);
    let mut market = MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).unwrap();
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();
    for i in 0..8u32 {
        handle
            .submit_bid(
                UserId(i % N_USERS as u32),
                UserBid::new(Money::from_f64(1.0), Bw::from_f64(0.5)),
            )
            .unwrap();
    }
    let stats = market.shutdown();
    assert_eq!(stats.epochs_closed, 4, "8 accepted bids at 2 per epoch");
    assert_eq!(
        stats.epochs_cleared + stats.epochs_aborted,
        stats.epochs_closed,
        "every epoch is exactly one of cleared or aborted"
    );
    // Telemetry contract: every abort is classified — the per-reason
    // breakdown accounts for each aborted epoch and none reads unknown.
    assert_eq!(
        stats.epochs_aborted_by_reason.total(),
        stats.epochs_aborted,
        "every aborted epoch carries exactly one abort reason"
    );
    assert_eq!(
        stats.epochs_aborted_by_reason.get(AbortReason::Unknown),
        0,
        "no abort under a known fault plan may classify as unknown"
    );
    assert!(stats.chaos.dropped > 0, "the mesh fault counters surface in MarketStats");
    let mut seen = 0;
    while let Ok(epoch) = outcomes.try_recv() {
        seen += 1;
        assert_eq!(epoch.outcomes.len(), M);
    }
    assert_eq!(seen, stats.epochs_closed);
}

#[test]
fn market_with_crashed_provider_aborts_every_epoch_but_keeps_serving() {
    let mut config = MarketConfig::new(M, 1, N_USERS, 1)
        .with_epoch(EpochPolicy::ByCount(2))
        .with_asks(vec![ProviderAsk::new(Money::from_f64(0.1), Bw::from_f64(4.0))])
        .with_adversary(ProviderId(2), AdversaryKind::Silent { after: 0 });
    config.session_deadline = Duration::from_millis(500);
    let mut market = MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).unwrap();
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();
    for i in 0..4u32 {
        handle
            .submit_bid(
                UserId(i % N_USERS as u32),
                UserBid::new(Money::from_f64(1.0), Bw::from_f64(0.5)),
            )
            .unwrap();
    }
    let stats = market.shutdown();
    assert_eq!(stats.epochs_closed, 2);
    assert_eq!(stats.epochs_aborted, 2, "a crashed provider ⊥s every epoch (m=3, k=1)");
    assert_eq!(stats.epochs_cleared, 0);
    assert_eq!(
        stats.epochs_aborted_by_reason.get(AbortReason::Adversary),
        2,
        "aborts caused by a configured adversary classify as adversary"
    );
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::Unknown), 0);
    while let Ok(epoch) = outcomes.try_recv() {
        assert!(epoch.outcome.is_abort());
    }
}

// ---------------------------------------------------------------------
// Seed-exact replay of arbitrary fault plans.
//
// The threaded runtime does not fix cross-link scheduling, so arbitrary
// fault mixes there guarantee safety (above) but not outcome identity.
// For the exactness claim — same seed ⇒ byte-identical report — the
// engines are driven *deterministically*: one thread, round-robin
// delivery, every provider's endpoint wrapped in the same
// `ChaosTransport` the real runtimes use.
// ---------------------------------------------------------------------

use bytes::Bytes;
use dauctioneer::core::{Block, OutboxCtx, SessionEngine};
use dauctioneer::net::{ChaosStats, ChaosTransport, RecvError, Transport};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type Inboxes = Rc<RefCell<Vec<VecDeque<(ProviderId, Bytes)>>>>;

/// A single-threaded in-memory mesh endpoint: `recv` pops this
/// provider's queue or reports `Timeout` (never blocks).
struct LocalEndpoint {
    me: ProviderId,
    m: usize,
    inboxes: Inboxes,
}

impl Transport for LocalEndpoint {
    fn me(&self) -> ProviderId {
        self.me
    }

    fn num_providers(&self) -> usize {
        self.m
    }

    fn send(&mut self, to: ProviderId, payload: Bytes) {
        self.inboxes.borrow_mut()[to.index()].push_back((self.me, payload));
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        self.inboxes.borrow_mut()[self.me.index()].pop_front().ok_or(RecvError::Timeout)
    }
}

/// Drive one session to quiescence under `plan`, deterministically.
/// Returns the per-provider outcomes and each wrapper's fault counters.
fn deterministic_run(plan: FaultPlan, seed: u64) -> (Vec<Outcome>, Vec<ChaosStats>) {
    let cfg = cfg().with_session(SessionId(1));
    let bids = DoubleAuctionWorkload::new(N_USERS, M, seed).generate();
    let mut engines =
        SessionEngine::roster(&cfg, &Arc::new(DoubleAuctionProgram::new()), vec![bids; M], seed);
    let inboxes: Inboxes = Rc::new(RefCell::new((0..M).map(|_| VecDeque::new()).collect()));
    let mut chaos: Vec<ChaosTransport<LocalEndpoint>> = (0..M)
        .map(|j| {
            ChaosTransport::new(
                LocalEndpoint { me: ProviderId(j as u32), m: M, inboxes: Rc::clone(&inboxes) },
                plan,
            )
        })
        .collect();

    let deposit = |from: usize, ctx: &mut OutboxCtx| {
        for (to, payload) in ctx.drain() {
            inboxes.borrow_mut()[to.index()].push_back((ProviderId(from as u32), payload));
        }
    };
    for (j, engine) in engines.iter_mut().enumerate() {
        let mut ctx = OutboxCtx::new(ProviderId(j as u32), M);
        engine.start(&mut ctx);
        deposit(j, &mut ctx);
    }
    loop {
        let mut progressed = false;
        for (j, engine) in engines.iter_mut().enumerate() {
            while let Ok((from, payload)) = chaos[j].recv_timeout(Duration::ZERO) {
                let mut ctx = OutboxCtx::new(ProviderId(j as u32), M);
                engine.on_message(from, &payload, &mut ctx);
                deposit(j, &mut ctx);
                progressed = true;
            }
        }
        if !progressed {
            break; // quiescent: everything deliverable was delivered
        }
    }
    let outcomes = engines
        .iter_mut()
        .map(|engine| {
            engine.force_abort(); // undecided reads ⊥, as in the drive loops
            engine.outcome().expect("decided or aborted")
        })
        .collect();
    (outcomes, chaos.iter().map(ChaosTransport::stats).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite invariant: a session under *any* content-fault plan is
    /// a deterministic function of its seed — same seed, byte-identical
    /// report: identical per-provider outcomes AND identical injected-
    /// fault counters at every provider.
    #[test]
    fn any_fault_plan_replays_byte_identically_under_deterministic_drive(
        seed in any::<u64>(),
        drop in 0.0..0.3f64,
        dup in 0.0..0.3f64,
        corrupt in 0.0..0.3f64,
    ) {
        let plan = FaultPlan::seeded(seed).with_drop(drop).with_duplicate(dup).with_corrupt(corrupt);
        let first = deterministic_run(plan, seed);
        let second = deterministic_run(plan, seed);
        prop_assert_eq!(&first, &second);
        // And a benign plan on the same drive clears with no fault ever
        // injected — outcome-identical to an unwrapped run.
        let (clean, stats) = deterministic_run(FaultPlan::seeded(seed), seed);
        prop_assert!(clean.iter().all(|o| !o.is_abort()));
        prop_assert!(stats.iter().all(|s| s.total() == 0));
    }
}
