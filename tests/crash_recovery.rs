//! The crash-test harness: `kill -9` a real journaled market daemon at
//! seeded-random points mid-epoch, restart it with `--recover`, and
//! prove the durability contract end to end, over real TCP sockets and
//! a real filesystem:
//!
//! * **zero accepted-bid loss** — every `Accepted` record durable at
//!   the instant of the kill is still present (and sealed) after
//!   recovery;
//! * **settlement-chain continuity** — the recovered journal passes the
//!   offline chain walk, and the `dauction verify-log` CLI agrees
//!   (exit 0);
//! * **tamper rejection** — flipping a byte of the recovered journal
//!   makes `verify-log` exit non-zero with a divergence report.
//!
//! The kill schedule derives from `CRASH_SEED` (CI sets a date-derived
//! seed, so the schedule rotates daily but any failure reproduces by
//! exporting the seed the log echoes).

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dauctioneer::market::{scan, verify_log, ScanResult};
use dauctioneer::types::JournalRecord;

const KILL_POINTS: u32 = 10;

fn crash_seed() -> u64 {
    std::env::var("CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x2026_0808)
}

/// xorshift64*: tiny, seedable, good enough to scatter kill points.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.0
    }
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dauction-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn read_scan(path: &Path) -> ScanResult {
    scan(&std::fs::read(path).expect("journal readable"))
}

/// The `(epoch, user)` identity of every `Accepted` record, in order.
fn accepted_records(result: &ScanResult) -> Vec<(u64, u32)> {
    result
        .records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Accepted { epoch, user, .. } => Some((*epoch, user.0)),
            _ => None,
        })
        .collect()
}

fn wait_for_file(path: &Path, timeout: Duration) {
    let start = Instant::now();
    while !path.exists() {
        assert!(start.elapsed() < timeout, "journal {} never appeared", path.display());
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The NP-hard mechanism under the same harness: kill a journaled
/// `--mechanism combinatorial` daemon at a seeded point, then recover
/// the durable prefix **twice** (two independent processes over two
/// copies of the same torn journal). Because the winner-determination
/// budget is counted in search nodes — never wall-clock — both
/// recoveries must re-clear every unsealed epoch to byte-identical
/// journals, seal them under the mechanism's name, and refuse to
/// recover under any other mechanism.
#[test]
fn combinatorial_recovery_re_clears_byte_identically() {
    let bin = env!("CARGO_BIN_EXE_dauction");
    let seed = crash_seed();
    println!("crash harness seed: {seed} (export CRASH_SEED={seed} to reproduce)");
    let mut rng = Rng(seed | 1);
    let spec = "combinatorial,budget=20000";
    let path = temp_journal("combinatorial");
    let delay = Duration::from_millis(150 + rng.next() % 350);

    let child = Command::new(bin)
        .args([
            "serve",
            "--transport",
            "tcp",
            "--rate",
            "1500",
            "--seed",
            "7",
            "--epochs",
            "1000000",
            "--fsync",
            "always",
            "--mechanism",
            spec,
            "--journal",
        ])
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dauction serve --mechanism combinatorial");
    let mut child = Reaper(child);
    wait_for_file(&path, Duration::from_secs(10));
    std::thread::sleep(delay);
    child.0.kill().expect("SIGKILL the daemon");
    child.0.wait().expect("reap the daemon");
    drop(child);

    let durable = accepted_records(&read_scan(&path));

    // Two independent recoveries of the same durable prefix.
    let twin = temp_journal("combinatorial-twin");
    std::fs::copy(&path, &twin).expect("copy the torn journal");
    for journal in [&path, &twin] {
        let recovery = Command::new(bin)
            .args(["serve", "--recover", "--epochs", "0", "--seed", "7", "--mechanism", spec])
            .arg("--journal")
            .arg(journal)
            .output()
            .expect("run recovery");
        assert!(
            recovery.status.success(),
            "recovery of {} failed (delay {delay:?}):\n{}\n{}",
            journal.display(),
            String::from_utf8_lossy(&recovery.stdout),
            String::from_utf8_lossy(&recovery.stderr)
        );
    }
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&twin).unwrap(),
        "two independent recoveries re-cleared the same epochs differently — the \
         node-budgeted search must be a pure function of (seed, bids)"
    );

    if !durable.is_empty() {
        let summary = verify_log(&path).expect("recovered journal verifies");
        assert!(summary.seals >= 1, "recovery sealed the replayed epochs");
        assert_eq!(summary.accepted, durable.len() as u64, "zero accepted-bid loss");
        assert_eq!(
            summary.mechanism.as_deref(),
            Some("combinatorial-auction"),
            "seals carry the mechanism that cleared them"
        );

        // Provenance is enforced, not decorative: the same journal under
        // a different mechanism must be refused.
        let refused = Command::new(bin)
            .args(["serve", "--recover", "--epochs", "0", "--mechanism", "divisible"])
            .arg("--journal")
            .arg(&path)
            .output()
            .expect("run cross-mechanism recovery");
        assert!(!refused.status.success(), "recovery under a different mechanism must be refused");
        assert!(
            String::from_utf8_lossy(&refused.stderr).contains("refusing to re-clear"),
            "the refusal must name the mechanism conflict:\n{}",
            String::from_utf8_lossy(&refused.stderr)
        );
    }
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&twin).unwrap();
}

#[test]
fn kill_dash_nine_loses_no_accepted_bid() {
    let bin = env!("CARGO_BIN_EXE_dauction");
    let seed = crash_seed();
    println!("crash harness seed: {seed} (export CRASH_SEED={seed} to reproduce)");
    let mut rng = Rng(seed | 1);

    let mut total_survivors = 0usize;
    let mut last_journal: Option<PathBuf> = None;
    for point in 0..KILL_POINTS {
        let path = temp_journal(&format!("p{point}"));
        let delay = Duration::from_millis(20 + rng.next() % 350);

        // A real daemon over real sockets, fsyncing every accepted bid.
        let child = Command::new(bin)
            .args([
                "serve",
                "--transport",
                "tcp",
                "--rate",
                "1500",
                "--seed",
                "7",
                "--epochs",
                "1000000",
                "--fsync",
                "always",
                "--journal",
            ])
            .arg(&path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dauction serve");
        let mut child = Reaper(child);

        // Arm the timer only once the journal is live, then SIGKILL —
        // no drain, no final sync, mid-epoch with high probability.
        wait_for_file(&path, Duration::from_secs(10));
        std::thread::sleep(delay);
        child.0.kill().expect("SIGKILL the daemon");
        child.0.wait().expect("reap the daemon");
        drop(child);

        // What was durable at the instant of death.
        let pre = read_scan(&path);
        let durable = accepted_records(&pre);

        // Restart with --recover: report and exit cleanly.
        let recovery = Command::new(bin)
            .args(["serve", "--recover", "--epochs", "0", "--seed", "7", "--journal"])
            .arg(&path)
            .output()
            .expect("run recovery");
        let stdout = String::from_utf8_lossy(&recovery.stdout);
        assert!(
            recovery.status.success(),
            "kill point {point} (delay {delay:?}): recovery failed\n{stdout}\n{}",
            String::from_utf8_lossy(&recovery.stderr)
        );
        assert!(
            stdout.contains("recovered:"),
            "kill point {point}: no recovery report in:\n{stdout}"
        );

        // Zero accepted-bid loss: the durable prefix survived verbatim
        // (recovery only appends — new seals — and truncates the torn
        // tail that was never acknowledged).
        let post = read_scan(&path);
        assert_eq!(post.dropped_bytes, 0, "kill point {point}: recovery left a torn tail");
        let survivors = accepted_records(&post);
        assert_eq!(
            survivors, durable,
            "kill point {point} (delay {delay:?}): accepted bids lost or invented"
        );

        // Chain continuity: the offline walk certifies every seal, and
        // every durable accepted bid is covered by one (the walk
        // cross-checks per-epoch counts against the seals).
        let summary = verify_log(&path)
            .unwrap_or_else(|e| panic!("kill point {point}: recovered journal rejected: {e}"));
        assert_eq!(summary.accepted, durable.len() as u64);
        let sealed_epochs: std::collections::BTreeSet<u64> = post
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Sealed(seal) => Some(seal.epoch),
                _ => None,
            })
            .collect();
        for (epoch, user) in &durable {
            assert!(
                sealed_epochs.contains(epoch),
                "kill point {point}: accepted bid (epoch {epoch}, user {user}) has no seal"
            );
        }

        // The CLI agrees with the library.
        let status = Command::new(bin)
            .arg("verify-log")
            .arg(&path)
            .stdout(Stdio::null())
            .status()
            .expect("run verify-log");
        assert!(status.success(), "kill point {point}: verify-log rejected a recovered journal");

        total_survivors += durable.len();
        if point + 1 == KILL_POINTS {
            last_journal = Some(path);
        } else {
            std::fs::remove_file(&path).unwrap();
        }
    }
    println!("{KILL_POINTS} kill points, {total_survivors} durable accepted bids, zero lost");

    // Tamper rejection, CLI-level: flip one byte in the middle of the
    // last recovered journal — verify-log must exit non-zero and name
    // the failure.
    let path = last_journal.expect("last journal kept");
    let mut bytes = std::fs::read(&path).unwrap();
    if bytes.len() > 8 {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let tampered = Command::new(bin)
            .arg("verify-log")
            .arg(&path)
            .output()
            .expect("run verify-log on tampered journal");
        assert!(!tampered.status.success(), "verify-log accepted a tampered journal");
        assert!(
            String::from_utf8_lossy(&tampered.stderr).contains("FAILED"),
            "no divergence report on stderr"
        );
    }
    std::fs::remove_file(&path).unwrap();
}
