//! Property-based tests over the full protocol stack: random workloads,
//! random schedules, random bidder misbehaviour.

use std::sync::Arc;

use proptest::prelude::*;

use dauctioneer::core::{DoubleAuctionProgram, FrameworkConfig};
use dauctioneer::mechanisms::{DoubleAuction, Mechanism, SharedRng};
use dauctioneer::sim::{run_auction_sim, SchedulePolicy};
use dauctioneer::types::{BidEntry, BidVector, Bw, Money, Outcome, ProviderAsk, UserBid, UserId};

fn arb_bid() -> impl Strategy<Value = UserBid> {
    (750_000i64..=1_250_000, 1u64..=1_000_000)
        .prop_map(|(v, d)| UserBid::new(Money::from_micro(v), Bw::from_micro(d)))
}

fn arb_ask() -> impl Strategy<Value = ProviderAsk> {
    (1i64..=1_000_000, 100_000u64..=3_000_000)
        .prop_map(|(c, cap)| ProviderAsk::new(Money::from_micro(c), Bw::from_micro(cap)))
}

fn arb_bid_vector(n: usize, a: usize) -> impl Strategy<Value = BidVector> {
    (
        proptest::collection::vec(proptest::option::of(arb_bid()), n),
        proptest::collection::vec(arb_ask(), a),
    )
        .prop_map(move |(users, asks)| {
            let entries =
                users.into_iter().map(|u| u.map(BidEntry::Valid).unwrap_or_default()).collect();
            BidVector::from_parts(entries, asks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Definition 1 on arbitrary inputs: the distributed double auction
    /// equals the centralised one whenever all providers collected the
    /// same bids — under a random schedule.
    #[test]
    fn distributed_equals_centralised(
        bids in arb_bid_vector(6, 2),
        schedule_seed in 0u64..1000,
        local_seed in 0u64..1000,
    ) {
        let m = 3;
        let cfg = FrameworkConfig::new(m, 1, 6, 2);
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids.clone(); m],
            (0..m).map(|_| None).collect(),
            SchedulePolicy::SeededRandom(schedule_seed),
            local_seed,
        );
        let centralised = DoubleAuction::new().run(&bids, &SharedRng::from_material(b"x"));
        prop_assert_eq!(report.unanimous(), Outcome::Agreed(centralised));
    }

    /// Validity under arbitrary bidder equivocation: bidders whose bids
    /// reached all providers identically always survive bid agreement with
    /// exactly those bids (we verify via the outcome's budget balance and
    /// agreement; the consistent-slot check runs in the core crate).
    #[test]
    fn equivocating_bidders_never_break_agreement(
        base in arb_bid_vector(4, 2),
        equivocator in 0usize..4,
        deltas in proptest::collection::vec(1i64..100_000, 3),
        schedule_seed in 0u64..1000,
    ) {
        let m = 3;
        let cfg = FrameworkConfig::new(m, 1, 4, 2);
        // Each provider sees a different valuation for the equivocator.
        let views: Vec<BidVector> = (0..m)
            .map(|j| {
                match base.user_bid(UserId(equivocator as u32)).as_bid() {
                    Some(bid) => base.with_user_entry(
                        UserId(equivocator as u32),
                        BidEntry::Valid(bid.with_valuation(
                            bid.valuation() + Money::from_micro(deltas[j]),
                        )),
                    ),
                    None => base.clone(),
                }
            })
            .collect();
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            views,
            (0..m).map(|_| None).collect(),
            SchedulePolicy::SeededRandom(schedule_seed),
            schedule_seed,
        );
        let outcome = report.unanimous();
        prop_assert!(!outcome.is_abort(), "bidder equivocation must not abort the auction");
        let result = outcome.as_result().unwrap();
        prop_assert!(result.payments.is_budget_balanced());
        // Consistent bidders' entries survive: rerun centralised on a
        // vector where the equivocator's entry is whatever was agreed —
        // all other entries must match the base.
        for u in 0..4 {
            if u == equivocator { continue; }
            let got = result.allocation.user_total(UserId(u as u32));
            if let Some(bid) = base.user_bid(UserId(u as u32)).as_bid() {
                prop_assert!(got <= bid.demand(), "user {u} over-allocated");
            } else {
                prop_assert!(got.is_zero(), "neutral user {u} allocated");
            }
        }
    }
}
