//! End-to-end sessions on the *threaded* runtime: real threads, real
//! channels, injected latency — the deployment-shaped path.

use std::sync::Arc;
use std::time::Duration;

use dauctioneer::core::{
    run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions, StandardAuctionProgram,
};
use dauctioneer::mechanisms::props::{feasibility_violations, rationality_violations};
use dauctioneer::mechanisms::{StandardAuction, StandardAuctionConfig};
use dauctioneer::net::LatencyModel;
use dauctioneer::workload::{DoubleAuctionWorkload, StandardAuctionWorkload};

#[test]
fn double_auction_over_threads_with_latency() {
    let m = 3;
    let n = 40;
    let bids = DoubleAuctionWorkload::new(n, m, 5).generate();
    let cfg = FrameworkConfig::new(m, 1, n, m);
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids.clone(); m],
        &RunOptions {
            deadline: Duration::from_secs(30),
            latency: LatencyModel::UniformMicros { min_micros: 100, max_micros: 2_000 },
            seed: 3,
        },
    );
    let outcome = report.unanimous();
    let result = outcome.as_result().expect("threaded session must agree");
    assert!(feasibility_violations(&bids, result, None).is_empty());
    assert!(rationality_violations(&bids, result).is_empty());
    assert!(result.payments.is_budget_balanced());
    assert!(report.traffic.total_messages() > 0);
}

#[test]
fn standard_auction_over_threads() {
    let m = 3;
    let n = 10;
    let (bids, capacities) = StandardAuctionWorkload::new(n, 2, 8).generate();
    let auction = StandardAuction::new(StandardAuctionConfig::exact(capacities.clone()));
    let cfg = FrameworkConfig::new(m, 1, n, 0);
    let report = run_session(
        &cfg,
        Arc::new(StandardAuctionProgram::new(auction)),
        vec![bids.clone(); m],
        &RunOptions::default(),
    );
    let outcome = report.unanimous();
    let result = outcome.as_result().expect("threaded session must agree");
    assert!(feasibility_violations(&bids, result, Some(&capacities)).is_empty());
    assert!(rationality_violations(&bids, result).is_empty());
}

#[test]
fn five_providers_tolerating_k2() {
    let m = 5;
    let n = 25;
    let bids = DoubleAuctionWorkload::new(n, m, 11).generate();
    let cfg = FrameworkConfig::new(m, 2, n, m);
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids; m],
        &RunOptions::default(),
    );
    assert!(!report.unanimous().is_abort());
    // All five providers decided identically.
    let first = &report.outcomes[0];
    for o in &report.outcomes {
        assert_eq!(o, first);
    }
}

#[test]
fn successive_sessions_are_isolated() {
    use dauctioneer::types::SessionId;
    // Three consecutive auction rounds with distinct session ids and
    // evolving bids; each must clear independently.
    let m = 3;
    let n = 10;
    let mut last = None;
    for round in 0..3u64 {
        let bids = DoubleAuctionWorkload::new(n, m, 100 + round).generate();
        let cfg = FrameworkConfig::new(m, 1, n, m).with_session(SessionId(round));
        let report = run_session(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids; m],
            &RunOptions { seed: round, ..Default::default() },
        );
        let outcome = report.unanimous();
        assert!(!outcome.is_abort(), "round {round} aborted");
        if let Some(prev) = &last {
            assert_ne!(&outcome, prev, "rounds with different bids should differ");
        }
        last = Some(outcome);
    }
}

#[test]
fn deadline_produces_abort_not_hang() {
    // One provider's collected bids are fine, but we give the session a
    // zero deadline: providers must give up with ⊥ instead of blocking.
    let m = 3;
    let n = 5;
    let bids = DoubleAuctionWorkload::new(n, m, 1).generate();
    let cfg = FrameworkConfig::new(m, 1, n, m);
    let report = run_session(
        &cfg,
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids; m],
        &RunOptions { deadline: Duration::ZERO, ..Default::default() },
    );
    assert!(report.unanimous().is_abort());
}
