//! Empirical checks of the k-resilience claims (Theorem 1 of the paper).
//!
//! k-resilience says: under any fair schedule, no coalition of ≤ k
//! providers can increase any member's expected utility by deviating.
//! These tests enumerate the implemented deviation classes and verify the
//! two facts the proof rests on:
//!
//! 1. **Resilience to collusive influence** — honest providers never
//!    accept an outcome different from the honest outcome; deviations can
//!    only force ⊥.
//! 2. **Solution preference makes ⊥ worthless** — a deviator's utility
//!    under ⊥ is zero, which never exceeds its honest utility (provider
//!    utilities are non-negative in these auctions).

use std::sync::Arc;

use dauctioneer::core::{DoubleAuctionProgram, FrameworkConfig};
use dauctioneer::sim::utility::provider_utility;
use dauctioneer::sim::{
    run_auction_sim, Behavior, CorruptPayloads, DropTo, Equivocate, Mute, SchedulePolicy,
};
use dauctioneer::types::{BidVector, Money, Outcome, ProviderId, UserId};
use dauctioneer::workload::DoubleAuctionWorkload;

const M: usize = 3;
const K: usize = 1;
const N_USERS: usize = 12;
const N_ASKS: usize = M;

fn cfg() -> FrameworkConfig {
    FrameworkConfig::new(M, K, N_USERS, N_ASKS)
}

fn workload(seed: u64) -> BidVector {
    DoubleAuctionWorkload::new(N_USERS, N_ASKS, seed).generate()
}

fn honest_outcome(seed: u64) -> Outcome {
    let report = run_auction_sim(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        vec![workload(seed); M],
        (0..M).map(|_| None).collect(),
        SchedulePolicy::SeededRandom(seed),
        seed,
    );
    report.unanimous()
}

fn run_with_deviation(seed: u64, deviator: usize, behavior: Box<dyn Behavior>) -> Outcome {
    let mut behaviors: Vec<Option<Box<dyn Behavior>>> = (0..M).map(|_| None).collect();
    behaviors[deviator] = Some(behavior);
    let report = run_auction_sim(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        vec![workload(seed); M],
        behaviors,
        SchedulePolicy::SeededRandom(seed),
        seed,
    );
    // What matters for influence is what the honest providers accept.
    report.honest_unanimous(&[deviator])
}

/// Every message-level deviation class: the honest providers' outcome is
/// either the honest outcome or ⊥ — never a different accepted pair.
#[test]
fn deviations_cannot_steer_the_outcome() {
    for seed in 0..4u64 {
        let honest = honest_outcome(seed);
        assert!(!honest.is_abort(), "baseline must succeed (seed {seed})");
        let deviations: Vec<(&str, Box<dyn Behavior>)> = vec![
            ("equivocate", Box::new(Equivocate { victim: ProviderId(1) })),
            ("corrupt", Box::new(CorruptPayloads::default())),
            ("mute", Box::new(Mute::new(3))),
            ("drop-to", Box::new(DropTo { victim: ProviderId(2) })),
        ];
        for (name, behavior) in deviations {
            let outcome = run_with_deviation(seed, 0, behavior);
            assert!(
                outcome.is_abort() || outcome == honest,
                "deviation `{name}` steered the outcome (seed {seed})"
            );
        }
    }
}

/// The deviator's own utility never improves: honest utility is ≥ 0 and
/// every detectable deviation yields ⊥ (utility exactly 0).
#[test]
fn deviating_never_raises_provider_utility() {
    for seed in 0..4u64 {
        let bids = workload(seed);
        let honest = honest_outcome(seed);
        for deviator in 0..M {
            let true_cost = bids.provider_ask(ProviderId(deviator as u32)).unit_cost();
            let honest_utility = provider_utility(ProviderId(deviator as u32), true_cost, &honest);
            assert!(
                honest_utility >= Money::ZERO,
                "honest provider utility must be individually rational"
            );
            let deviant = run_with_deviation(
                seed,
                deviator,
                Box::new(Equivocate { victim: ProviderId(((deviator + 1) % M) as u32) }),
            );
            let deviant_utility =
                provider_utility(ProviderId(deviator as u32), true_cost, &deviant);
            assert!(
                deviant_utility <= honest_utility,
                "P{deviator} profited by equivocating (seed {seed}): \
                 {deviant_utility} > {honest_utility}"
            );
        }
    }
}

/// Lying about the *input* (the collected bids): the liar contests bits
/// against the honest majority, and per §4.1 the shared coin — which the
/// liar cannot bias (it commits to its randomness before seeing any
/// honest contribution) — settles each contested bit. The liar therefore
/// gets a lottery, not a lever:
///
/// * agreement still holds (no divergence, no abort — the lie is not a
///   detectable protocol violation),
/// * the decided entry is *not* simply the liar's proposal: across seeds
///   the coin sides with the honest bytes in some runs,
/// * whatever is decided remains a well-formed, feasible auction.
#[test]
fn lying_about_collected_bids_cannot_dictate_the_agreement() {
    let mut liar_ever_lost = false;
    for seed in 0..6u64 {
        let bids = workload(seed);
        let liar = 0usize;

        // The liar erases its top competitor users from its own input.
        let mut doctored = bids.clone();
        doctored = doctored.with_user_entry(UserId(0), Default::default());
        doctored = doctored.with_user_entry(UserId(1), Default::default());
        let mut collected = vec![bids.clone(); M];
        collected[liar] = doctored;

        let report = run_auction_sim(
            &cfg(),
            Arc::new(DoubleAuctionProgram::new()),
            collected,
            (0..M).map(|_| None).collect(),
            SchedulePolicy::SeededRandom(seed),
            seed,
        );
        let outcome = report.unanimous();
        assert!(
            !outcome.is_abort(),
            "an input lie is not a protocol violation; agreement must hold (seed {seed})"
        );
        let result = outcome.as_result().unwrap();
        // The erased users resolve to coin-settled entries; if either
        // still receives an allocation, the honest copies won that lottery.
        if !result.allocation.user_total(UserId(0)).is_zero()
            || !result.allocation.user_total(UserId(1)).is_zero()
        {
            liar_ever_lost = true;
        }
        assert!(result.payments.is_budget_balanced());
    }
    assert!(
        liar_ever_lost,
        "across seeds, the coin must sometimes side with the honest majority's bytes"
    );
}

/// Asynchrony resilience (the *ex post* part of the equilibrium): the
/// decided outcome is identical under adversarial schedules that starve
/// each provider in turn.
#[test]
fn outcome_is_invariant_under_starvation_schedules() {
    let seed = 2u64;
    let baseline = honest_outcome(seed);
    for victim in 0..M {
        let report = run_auction_sim(
            &cfg(),
            Arc::new(DoubleAuctionProgram::new()),
            vec![workload(seed); M],
            (0..M).map(|_| None).collect(),
            SchedulePolicy::DelayProvider { victim: ProviderId(victim as u32), seed: 9 },
            seed,
        );
        assert_eq!(report.unanimous(), baseline, "schedule changed the outcome (victim {victim})");
    }
}
