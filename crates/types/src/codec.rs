//! Deterministic binary wire format.
//!
//! The bid-agreement building block of the paper runs consensus over the
//! *bit stream* of each bid (§4.1), and the allocator cross-validates
//! redundant computations byte-for-byte, so the system needs an encoding
//! that is canonical: equal values always produce identical bytes. This
//! module provides that: a tiny, explicit little-endian format with
//! length-prefixed sequences and no non-determinism (no hash-map iteration,
//! no floats).
//!
//! # Example
//!
//! ```
//! use dauctioneer_types::{Encode, Decode, Writer, Reader};
//!
//! let mut w = Writer::new();
//! 42u32.encode(&mut w);
//! let bytes = w.finish();
//! let mut r = Reader::new(&bytes);
//! assert_eq!(u32::decode(&mut r)?, 42);
//! # Ok::<(), dauctioneer_types::CodecError>(())
//! ```

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::CodecError;

/// Sanity cap on decoded sequence lengths (guards against hostile length
/// prefixes allocating unbounded memory).
pub const MAX_SEQ_LEN: u64 = 16 * 1024 * 1024;

/// Serialize a value into the canonical wire format.
///
/// Implementations must be *canonical*: `a == b` implies
/// `encode_to_bytes(a) == encode_to_bytes(b)`.
pub trait Encode {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Encode into a fresh byte buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Deserialize a value from the canonical wire format.
pub trait Decode: Sized {
    /// Decode one value, advancing the reader past it.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the buffer is truncated, a tag byte is
    /// unknown, or a domain invariant is violated.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decode a value that must occupy the entire buffer.
    ///
    /// # Errors
    ///
    /// In addition to [`Decode::decode`] errors, fails with
    /// [`CodecError::TrailingBytes`] if any input remains.
    fn decode_all(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(v)
    }
}

/// Encode + decode round trip, for tests.
pub fn roundtrip<T: Encode + Decode>(value: &T) -> Result<T, CodecError> {
    T::decode_all(&value.encode_to_bytes())
}

/// Growable output buffer for the wire format.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer { buf: BytesMut::new() }
    }

    /// New writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer { buf: BytesMut::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Freeze the accumulated bytes **without consuming the writer**: the
    /// encoding is copied out and the writer is left empty with its
    /// allocation intact, ready for the next message.
    ///
    /// This is the scratch-buffer path for hot encode loops (a session
    /// encodes many protocol messages back to back): one warm buffer
    /// absorbs every message instead of each [`Writer::new`] re-growing
    /// its own, so the steady state is exactly one allocation (the
    /// returned [`Bytes`]) and one copy per message.
    pub fn finish_reset(&mut self) -> Bytes {
        let bytes = Bytes::copy_from_slice(&self.buf);
        self.buf.clear();
        bytes
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Append a `u64` length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.put_slice(v);
    }
}

/// Cursor over an input buffer for the wire format.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// New reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd { what, needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let s = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read exactly `n` raw bytes.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n, "slice")
    }

    /// Read a `u64`-length-prefixed byte string.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u64()?;
        if len > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow { what: "bytes", len });
        }
        self.take(len as usize, "len-prefixed bytes")
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}

impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_i64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "Option", tag }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.get_u64()?;
        if len > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow { what: "Vec", len });
        }
        let mut v = Vec::with_capacity(len.min(1024) as usize);
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_len_prefixed(self);
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Bytes::copy_from_slice(r.get_len_prefixed()?))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_len_prefixed(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.get_len_prefixed()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::Invalid { what: "string is not valid UTF-8" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(roundtrip(&0u8).unwrap(), 0);
        assert_eq!(roundtrip(&u16::MAX).unwrap(), u16::MAX);
        assert_eq!(roundtrip(&0xDEAD_BEEFu32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(roundtrip(&u64::MAX).unwrap(), u64::MAX);
        assert_eq!(roundtrip(&i64::MIN).unwrap(), i64::MIN);
        assert!(roundtrip(&true).unwrap());
        assert!(!roundtrip(&false).unwrap());
    }

    #[test]
    fn compound_roundtrips() {
        assert_eq!(roundtrip(&Some(3u32)).unwrap(), Some(3));
        assert_eq!(roundtrip(&Option::<u32>::None).unwrap(), None);
        assert_eq!(roundtrip(&vec![1u64, 2, 3]).unwrap(), vec![1, 2, 3]);
        assert_eq!(roundtrip(&(1u8, 2u16)).unwrap(), (1, 2));
        assert_eq!(roundtrip(&(1u8, 2u16, 3u32)).unwrap(), (1, 2, 3));
        let b = Bytes::from_static(b"payload");
        assert_eq!(roundtrip(&b).unwrap(), b);
    }

    #[test]
    fn string_roundtrips_and_rejects_bad_utf8() {
        assert_eq!(roundtrip(&String::from("double-auction")).unwrap(), "double-auction");
        assert_eq!(roundtrip(&String::new()).unwrap(), "");
        // Same bytes as a len-prefixed slice, so the format stays canonical.
        assert_eq!(
            String::from("abc").encode_to_bytes(),
            Bytes::from_static(b"abc").encode_to_bytes()
        );
        let mut w = Writer::new();
        w.put_len_prefixed(&[0xFF, 0xFE]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(String::decode(&mut r), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn encoding_is_little_endian() {
        assert_eq!(&*0x0102_0304u32.encode_to_bytes(), &[4, 3, 2, 1]);
        assert_eq!(&*0x01u16.encode_to_bytes(), &[1, 0]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(u32::decode(&mut r), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn bool_rejects_non_binary_tag() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(bool::decode(&mut r), Err(CodecError::InvalidTag { .. })));
    }

    #[test]
    fn vec_rejects_hostile_length_prefix() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(matches!(Vec::<u8>::decode(&mut r), Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn decode_all_rejects_trailing_bytes() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.finish();
        assert!(matches!(u8::decode_all(&bytes), Err(CodecError::TrailingBytes { remaining: 1 })));
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.put_slice(b"abc");
        assert_eq!(w.len(), 3);
        assert_eq!(&*w.finish(), b"abc");
    }

    #[test]
    fn finish_reset_reuses_the_buffer_across_messages() {
        let mut w = Writer::with_capacity(16);
        42u32.encode(&mut w);
        let first = w.finish_reset();
        assert_eq!(&*first, &42u32.encode_to_bytes()[..]);
        assert!(w.is_empty(), "writer must be empty for the next message");
        7u64.encode(&mut w);
        let second = w.finish_reset();
        assert_eq!(&*second, &7u64.encode_to_bytes()[..]);
        // The first message is untouched by the reuse.
        assert_eq!(&*first, &42u32.encode_to_bytes()[..]);
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let mut w = Writer::new();
        w.put_len_prefixed(b"hello");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_len_prefixed().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }
}
