//! Allocations of bandwidth from providers to users.

use std::collections::BTreeMap;

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::{ProviderId, UserId};
use crate::quantity::Bw;

/// A feasible assignment `x` of provider bandwidth to users.
///
/// Stored sparsely: only non-zero cells are kept, in a `BTreeMap` so that
/// iteration order — and therefore the canonical encoding — is
/// deterministic across replicas.
///
/// # Example
///
/// ```
/// use dauctioneer_types::{Allocation, UserId, ProviderId, Bw};
///
/// let mut x = Allocation::new(2, 2);
/// x.add(UserId(0), ProviderId(1), Bw::from_f64(0.5));
/// assert_eq!(x.user_total(UserId(0)), Bw::from_f64(0.5));
/// assert_eq!(x.provider_total(ProviderId(1)), Bw::from_f64(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Allocation {
    n_users: u32,
    n_providers: u32,
    cells: BTreeMap<(UserId, ProviderId), Bw>,
}

impl Allocation {
    /// Empty allocation over `n_users × n_providers`.
    pub fn new(n_users: usize, n_providers: usize) -> Allocation {
        Allocation {
            n_users: n_users as u32,
            n_providers: n_providers as u32,
            cells: BTreeMap::new(),
        }
    }

    /// Number of user slots.
    pub fn num_users(&self) -> usize {
        self.n_users as usize
    }

    /// Number of provider slots.
    pub fn num_providers(&self) -> usize {
        self.n_providers as usize
    }

    /// Amount allocated to `user` at `provider` (zero if unallocated).
    pub fn get(&self, user: UserId, provider: ProviderId) -> Bw {
        self.cells.get(&(user, provider)).copied().unwrap_or(Bw::ZERO)
    }

    /// Add `amount` to the `(user, provider)` cell.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add(&mut self, user: UserId, provider: ProviderId, amount: Bw) {
        assert!(user.0 < self.n_users, "user {user} out of range");
        assert!(provider.0 < self.n_providers, "provider {provider} out of range");
        if amount.is_zero() {
            return;
        }
        *self.cells.entry((user, provider)).or_insert(Bw::ZERO) += amount;
    }

    /// Total bandwidth allocated to `user` across all providers.
    pub fn user_total(&self, user: UserId) -> Bw {
        self.cells
            .range((user, ProviderId(0))..=(user, ProviderId(u32::MAX)))
            .map(|(_, bw)| *bw)
            .sum()
    }

    /// Total bandwidth `provider` has allocated across all users.
    pub fn provider_total(&self, provider: ProviderId) -> Bw {
        self.cells.iter().filter(|((_, p), _)| *p == provider).map(|(_, bw)| *bw).sum()
    }

    /// Total bandwidth allocated overall.
    pub fn total(&self) -> Bw {
        self.cells.values().copied().sum()
    }

    /// Iterator over `(user, provider, amount)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, ProviderId, Bw)> + '_ {
        self.cells.iter().map(|(&(u, p), &bw)| (u, p, bw))
    }

    /// Users with a non-zero total allocation, in id order.
    pub fn winners(&self) -> Vec<UserId> {
        let mut out: Vec<UserId> = Vec::new();
        for &(u, _) in self.cells.keys() {
            if out.last() != Some(&u) {
                out.push(u);
            }
        }
        out
    }

    /// `true` if nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of non-zero cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }
}

impl Encode for Allocation {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.n_users);
        w.put_u32(self.n_providers);
        w.put_u64(self.cells.len() as u64);
        // BTreeMap iteration is sorted, so the encoding is canonical.
        for (&(u, p), &bw) in &self.cells {
            u.encode(w);
            p.encode(w);
            bw.encode(w);
        }
    }
}

impl Decode for Allocation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n_users = r.get_u32()?;
        let n_providers = r.get_u32()?;
        let len = r.get_u64()?;
        if len > crate::codec::MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow { what: "Allocation", len });
        }
        let mut cells = BTreeMap::new();
        for _ in 0..len {
            let u = UserId::decode(r)?;
            let p = ProviderId::decode(r)?;
            let bw = Bw::decode(r)?;
            if u.0 >= n_users || p.0 >= n_providers {
                return Err(CodecError::Invalid { what: "allocation cell out of range" });
            }
            if cells.insert((u, p), bw).is_some() {
                return Err(CodecError::Invalid { what: "duplicate allocation cell" });
            }
        }
        Ok(Allocation { n_users, n_providers, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    #[test]
    fn empty_allocation() {
        let x = Allocation::new(3, 2);
        assert!(x.is_empty());
        assert_eq!(x.len(), 0);
        assert_eq!(x.total(), Bw::ZERO);
        assert_eq!(x.get(UserId(0), ProviderId(0)), Bw::ZERO);
        assert!(x.winners().is_empty());
    }

    #[test]
    fn add_accumulates() {
        let mut x = Allocation::new(2, 2);
        x.add(UserId(0), ProviderId(0), Bw::from_f64(0.25));
        x.add(UserId(0), ProviderId(0), Bw::from_f64(0.25));
        assert_eq!(x.get(UserId(0), ProviderId(0)), Bw::from_f64(0.5));
        assert_eq!(x.len(), 1);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut x = Allocation::new(1, 1);
        x.add(UserId(0), ProviderId(0), Bw::ZERO);
        assert!(x.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_out_of_range_panics() {
        let mut x = Allocation::new(1, 1);
        x.add(UserId(1), ProviderId(0), Bw::from_f64(0.1));
    }

    #[test]
    fn totals_sum_correct_axes() {
        let mut x = Allocation::new(2, 3);
        x.add(UserId(0), ProviderId(0), Bw::from_f64(0.1));
        x.add(UserId(0), ProviderId(2), Bw::from_f64(0.2));
        x.add(UserId(1), ProviderId(2), Bw::from_f64(0.3));
        assert_eq!(x.user_total(UserId(0)), Bw::from_f64(0.3));
        assert_eq!(x.user_total(UserId(1)), Bw::from_f64(0.3));
        assert_eq!(x.provider_total(ProviderId(2)), Bw::from_f64(0.5));
        assert_eq!(x.provider_total(ProviderId(1)), Bw::ZERO);
        assert_eq!(x.total(), Bw::from_f64(0.6));
    }

    #[test]
    fn winners_are_unique_and_ordered() {
        let mut x = Allocation::new(3, 2);
        x.add(UserId(2), ProviderId(0), Bw::from_f64(0.1));
        x.add(UserId(0), ProviderId(0), Bw::from_f64(0.1));
        x.add(UserId(0), ProviderId(1), Bw::from_f64(0.1));
        assert_eq!(x.winners(), vec![UserId(0), UserId(2)]);
    }

    #[test]
    fn roundtrips_through_codec() {
        let mut x = Allocation::new(4, 3);
        x.add(UserId(1), ProviderId(2), Bw::from_f64(0.5));
        x.add(UserId(3), ProviderId(0), Bw::from_f64(1.5));
        assert_eq!(roundtrip(&x).unwrap(), x);
    }

    #[test]
    fn decode_rejects_out_of_range_cells() {
        let mut x = Allocation::new(1, 1);
        x.add(UserId(0), ProviderId(0), Bw::from_f64(0.5));
        let mut bytes = x.encode_to_bytes().to_vec();
        // Corrupt the user id of the first cell (offset: 4+4+8 = 16).
        bytes[16] = 9;
        assert!(Allocation::decode_all(&bytes).is_err());
    }

    #[test]
    fn encoding_is_canonical_regardless_of_insertion_order() {
        let mut a = Allocation::new(2, 2);
        a.add(UserId(1), ProviderId(1), Bw::from_f64(0.2));
        a.add(UserId(0), ProviderId(0), Bw::from_f64(0.1));
        let mut b = Allocation::new(2, 2);
        b.add(UserId(0), ProviderId(0), Bw::from_f64(0.1));
        b.add(UserId(1), ProviderId(1), Bw::from_f64(0.2));
        assert_eq!(a.encode_to_bytes(), b.encode_to_bytes());
    }
}
