//! Error types for decoding the deterministic wire format.

use std::error::Error;
use std::fmt;

/// Error produced when decoding a value from the wire format fails.
///
/// The distributed auctioneer treats any message that fails to decode the
/// same way it treats an invalid bid: the offending value is replaced by a
/// neutral element or the protocol aborts with ⊥, so decode errors are
/// expected, recoverable conditions rather than bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was fully decoded.
    UnexpectedEnd {
        /// What was being decoded.
        what: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The type being decoded.
        what: &'static str,
        /// The declared length.
        len: u64,
    },
    /// Trailing bytes remained after a value that must consume the whole
    /// buffer.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// The decoded value violated a domain invariant.
    Invalid {
        /// Description of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { what, needed, remaining } => write!(
                f,
                "unexpected end of buffer while decoding {what}: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::LengthOverflow { what, len } => {
                write!(f, "length prefix {len} too large while decoding {what}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            CodecError::Invalid { what } => write!(f, "invalid value: {what}"),
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CodecError::UnexpectedEnd { what: "u32", needed: 4, remaining: 1 };
        assert!(e.to_string().contains("unexpected end"));
        let e = CodecError::InvalidTag { what: "Outcome", tag: 7 };
        assert!(e.to_string().contains("invalid tag 7"));
        let e = CodecError::LengthOverflow { what: "Vec", len: u64::MAX };
        assert!(e.to_string().contains("too large"));
        let e = CodecError::TrailingBytes { remaining: 3 };
        assert!(e.to_string().contains("3 trailing bytes"));
        let e = CodecError::Invalid { what: "negative demand" };
        assert!(e.to_string().contains("negative demand"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CodecError>();
    }
}
