//! Multi-unit XOR-bundle bids for combinatorial auctions.
//!
//! The combinatorial mechanism (Yen & Sun-style multi-unit winner
//! determination) works over *indivisible units* of resource: every
//! provider holds an integral unit capacity, and a bidder names a set of
//! mutually exclusive (**XOR**) bundle options — "this many units for
//! this total price" — of which at most one can win, placed wholly at
//! one provider. The types here are the canonical wire encoding of that
//! bid language; the solver and the mechanism live in
//! `dauctioneer-mechanisms`.
//!
//! Like every other wire type, encoding is canonical (equal values ⇒
//! identical bytes), because the distributed auctioneer cross-validates
//! allocator outputs byte-for-byte — a combinatorial clearing must
//! replicate exactly like any other mechanism.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::UserId;
use crate::quantity::Money;

/// One XOR option of a bundle bid: `units` indivisible resource units —
/// all at a single provider — for the all-or-nothing total `price`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BundleOption {
    /// Units requested (placed wholly at one provider).
    pub units: u64,
    /// Total price offered for the full option (not per unit).
    pub price: Money,
}

impl BundleOption {
    /// Create an option of `units` units for total `price`.
    pub const fn new(units: u64, price: Money) -> BundleOption {
        BundleOption { units, price }
    }

    /// An option is valid when it asks for at least one unit at a
    /// positive total price.
    pub fn is_valid(&self) -> bool {
        self.units > 0 && self.price.is_positive()
    }

    /// Price per unit, rounded down to micro precision (the greedy
    /// winner-determination density).
    pub fn unit_price(&self) -> Money {
        Money::from_micro(self.price.micro() / self.units as i64)
    }
}

impl Encode for BundleOption {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.units);
        self.price.encode(w);
    }
}

impl Decode for BundleOption {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BundleOption { units: r.get_u64()?, price: Money::decode(r)? })
    }
}

/// A bidder's complete XOR bundle bid: at most one of `options` wins.
///
/// # Example
///
/// ```
/// use dauctioneer_types::{BundleBid, BundleOption, Money, UserId};
/// let bid = BundleBid::new(
///     UserId(3),
///     vec![
///         BundleOption::new(4, Money::from_f64(4.0)), // full bundle…
///         BundleOption::new(2, Money::from_f64(2.4)), // …XOR a fallback half
///     ],
/// );
/// assert!(bid.is_valid());
/// assert_eq!(bid.max_units(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BundleBid {
    /// The bidder.
    pub user: UserId,
    /// The mutually exclusive options, in the bidder's declared order.
    pub options: Vec<BundleOption>,
}

impl BundleBid {
    /// Create a bundle bid.
    pub fn new(user: UserId, options: Vec<BundleOption>) -> BundleBid {
        BundleBid { user, options }
    }

    /// A bundle bid is valid when it has at least one option and every
    /// option is itself valid.
    pub fn is_valid(&self) -> bool {
        !self.options.is_empty() && self.options.iter().all(BundleOption::is_valid)
    }

    /// The largest unit count across options (what the bidder would take
    /// at most).
    pub fn max_units(&self) -> u64 {
        self.options.iter().map(|o| o.units).max().unwrap_or(0)
    }

    /// The highest total price across options (the bidder's declared
    /// value for its best bundle).
    pub fn max_price(&self) -> Money {
        self.options.iter().map(|o| o.price).max().unwrap_or(Money::ZERO)
    }
}

impl Encode for BundleBid {
    fn encode(&self, w: &mut Writer) {
        self.user.encode(w);
        self.options.encode(w);
    }
}

impl Decode for BundleBid {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BundleBid { user: UserId::decode(r)?, options: Vec::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    fn opt(units: u64, price: f64) -> BundleOption {
        BundleOption::new(units, Money::from_f64(price))
    }

    #[test]
    fn option_validity_and_density() {
        assert!(opt(2, 1.0).is_valid());
        assert!(!opt(0, 1.0).is_valid());
        assert!(!opt(2, 0.0).is_valid());
        assert_eq!(opt(4, 2.0).unit_price(), Money::from_f64(0.5));
        // Rounds down at micro precision.
        assert_eq!(opt(3, 1.0).unit_price(), Money::from_micro(333_333));
    }

    #[test]
    fn bundle_validity_and_extremes() {
        let bid = BundleBid::new(UserId(1), vec![opt(4, 4.0), opt(2, 2.4)]);
        assert!(bid.is_valid());
        assert_eq!(bid.max_units(), 4);
        assert_eq!(bid.max_price(), Money::from_f64(4.0));
        assert!(!BundleBid::new(UserId(1), vec![]).is_valid());
        assert!(!BundleBid::new(UserId(1), vec![opt(0, 1.0)]).is_valid());
    }

    #[test]
    fn bundle_roundtrips_and_is_canonical() {
        let bid = BundleBid::new(UserId(7), vec![opt(3, 2.5), opt(1, 1.0)]);
        assert_eq!(roundtrip(&bid).unwrap(), bid);
        assert_eq!(bid.encode_to_bytes(), bid.clone().encode_to_bytes());
    }
}
