//! Bids submitted by users and asks submitted by providers.
//!
//! The paper's auction family (§3.1) has `n` users willing to pay for
//! bandwidth and `m` providers selling it. In a *standard* auction only
//! users bid; in a *double* auction providers submit asks too. A bidder
//! that fails to submit a valid bid is replaced by the *neutral* bid ⊥,
//! which excludes it from the auction without aborting it.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::{ProviderId, UserId};
use crate::quantity::{Bw, Money};

/// A user's bid: the per-unit valuation it declares and the amount of
/// bandwidth it demands.
///
/// Truthful users set `valuation` to their true per-unit value; the
/// mechanisms in `dauctioneer-mechanisms` are truthful in expectation, so
/// lying cannot raise a user's expected utility.
///
/// # Example
///
/// ```
/// use dauctioneer_types::{UserBid, Money, Bw};
/// let bid = UserBid::new(Money::from_f64(1.1), Bw::from_f64(0.4));
/// assert!(bid.is_valid());
/// assert_eq!(bid.total_value(), Money::from_f64(0.44));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserBid {
    valuation: Money,
    demand: Bw,
}

impl UserBid {
    /// Create a bid declaring `valuation` per unit for `demand` units.
    pub const fn new(valuation: Money, demand: Bw) -> UserBid {
        UserBid { valuation, demand }
    }

    /// Declared per-unit valuation.
    pub const fn valuation(&self) -> Money {
        self.valuation
    }

    /// Requested amount of bandwidth.
    pub const fn demand(&self) -> Bw {
        self.demand
    }

    /// Total value the user attributes to receiving its full demand.
    pub fn total_value(&self) -> Money {
        self.valuation.per_unit(self.demand)
    }

    /// A bid is valid when it asks for a positive amount at a positive
    /// price. Invalid bids are replaced by [`BidEntry::Neutral`] during bid
    /// agreement.
    pub fn is_valid(&self) -> bool {
        self.valuation.is_positive() && !self.demand.is_zero()
    }

    /// Replace the declared valuation, keeping the demand (used by the
    /// truthfulness test harness to model lying bidders).
    pub fn with_valuation(self, valuation: Money) -> UserBid {
        UserBid { valuation, ..self }
    }
}

impl Encode for UserBid {
    fn encode(&self, w: &mut Writer) {
        self.valuation.encode(w);
        self.demand.encode(w);
    }
}

impl Decode for UserBid {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(UserBid { valuation: Money::decode(r)?, demand: Bw::decode(r)? })
    }
}

/// A provider's ask in a double auction: the per-unit price it wants to be
/// paid, and the capacity it offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProviderAsk {
    unit_cost: Money,
    capacity: Bw,
}

impl ProviderAsk {
    /// Create an ask of `capacity` units at `unit_cost` each.
    pub const fn new(unit_cost: Money, capacity: Bw) -> ProviderAsk {
        ProviderAsk { unit_cost, capacity }
    }

    /// Declared per-unit cost.
    pub const fn unit_cost(&self) -> Money {
        self.unit_cost
    }

    /// Offered capacity.
    pub const fn capacity(&self) -> Bw {
        self.capacity
    }

    /// An ask is valid when it offers positive capacity at a non-negative
    /// cost.
    pub fn is_valid(&self) -> bool {
        self.unit_cost >= Money::ZERO && !self.capacity.is_zero()
    }
}

impl Encode for ProviderAsk {
    fn encode(&self, w: &mut Writer) {
        self.unit_cost.encode(w);
        self.capacity.encode(w);
    }
}

impl Decode for ProviderAsk {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProviderAsk { unit_cost: Money::decode(r)?, capacity: Bw::decode(r)? })
    }
}

/// One slot of the agreed bid vector: either a valid bid or the neutral
/// value ⊥ that excludes the bidder from the auction (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BidEntry {
    /// The bidder submitted this valid bid.
    Valid(UserBid),
    /// The bidder submitted no bid, an invalid bid, or different bids to
    /// different providers that consensus resolved to ⊥.
    #[default]
    Neutral,
}

impl BidEntry {
    /// `true` for [`BidEntry::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, BidEntry::Valid(_))
    }

    /// The bid, if valid.
    pub fn as_bid(&self) -> Option<&UserBid> {
        match self {
            BidEntry::Valid(b) => Some(b),
            BidEntry::Neutral => None,
        }
    }

    /// Normalise: a `Valid` entry holding an invalid bid becomes `Neutral`.
    pub fn normalized(self) -> BidEntry {
        match self {
            BidEntry::Valid(b) if b.is_valid() => BidEntry::Valid(b),
            _ => BidEntry::Neutral,
        }
    }
}

impl From<UserBid> for BidEntry {
    fn from(b: UserBid) -> Self {
        BidEntry::Valid(b)
    }
}

impl Encode for BidEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            BidEntry::Neutral => w.put_u8(0),
            BidEntry::Valid(b) => {
                w.put_u8(1);
                b.encode(w);
            }
        }
    }
}

impl Decode for BidEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(BidEntry::Neutral),
            1 => Ok(BidEntry::Valid(UserBid::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "BidEntry", tag }),
        }
    }
}

/// The complete vector of bids `b̄` that an allocation algorithm takes as
/// input: one [`BidEntry`] per user and, for double auctions, one
/// [`ProviderAsk`] per provider.
///
/// `BidVector` is the value the providers must *agree on* before running
/// the allocator; its canonical encoding (via [`Encode`]) is what the bid
/// agreement block feeds to consensus and the input-validation block
/// compares byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BidVector {
    users: Vec<BidEntry>,
    asks: Vec<ProviderAsk>,
}

impl BidVector {
    /// Start building a vector for `n` users and `m` provider asks (use
    /// `m = 0` for standard auctions where providers do not bid).
    pub fn builder(n_users: usize, n_asks: usize) -> BidVectorBuilder {
        BidVectorBuilder {
            users: vec![BidEntry::Neutral; n_users],
            asks: vec![ProviderAsk::new(Money::ZERO, Bw::ZERO); n_asks],
        }
    }

    /// Vector with every user neutral and no asks.
    pub fn all_neutral(n_users: usize) -> BidVector {
        BidVector { users: vec![BidEntry::Neutral; n_users], asks: Vec::new() }
    }

    /// Vector with every user neutral and `n_asks` zero-capacity (i.e.
    /// absent) asks — the "nobody bid anything" vector of a given shape.
    pub fn all_neutral_with_asks(n_users: usize, n_asks: usize) -> BidVector {
        BidVector {
            users: vec![BidEntry::Neutral; n_users],
            asks: vec![ProviderAsk::new(Money::ZERO, Bw::ZERO); n_asks],
        }
    }

    /// Construct directly from parts.
    pub fn from_parts(users: Vec<BidEntry>, asks: Vec<ProviderAsk>) -> BidVector {
        BidVector { users, asks }
    }

    /// Number of user slots.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of provider asks (0 in standard auctions).
    pub fn num_asks(&self) -> usize {
        self.asks.len()
    }

    /// The entry for `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn user_bid(&self, user: UserId) -> &BidEntry {
        &self.users[user.index()]
    }

    /// All user entries in id order.
    pub fn user_entries(&self) -> &[BidEntry] {
        &self.users
    }

    /// The ask of `provider`.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn provider_ask(&self, provider: ProviderId) -> &ProviderAsk {
        &self.asks[provider.index()]
    }

    /// All provider asks in id order.
    pub fn asks(&self) -> &[ProviderAsk] {
        &self.asks
    }

    /// Iterator over `(UserId, &UserBid)` for users with valid bids.
    pub fn valid_user_bids(&self) -> impl Iterator<Item = (UserId, &UserBid)> {
        self.users.iter().enumerate().filter_map(|(i, e)| e.as_bid().map(|b| (UserId(i as u32), b)))
    }

    /// Number of users with valid bids.
    pub fn num_valid_users(&self) -> usize {
        self.users.iter().filter(|e| e.is_valid()).count()
    }

    /// Copy with one user's entry replaced by ⊥ — the `b̄₋ᵢ` input used when
    /// computing VCG payments.
    pub fn without_user(&self, user: UserId) -> BidVector {
        let mut v = self.clone();
        v.users[user.index()] = BidEntry::Neutral;
        v
    }

    /// Copy with one user's entry replaced (used by deviation tests).
    pub fn with_user_entry(&self, user: UserId, entry: BidEntry) -> BidVector {
        let mut v = self.clone();
        v.users[user.index()] = entry;
        v
    }
}

impl Encode for BidVector {
    fn encode(&self, w: &mut Writer) {
        self.users.encode(w);
        self.asks.encode(w);
    }
}

impl Decode for BidVector {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BidVector { users: Vec::decode(r)?, asks: Vec::decode(r)? })
    }
}

/// Builder for [`BidVector`]; see [`BidVector::builder`].
#[derive(Debug, Clone)]
pub struct BidVectorBuilder {
    users: Vec<BidEntry>,
    asks: Vec<ProviderAsk>,
}

impl BidVectorBuilder {
    /// Set the bid of user `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn user_bid(mut self, index: usize, bid: UserBid) -> BidVectorBuilder {
        self.users[index] = BidEntry::Valid(bid);
        self
    }

    /// Mark user `index` as neutral (excluded).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn neutral(mut self, index: usize) -> BidVectorBuilder {
        self.users[index] = BidEntry::Neutral;
        self
    }

    /// Set the ask of provider `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn provider_ask(mut self, index: usize, ask: ProviderAsk) -> BidVectorBuilder {
        self.asks[index] = ask;
        self
    }

    /// Finish building.
    pub fn build(self) -> BidVector {
        BidVector { users: self.users, asks: self.asks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    fn bid(v: f64, d: f64) -> UserBid {
        UserBid::new(Money::from_f64(v), Bw::from_f64(d))
    }

    #[test]
    fn user_bid_validity() {
        assert!(bid(1.0, 0.5).is_valid());
        assert!(!bid(0.0, 0.5).is_valid());
        assert!(!bid(-1.0, 0.5).is_valid());
        assert!(!bid(1.0, 0.0).is_valid());
    }

    #[test]
    fn user_bid_total_value() {
        assert_eq!(bid(2.0, 0.25).total_value(), Money::from_f64(0.5));
    }

    #[test]
    fn provider_ask_validity() {
        assert!(ProviderAsk::new(Money::ZERO, Bw::from_f64(1.0)).is_valid());
        assert!(!ProviderAsk::new(Money::from_f64(-0.1), Bw::from_f64(1.0)).is_valid());
        assert!(!ProviderAsk::new(Money::from_f64(0.5), Bw::ZERO).is_valid());
    }

    #[test]
    fn bid_entry_normalization_drops_invalid_bids() {
        let good = BidEntry::Valid(bid(1.0, 0.5));
        assert_eq!(good.normalized(), good);
        let bad = BidEntry::Valid(bid(0.0, 0.5));
        assert_eq!(bad.normalized(), BidEntry::Neutral);
        assert_eq!(BidEntry::Neutral.normalized(), BidEntry::Neutral);
    }

    #[test]
    fn bid_entry_default_is_neutral() {
        assert_eq!(BidEntry::default(), BidEntry::Neutral);
        assert!(!BidEntry::Neutral.is_valid());
    }

    #[test]
    fn builder_populates_slots() {
        let v = BidVector::builder(3, 2)
            .user_bid(0, bid(1.0, 0.5))
            .user_bid(2, bid(0.9, 0.2))
            .neutral(1)
            .provider_ask(1, ProviderAsk::new(Money::from_f64(0.3), Bw::from_f64(2.0)))
            .build();
        assert_eq!(v.num_users(), 3);
        assert_eq!(v.num_asks(), 2);
        assert_eq!(v.num_valid_users(), 2);
        assert!(v.user_bid(UserId(0)).is_valid());
        assert!(!v.user_bid(UserId(1)).is_valid());
        assert_eq!(v.provider_ask(ProviderId(1)).capacity(), Bw::from_f64(2.0));
    }

    #[test]
    fn valid_user_bids_iterates_in_id_order() {
        let v =
            BidVector::builder(3, 0).user_bid(2, bid(0.8, 0.1)).user_bid(0, bid(1.2, 0.9)).build();
        let ids: Vec<UserId> = v.valid_user_bids().map(|(u, _)| u).collect();
        assert_eq!(ids, vec![UserId(0), UserId(2)]);
    }

    #[test]
    fn without_user_neutralizes_one_slot() {
        let v =
            BidVector::builder(2, 0).user_bid(0, bid(1.0, 0.5)).user_bid(1, bid(1.1, 0.4)).build();
        let w = v.without_user(UserId(0));
        assert!(!w.user_bid(UserId(0)).is_valid());
        assert!(w.user_bid(UserId(1)).is_valid());
        // original untouched
        assert!(v.user_bid(UserId(0)).is_valid());
    }

    #[test]
    fn bid_vector_roundtrips_and_is_canonical() {
        let v = BidVector::builder(2, 1)
            .user_bid(0, bid(1.25, 0.75))
            .provider_ask(0, ProviderAsk::new(Money::from_f64(0.4), Bw::from_f64(1.5)))
            .build();
        assert_eq!(roundtrip(&v).unwrap(), v);
        // Canonical: equal values produce identical bytes.
        assert_eq!(v.encode_to_bytes(), v.clone().encode_to_bytes());
    }

    #[test]
    fn all_neutral_has_no_valid_bids() {
        let v = BidVector::all_neutral(5);
        assert_eq!(v.num_valid_users(), 0);
        assert_eq!(v.num_asks(), 0);
    }
}
