//! Payment vectors produced by the auction mechanisms.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::{ProviderId, UserId};
use crate::quantity::Money;

/// The payment vector `p̄`: what each user pays and what each provider
/// receives.
///
/// *Budget balance* (required of double auctions, §3.1) means the total
/// paid by users covers the total received by providers, i.e.
/// [`Payments::budget_surplus`] is non-negative.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Payments {
    user_payments: Vec<Money>,
    provider_revenues: Vec<Money>,
}

impl Payments {
    /// All-zero payments for `n` users and `m` providers.
    pub fn zero(n_users: usize, n_providers: usize) -> Payments {
        Payments {
            user_payments: vec![Money::ZERO; n_users],
            provider_revenues: vec![Money::ZERO; n_providers],
        }
    }

    /// Construct from raw vectors.
    pub fn from_parts(user_payments: Vec<Money>, provider_revenues: Vec<Money>) -> Payments {
        Payments { user_payments, provider_revenues }
    }

    /// Number of user slots.
    pub fn num_users(&self) -> usize {
        self.user_payments.len()
    }

    /// Number of provider slots.
    pub fn num_providers(&self) -> usize {
        self.provider_revenues.len()
    }

    /// What `user` pays.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn user_payment(&self, user: UserId) -> Money {
        self.user_payments[user.index()]
    }

    /// Set what `user` pays.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn set_user_payment(&mut self, user: UserId, amount: Money) {
        self.user_payments[user.index()] = amount;
    }

    /// What `provider` receives.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn provider_revenue(&self, provider: ProviderId) -> Money {
        self.provider_revenues[provider.index()]
    }

    /// Set what `provider` receives.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn set_provider_revenue(&mut self, provider: ProviderId, amount: Money) {
        self.provider_revenues[provider.index()] = amount;
    }

    /// Add to what `provider` receives.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn add_provider_revenue(&mut self, provider: ProviderId, amount: Money) {
        self.provider_revenues[provider.index()] += amount;
    }

    /// All user payments in id order.
    pub fn user_payments(&self) -> &[Money] {
        &self.user_payments
    }

    /// All provider revenues in id order.
    pub fn provider_revenues(&self) -> &[Money] {
        &self.provider_revenues
    }

    /// Sum of user payments.
    pub fn total_user_payments(&self) -> Money {
        self.user_payments.iter().copied().sum()
    }

    /// Sum of provider revenues.
    pub fn total_provider_revenues(&self) -> Money {
        self.provider_revenues.iter().copied().sum()
    }

    /// `total user payments − total provider revenues`; non-negative iff
    /// the payments are budget balanced.
    pub fn budget_surplus(&self) -> Money {
        self.total_user_payments() - self.total_provider_revenues()
    }

    /// `true` iff budget balanced (surplus ≥ 0).
    pub fn is_budget_balanced(&self) -> bool {
        self.budget_surplus() >= Money::ZERO
    }
}

impl Encode for Payments {
    fn encode(&self, w: &mut Writer) {
        self.user_payments.encode(w);
        self.provider_revenues.encode(w);
    }
}

impl Decode for Payments {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Payments { user_payments: Vec::decode(r)?, provider_revenues: Vec::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    #[test]
    fn zero_payments_are_balanced() {
        let p = Payments::zero(3, 2);
        assert_eq!(p.num_users(), 3);
        assert_eq!(p.num_providers(), 2);
        assert_eq!(p.total_user_payments(), Money::ZERO);
        assert!(p.is_budget_balanced());
    }

    #[test]
    fn setters_and_totals() {
        let mut p = Payments::zero(2, 2);
        p.set_user_payment(UserId(0), Money::from_f64(1.0));
        p.set_user_payment(UserId(1), Money::from_f64(0.5));
        p.set_provider_revenue(ProviderId(0), Money::from_f64(0.8));
        p.add_provider_revenue(ProviderId(0), Money::from_f64(0.2));
        assert_eq!(p.user_payment(UserId(0)), Money::from_f64(1.0));
        assert_eq!(p.provider_revenue(ProviderId(0)), Money::from_f64(1.0));
        assert_eq!(p.total_user_payments(), Money::from_f64(1.5));
        assert_eq!(p.total_provider_revenues(), Money::from_f64(1.0));
        assert_eq!(p.budget_surplus(), Money::from_f64(0.5));
        assert!(p.is_budget_balanced());
    }

    #[test]
    fn deficit_is_not_balanced() {
        let mut p = Payments::zero(1, 1);
        p.set_provider_revenue(ProviderId(0), Money::from_f64(1.0));
        assert_eq!(p.budget_surplus(), Money::from_f64(-1.0));
        assert!(!p.is_budget_balanced());
    }

    #[test]
    fn roundtrips_through_codec() {
        let mut p = Payments::zero(2, 1);
        p.set_user_payment(UserId(1), Money::from_f64(0.123456));
        p.set_provider_revenue(ProviderId(0), Money::from_f64(0.1));
        assert_eq!(roundtrip(&p).unwrap(), p);
    }
}
