//! Write-ahead journal records for the durable market.
//!
//! The continuous market journals every *accepted* submission before
//! acknowledging it, and seals every cleared epoch into a hash-chained
//! settlement record. The records themselves are plain domain values and
//! live here, in the canonical wire format, so that the journal file is
//! readable by anything that links the types crate — the market daemon,
//! the offline `dauction verify-log` walker, benches, and tests all
//! decode the same bytes. The *file* framing (length prefix + CRC) and
//! the fsync discipline are the market crate's concern, not this one's.
//!
//! Canonical encoding matters doubly here: the settlement chain links
//! digests over the encoded bytes of each [`SealRecord`], so "equal
//! values ⇒ identical bytes" is what makes an independently recomputed
//! seal digest comparable at all.

use crate::bids::{BidVector, ProviderAsk, UserBid};
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::ids::{SessionId, UserId};
use crate::outcome::Outcome;

/// One record of the market's write-ahead epoch journal.
///
/// Records appear in the journal in the order the single-threaded epoch
/// scheduler applied them, except that [`JournalRecord::Sealed`] records
/// are appended by the (possibly concurrent) epoch clearers — every
/// record names its epoch, so interleaving across epochs is harmless.
// `Sealed` dwarfs the other variants, but records are decoded one at a
// time and handed off; nothing holds accept-heavy `Vec<JournalRecord>`s
// on a hot path, so boxing the seal would buy indirection, not memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A bid was accepted into epoch `epoch`'s collector. Written (and
    /// made durable per the fsync policy) *before* the acceptance is
    /// visible anywhere — counters, epoch-close triggers, outcomes.
    Accepted {
        /// The epoch the bid was folded into.
        epoch: u64,
        /// The accepted bidder.
        user: UserId,
        /// The accepted bid.
        bid: UserBid,
    },
    /// A streamed ask overwrote ask slot `slot` for the open epoch.
    /// Journaled so recovery rebuilds the identical closed bid vector.
    AskSet {
        /// The epoch the ask applies to.
        epoch: u64,
        /// The overwritten ask slot.
        slot: u64,
        /// The ask.
        ask: ProviderAsk,
    },
    /// Epoch `epoch` cleared: the settlement record, chained to every
    /// seal before it.
    Sealed(SealRecord),
}

/// Record-type tags on the wire.
const TAG_ACCEPTED: u8 = 1;
const TAG_ASK_SET: u8 = 2;
const TAG_SEALED: u8 = 3;

impl Encode for JournalRecord {
    fn encode(&self, w: &mut Writer) {
        match self {
            JournalRecord::Accepted { epoch, user, bid } => {
                w.put_u8(TAG_ACCEPTED);
                w.put_u64(*epoch);
                user.encode(w);
                bid.encode(w);
            }
            JournalRecord::AskSet { epoch, slot, ask } => {
                w.put_u8(TAG_ASK_SET);
                w.put_u64(*epoch);
                w.put_u64(*slot);
                ask.encode(w);
            }
            JournalRecord::Sealed(seal) => {
                w.put_u8(TAG_SEALED);
                seal.encode(w);
            }
        }
    }
}

impl Decode for JournalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_ACCEPTED => Ok(JournalRecord::Accepted {
                epoch: r.get_u64()?,
                user: UserId::decode(r)?,
                bid: UserBid::decode(r)?,
            }),
            TAG_ASK_SET => Ok(JournalRecord::AskSet {
                epoch: r.get_u64()?,
                slot: r.get_u64()?,
                ask: ProviderAsk::decode(r)?,
            }),
            TAG_SEALED => Ok(JournalRecord::Sealed(SealRecord::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "JournalRecord", tag }),
        }
    }
}

/// The settlement record of one cleared epoch.
///
/// `prev` and `digest` form the hash chain: `digest` is the chain link
/// over this seal's [*content*](SealRecord::content_bytes) (everything
/// except the two digest fields) and `prev` must equal the `digest` of
/// the seal appended before it (the chain genesis for the first seal).
/// The chain functions themselves live in `dauctioneer-crypto`; this
/// type only carries the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealRecord {
    /// Zero-based epoch counter.
    pub epoch: u64,
    /// The session the epoch cleared under (`first_session + epoch`).
    pub session: SessionId,
    /// The session seed (`seed + (epoch+1)·7919`), so any third party
    /// can replay the epoch as a one-shot session and compare outcomes.
    pub seed: u64,
    /// Bids accepted into the epoch.
    pub accepted: u64,
    /// The closed bid vector every provider received.
    pub bids: BidVector,
    /// Name of the mechanism that cleared the epoch (from
    /// `Mechanism::name`, e.g. `"double-auction"`). Part of the signed
    /// content so a journal re-cleared under a different mechanism is
    /// detectable offline and refused by recovery.
    pub mechanism: String,
    /// The unanimous Definition-1 outcome.
    pub outcome: Outcome,
    /// Digest of the previous seal (chain genesis for the first).
    pub prev: [u8; 32],
    /// This seal's chain digest: `chain_link(prev, content_bytes())`.
    pub digest: [u8; 32],
}

impl SealRecord {
    /// The canonical bytes the chain digest commits to: every field
    /// except `prev` and `digest` themselves. (`prev` is bound into the
    /// digest as the chain-link input, not as content, so that the same
    /// epoch content re-sealed at a different chain position yields a
    /// different digest.)
    pub fn content_bytes(&self) -> bytes::Bytes {
        let mut w = Writer::new();
        self.epoch.encode(&mut w);
        self.session.encode(&mut w);
        self.seed.encode(&mut w);
        self.accepted.encode(&mut w);
        self.bids.encode(&mut w);
        self.mechanism.encode(&mut w);
        self.outcome.encode(&mut w);
        w.finish()
    }
}

impl Encode for SealRecord {
    fn encode(&self, w: &mut Writer) {
        self.epoch.encode(w);
        self.session.encode(w);
        self.seed.encode(w);
        self.accepted.encode(w);
        self.bids.encode(w);
        self.mechanism.encode(w);
        self.outcome.encode(w);
        w.put_slice(&self.prev);
        w.put_slice(&self.digest);
    }
}

impl Decode for SealRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let epoch = u64::decode(r)?;
        let session = SessionId::decode(r)?;
        let seed = u64::decode(r)?;
        let accepted = u64::decode(r)?;
        let bids = BidVector::decode(r)?;
        let mechanism = String::decode(r)?;
        let outcome = Outcome::decode(r)?;
        let mut prev = [0u8; 32];
        prev.copy_from_slice(r.get_slice(32)?);
        let mut digest = [0u8; 32];
        digest.copy_from_slice(r.get_slice(32)?);
        Ok(SealRecord { epoch, session, seed, accepted, bids, mechanism, outcome, prev, digest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;
    use crate::quantity::{Bw, Money};

    fn bid(v: f64) -> UserBid {
        UserBid::new(Money::from_f64(v), Bw::from_f64(0.5))
    }

    fn seal() -> SealRecord {
        SealRecord {
            epoch: 3,
            session: SessionId(103),
            seed: 42 + 4 * 7919,
            accepted: 2,
            bids: BidVector::builder(2, 1)
                .user_bid(0, bid(1.1))
                .user_bid(1, bid(0.9))
                .provider_ask(0, ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.0)))
                .build(),
            mechanism: "double-auction".to_string(),
            outcome: Outcome::Abort,
            prev: [7u8; 32],
            digest: [9u8; 32],
        }
    }

    #[test]
    fn records_roundtrip() {
        let records = [
            JournalRecord::Accepted { epoch: 0, user: UserId(4), bid: bid(1.2) },
            JournalRecord::AskSet {
                epoch: 1,
                slot: 2,
                ask: ProviderAsk::new(Money::from_f64(0.3), Bw::from_f64(1.0)),
            },
            JournalRecord::Sealed(seal()),
        ];
        for record in &records {
            assert_eq!(&roundtrip(record).unwrap(), record);
        }
    }

    #[test]
    fn records_reject_bad_tags() {
        assert!(matches!(
            JournalRecord::decode_all(&[0]),
            Err(CodecError::InvalidTag { what: "JournalRecord", .. })
        ));
        assert!(JournalRecord::decode_all(&[9, 1, 2, 3]).is_err());
    }

    #[test]
    fn content_bytes_exclude_the_digest_fields() {
        let a = seal();
        let mut b = a.clone();
        b.prev = [1u8; 32];
        b.digest = [2u8; 32];
        assert_eq!(a.content_bytes(), b.content_bytes(), "digests are not content");
        let mut c = a.clone();
        c.seed += 1;
        assert_ne!(a.content_bytes(), c.content_bytes(), "content fields are content");
        // Mechanism provenance is signed content: re-clearing the same
        // epoch under another mechanism must change the digest input.
        let mut d = a.clone();
        d.mechanism = "standard-auction".to_string();
        assert_ne!(a.content_bytes(), d.content_bytes(), "mechanism is content");
    }

    #[test]
    fn encoding_is_canonical() {
        let record = JournalRecord::Sealed(seal());
        assert_eq!(record.encode_to_bytes(), record.clone().encode_to_bytes());
    }

    #[test]
    fn truncated_seal_fails_cleanly() {
        let bytes = JournalRecord::Sealed(seal()).encode_to_bytes();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(JournalRecord::decode_all(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
