//! The outcome of a (simulated) auction: a result or the abort value ⊥.

use crate::allocation::Allocation;
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;
use crate::payments::Payments;

/// The pair `(x, p̄)` an allocation algorithm returns: an allocation plus
/// the payment vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AuctionResult {
    /// The feasible allocation `x`.
    pub allocation: Allocation,
    /// The payments `p̄`.
    pub payments: Payments,
}

impl AuctionResult {
    /// Construct from parts.
    pub fn new(allocation: Allocation, payments: Payments) -> AuctionResult {
        AuctionResult { allocation, payments }
    }

    /// An empty result (nothing allocated, nothing paid).
    pub fn empty(n_users: usize, n_providers: usize) -> AuctionResult {
        AuctionResult {
            allocation: Allocation::new(n_users, n_providers),
            payments: Payments::zero(n_users, n_providers),
        }
    }
}

impl Encode for AuctionResult {
    fn encode(&self, w: &mut Writer) {
        self.allocation.encode(w);
        self.payments.encode(w);
    }
}

impl Decode for AuctionResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AuctionResult { allocation: Allocation::decode(r)?, payments: Payments::decode(r)? })
    }
}

/// Outcome of a distributed simulation of the auctioneer (§3.2 of the
/// paper): either every provider output the same `(x, p̄)` pair, or the
/// simulation aborted with the special value ⊥.
///
/// When the outcome is ⊥ the auction is void: nothing is allocated and
/// nobody pays, so every participant's utility is zero. This is what gives
/// providers "preference for a solution".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// All providers agreed on this result; it is enforced.
    Agreed(AuctionResult),
    /// The simulation aborted (⊥).
    Abort,
}

impl Outcome {
    /// `true` for ⊥.
    pub fn is_abort(&self) -> bool {
        matches!(self, Outcome::Abort)
    }

    /// The agreed result, if any.
    pub fn as_result(&self) -> Option<&AuctionResult> {
        match self {
            Outcome::Agreed(r) => Some(r),
            Outcome::Abort => None,
        }
    }

    /// The agreed result, consuming the outcome.
    pub fn into_result(self) -> Option<AuctionResult> {
        match self {
            Outcome::Agreed(r) => Some(r),
            Outcome::Abort => None,
        }
    }
}

impl From<AuctionResult> for Outcome {
    fn from(r: AuctionResult) -> Outcome {
        Outcome::Agreed(r)
    }
}

impl Encode for Outcome {
    fn encode(&self, w: &mut Writer) {
        match self {
            Outcome::Abort => w.put_u8(0),
            Outcome::Agreed(r) => {
                w.put_u8(1);
                r.encode(w);
            }
        }
    }
}

impl Decode for Outcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Outcome::Abort),
            1 => Ok(Outcome::Agreed(AuctionResult::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "Outcome", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;
    use crate::ids::{ProviderId, UserId};
    use crate::quantity::{Bw, Money};

    #[test]
    fn abort_has_no_result() {
        assert!(Outcome::Abort.is_abort());
        assert!(Outcome::Abort.as_result().is_none());
        assert!(Outcome::Abort.into_result().is_none());
    }

    #[test]
    fn agreed_exposes_result() {
        let r = AuctionResult::empty(1, 1);
        let o = Outcome::from(r.clone());
        assert!(!o.is_abort());
        assert_eq!(o.as_result(), Some(&r));
        assert_eq!(o.into_result(), Some(r));
    }

    #[test]
    fn outcome_roundtrips() {
        assert_eq!(roundtrip(&Outcome::Abort).unwrap(), Outcome::Abort);
        let mut alloc = Allocation::new(2, 1);
        alloc.add(UserId(0), ProviderId(0), Bw::from_f64(0.5));
        let mut pay = Payments::zero(2, 1);
        pay.set_user_payment(UserId(0), Money::from_f64(0.4));
        let o = Outcome::Agreed(AuctionResult::new(alloc, pay));
        assert_eq!(roundtrip(&o).unwrap(), o);
    }

    #[test]
    fn outcome_rejects_bad_tag() {
        assert!(Outcome::decode_all(&[7]).is_err());
    }
}
