//! Domain types for the distributed auctioneer.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for the participants of a resource-allocation
//! auction ([`ProviderId`], [`UserId`]), exact fixed-point quantities
//! ([`Money`], [`Bw`]), the bids exchanged in standard and double auctions
//! ([`UserBid`], [`ProviderAsk`], [`BidVector`]), the results produced by an
//! allocation algorithm ([`Allocation`], [`Payments`], [`AuctionResult`],
//! [`Outcome`]) and a deterministic binary wire format ([`codec`]).
//!
//! # Why fixed point?
//!
//! The distributed auctioneer replicates the allocation algorithm `A` on
//! several providers and cross-validates the redundant results byte-for-byte
//! (see the `dauctioneer-core` crate). Floating-point valuations would make
//! that comparison fragile and, worse, the *bid agreement* building block of
//! the paper runs consensus over the **bit stream** of each bid, which
//! requires a canonical bit representation. All quantities are therefore
//! integers in micro-units: [`Money`] is `i64` micro-currency, [`Bw`] is
//! `u64` micro-bandwidth-units.
//!
//! # Example
//!
//! ```
//! use dauctioneer_types::{Money, Bw, UserBid, BidVector, ProviderAsk};
//!
//! let bid = UserBid::new(Money::from_micro(1_100_000), Bw::from_micro(500_000));
//! let ask = ProviderAsk::new(Money::from_micro(400_000), Bw::from_micro(2_000_000));
//! let bids = BidVector::builder(1, 1).user_bid(0, bid).provider_ask(0, ask).build();
//! assert_eq!(bids.num_users(), 1);
//! assert!(bids.user_bid(dauctioneer_types::UserId(0)).is_valid());
//! ```

#![deny(missing_docs)]

pub mod allocation;
pub mod bids;
pub mod bundle;
pub mod codec;
pub mod error;
pub mod ids;
pub mod journal;
pub mod outcome;
pub mod payments;
pub mod quantity;

pub use allocation::Allocation;
pub use bids::{BidEntry, BidVector, BidVectorBuilder, ProviderAsk, UserBid};
pub use bundle::{BundleBid, BundleOption};
pub use codec::{Decode, Encode, Reader, Writer};
pub use error::CodecError;
pub use ids::{BidderId, ProviderId, SessionId, UserId};
pub use journal::{JournalRecord, SealRecord};
pub use outcome::{AuctionResult, Outcome};
pub use payments::Payments;
pub use quantity::{Bw, Money, MICRO};
