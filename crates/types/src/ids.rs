//! Identifiers for auction participants and protocol sessions.

use std::fmt;

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;

/// Identifier of a resource *provider* (a gateway owner in the community
/// network case study). Providers jointly simulate the auctioneer.
///
/// Providers are numbered densely `0..m`; the paper assumes every provider
/// has a unique identifier known to every other provider (§3.3).
///
/// # Example
///
/// ```
/// use dauctioneer_types::ProviderId;
/// let ids: Vec<ProviderId> = ProviderId::all(3).collect();
/// assert_eq!(ids, vec![ProviderId(0), ProviderId(1), ProviderId(2)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProviderId(pub u32);

impl ProviderId {
    /// Iterator over all provider ids `0..m`.
    pub fn all(m: usize) -> impl Iterator<Item = ProviderId> + Clone {
        (0..m as u32).map(ProviderId)
    }

    /// Dense index into per-provider arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProviderId {
    fn from(v: u32) -> Self {
        ProviderId(v)
    }
}

/// Identifier of a *user* (bidder requesting resources).
///
/// Users are numbered densely `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

impl UserId {
    /// Iterator over all user ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = UserId> + Clone {
        (0..n as u32).map(UserId)
    }

    /// Dense index into per-user arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

/// Any entity that may submit a bid to the auctioneer.
///
/// In a *standard* auction only users bid; in a *double* auction providers
/// submit asks as well (§3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BidderId {
    /// A resource consumer.
    User(UserId),
    /// A resource provider (double auctions only).
    Provider(ProviderId),
}

impl fmt::Display for BidderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BidderId::User(u) => write!(f, "{u}"),
            BidderId::Provider(p) => write!(f, "{p}"),
        }
    }
}

/// Identifier of one full run of the distributed auctioneer.
///
/// Every message exchanged by the protocol carries the session id so that
/// concurrent or successive auctions never interfere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

impl Encode for ProviderId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for ProviderId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProviderId(r.get_u32()?))
    }
}

impl Encode for UserId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl Decode for UserId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(UserId(r.get_u32()?))
    }
}

impl Encode for SessionId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for SessionId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SessionId(r.get_u64()?))
    }
}

impl Encode for BidderId {
    fn encode(&self, w: &mut Writer) {
        match self {
            BidderId::User(u) => {
                w.put_u8(0);
                u.encode(w);
            }
            BidderId::Provider(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }
}

impl Decode for BidderId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(BidderId::User(UserId::decode(r)?)),
            1 => Ok(BidderId::Provider(ProviderId::decode(r)?)),
            tag => Err(CodecError::InvalidTag { what: "BidderId", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    #[test]
    fn provider_id_all_enumerates_densely() {
        let ids: Vec<_> = ProviderId::all(4).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3], ProviderId(3));
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn user_id_all_enumerates_densely() {
        let ids: Vec<_> = UserId::all(2).collect();
        assert_eq!(ids, vec![UserId(0), UserId(1)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProviderId(7).to_string(), "P7");
        assert_eq!(UserId(3).to_string(), "U3");
        assert_eq!(BidderId::User(UserId(1)).to_string(), "U1");
        assert_eq!(BidderId::Provider(ProviderId(2)).to_string(), "P2");
        assert_eq!(SessionId(9).to_string(), "session-9");
    }

    #[test]
    fn ids_roundtrip_through_codec() {
        assert_eq!(roundtrip(&ProviderId(42)).unwrap(), ProviderId(42));
        assert_eq!(roundtrip(&UserId(17)).unwrap(), UserId(17));
        assert_eq!(roundtrip(&SessionId(u64::MAX)).unwrap(), SessionId(u64::MAX));
        let b = BidderId::Provider(ProviderId(5));
        assert_eq!(roundtrip(&b).unwrap(), b);
    }

    #[test]
    fn bidder_id_rejects_bad_tag() {
        let mut r = Reader::new(&[9, 0, 0, 0, 0]);
        assert!(BidderId::decode(&mut r).is_err());
    }

    #[test]
    fn ordering_is_by_numeric_id() {
        assert!(ProviderId(1) < ProviderId(2));
        assert!(UserId(0) < UserId(10));
    }
}
