//! Exact fixed-point quantities: currency and bandwidth.
//!
//! All replicas of the allocation algorithm must produce *bit-identical*
//! results, so every quantity in the system is an integer number of
//! micro-units ([`MICRO`] = 10⁻⁶ of the abstract unit used by the paper's
//! workloads).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::CodecError;

/// Number of micro-units per abstract unit.
pub const MICRO: i64 = 1_000_000;

/// An exact amount of currency, stored as `i64` micro-units.
///
/// `Money` represents valuations, payments and social welfare. It may be
/// negative (e.g. a provider's utility before receiving payments, or a VCG
/// externality term).
///
/// # Example
///
/// ```
/// use dauctioneer_types::{Money, Bw};
/// let unit_value = Money::from_f64(1.25);
/// let demand = Bw::from_f64(0.5);
/// // Total value of 0.5 units at 1.25 per unit:
/// assert_eq!(unit_value.per_unit(demand), Money::from_f64(0.625));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Money(pub i64);

impl Money {
    /// Zero currency.
    pub const ZERO: Money = Money(0);
    /// Largest representable amount; used as an "infinite" sentinel bound.
    pub const MAX: Money = Money(i64::MAX);

    /// Construct from raw micro-units.
    pub const fn from_micro(micro: i64) -> Money {
        Money(micro)
    }

    /// Construct from whole units.
    pub const fn from_units(units: i64) -> Money {
        Money(units * MICRO)
    }

    /// Construct by rounding a float amount of units to the nearest
    /// micro-unit. Intended for workload generation and tests, not for
    /// protocol-critical paths.
    pub fn from_f64(units: f64) -> Money {
        Money((units * MICRO as f64).round() as i64)
    }

    /// Raw micro-units.
    pub const fn micro(self) -> i64 {
        self.0
    }

    /// Approximate value in units as a float (for reporting only).
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICRO as f64
    }

    /// `true` if the amount is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Total price of `bw` bandwidth at `self` per unit, rounded toward
    /// zero. Uses 128-bit intermediates, so it cannot overflow for any
    /// realistic workload.
    pub fn per_unit(self, bw: Bw) -> Money {
        let v = self.0 as i128 * bw.0 as i128 / MICRO as i128;
        Money(v as i64)
    }

    /// Saturating subtraction, clamped at zero.
    pub fn saturating_sub_at_zero(self, rhs: Money) -> Money {
        Money((self.0 - rhs.0).max(0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let a = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:06}", a / MICRO as u64, a % MICRO as u64)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl Encode for Money {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(self.0);
    }
}

impl Decode for Money {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Money(r.get_i64()?))
    }
}

/// An exact amount of bandwidth (the shared resource of the case study),
/// stored as `u64` micro-units.
///
/// # Example
///
/// ```
/// use dauctioneer_types::Bw;
/// let capacity = Bw::from_f64(1.5);
/// let demand = Bw::from_f64(0.9);
/// assert_eq!(capacity - demand, Bw::from_f64(0.6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bw(pub u64);

impl Bw {
    /// Zero bandwidth.
    pub const ZERO: Bw = Bw(0);

    /// Construct from raw micro-units.
    pub const fn from_micro(micro: u64) -> Bw {
        Bw(micro)
    }

    /// Construct from whole units.
    pub const fn from_units(units: u64) -> Bw {
        Bw(units * MICRO as u64)
    }

    /// Construct by rounding a float amount of units to the nearest
    /// micro-unit. Intended for workload generation and tests.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative.
    pub fn from_f64(units: f64) -> Bw {
        assert!(units >= 0.0, "bandwidth cannot be negative: {units}");
        Bw((units * MICRO as f64).round() as u64)
    }

    /// Raw micro-units.
    pub const fn micro(self) -> u64 {
        self.0
    }

    /// Approximate value in units as a float (for reporting only).
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICRO as f64
    }

    /// `true` if this is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Bw) -> Bw {
        Bw(self.0.min(other.0))
    }

    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: Bw) -> Bw {
        Bw(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Bw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}", self.0 / MICRO as u64, self.0 % MICRO as u64)
    }
}

impl Add for Bw {
    type Output = Bw;
    fn add(self, rhs: Bw) -> Bw {
        Bw(self.0 + rhs.0)
    }
}

impl AddAssign for Bw {
    fn add_assign(&mut self, rhs: Bw) {
        self.0 += rhs.0;
    }
}

impl Sub for Bw {
    type Output = Bw;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use [`Bw::saturating_sub`] when
    /// underflow is expected.
    fn sub(self, rhs: Bw) -> Bw {
        Bw(self.0 - rhs.0)
    }
}

impl SubAssign for Bw {
    fn sub_assign(&mut self, rhs: Bw) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bw {
    fn sum<I: Iterator<Item = Bw>>(iter: I) -> Bw {
        iter.fold(Bw::ZERO, Add::add)
    }
}

impl Encode for Bw {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for Bw {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Bw(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    #[test]
    fn money_constructors_agree() {
        assert_eq!(Money::from_units(2), Money::from_micro(2_000_000));
        assert_eq!(Money::from_f64(1.25), Money::from_micro(1_250_000));
        assert_eq!(Money::from_f64(-0.5), Money::from_micro(-500_000));
    }

    #[test]
    fn money_arithmetic() {
        let a = Money::from_f64(1.5);
        let b = Money::from_f64(0.25);
        assert_eq!(a + b, Money::from_f64(1.75));
        assert_eq!(a - b, Money::from_f64(1.25));
        assert_eq!(-b, Money::from_f64(-0.25));
        assert_eq!(b * 3, Money::from_f64(0.75));
        assert_eq!(a / 2, Money::from_f64(0.75));
        let total: Money = [a, b, b].into_iter().sum();
        assert_eq!(total, Money::from_f64(2.0));
    }

    #[test]
    fn money_per_unit_scales_by_bandwidth() {
        let price = Money::from_f64(1.25);
        assert_eq!(price.per_unit(Bw::from_f64(1.0)), price);
        assert_eq!(price.per_unit(Bw::from_f64(0.5)), Money::from_f64(0.625));
        assert_eq!(price.per_unit(Bw::ZERO), Money::ZERO);
        // Large values exercise the 128-bit intermediate.
        let big = Money::from_units(1_000_000);
        assert_eq!(
            big.per_unit(Bw::from_units(1_000_000)),
            Money::from_micro(1_000_000_000_000 * MICRO)
        );
    }

    #[test]
    fn money_display_is_fixed_point() {
        assert_eq!(Money::from_f64(1.25).to_string(), "1.250000");
        assert_eq!(Money::from_micro(-1).to_string(), "-0.000001");
        assert_eq!(Money::ZERO.to_string(), "0.000000");
    }

    #[test]
    fn money_saturating_sub_at_zero() {
        let a = Money::from_units(1);
        let b = Money::from_units(2);
        assert_eq!(a.saturating_sub_at_zero(b), Money::ZERO);
        assert_eq!(b.saturating_sub_at_zero(a), Money::from_units(1));
    }

    #[test]
    fn bw_arithmetic() {
        let a = Bw::from_f64(0.8);
        let b = Bw::from_f64(0.3);
        assert_eq!(a + b, Bw::from_f64(1.1));
        assert_eq!(a - b, Bw::from_f64(0.5));
        assert_eq!(a.saturating_sub(b + b + b), Bw::ZERO);
        assert_eq!(a.min(b), b);
        let total: Bw = [a, b].into_iter().sum();
        assert_eq!(total, Bw::from_f64(1.1));
    }

    #[test]
    #[should_panic(expected = "bandwidth cannot be negative")]
    fn bw_rejects_negative_floats() {
        let _ = Bw::from_f64(-0.1);
    }

    #[test]
    fn quantities_roundtrip_through_codec() {
        assert_eq!(roundtrip(&Money::from_f64(-3.5)).unwrap(), Money::from_f64(-3.5));
        assert_eq!(roundtrip(&Bw::from_f64(2.25)).unwrap(), Bw::from_f64(2.25));
    }

    #[test]
    fn as_f64_is_inverse_of_from_f64_at_micro_precision() {
        for v in [0.0, 0.1, 1.0, 123.456789] {
            assert!((Money::from_f64(v).as_f64() - v).abs() < 1e-6);
            assert!((Bw::from_f64(v).as_f64() - v).abs() < 1e-6);
        }
    }
}
