//! Property tests for the wire codec: every domain value round-trips, and
//! encoding is canonical (equal values ⇒ identical bytes).

use proptest::prelude::*;

use dauctioneer_types::codec::roundtrip;
use dauctioneer_types::Decode;
use dauctioneer_types::{
    Allocation, AuctionResult, BidEntry, BidVector, Bw, Money, Outcome, Payments, ProviderAsk,
    ProviderId, UserBid, UserId,
};

fn arb_money() -> impl Strategy<Value = Money> {
    any::<i64>().prop_map(Money::from_micro)
}

fn arb_bw() -> impl Strategy<Value = Bw> {
    any::<u64>().prop_map(Bw::from_micro)
}

fn arb_user_bid() -> impl Strategy<Value = UserBid> {
    (arb_money(), arb_bw()).prop_map(|(v, d)| UserBid::new(v, d))
}

fn arb_entry() -> impl Strategy<Value = BidEntry> {
    prop_oneof![Just(BidEntry::Neutral), arb_user_bid().prop_map(BidEntry::Valid)]
}

fn arb_ask() -> impl Strategy<Value = ProviderAsk> {
    (arb_money(), arb_bw()).prop_map(|(c, cap)| ProviderAsk::new(c, cap))
}

fn arb_bid_vector() -> impl Strategy<Value = BidVector> {
    (proptest::collection::vec(arb_entry(), 0..12), proptest::collection::vec(arb_ask(), 0..6))
        .prop_map(|(users, asks)| BidVector::from_parts(users, asks))
}

fn arb_allocation() -> impl Strategy<Value = Allocation> {
    (1usize..6, 1usize..4).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n as u32, 0..m as u32, 1u64..1_000_000), 0..10).prop_map(
            move |cells| {
                let mut a = Allocation::new(n, m);
                for (u, p, bw) in cells {
                    a.add(UserId(u), ProviderId(p), Bw::from_micro(bw));
                }
                a
            },
        )
    })
}

fn arb_payments() -> impl Strategy<Value = Payments> {
    (proptest::collection::vec(arb_money(), 0..8), proptest::collection::vec(arb_money(), 0..4))
        .prop_map(|(u, p)| Payments::from_parts(u, p))
}

proptest! {
    #[test]
    fn money_roundtrips(v in arb_money()) {
        prop_assert_eq!(roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn bw_roundtrips(v in arb_bw()) {
        prop_assert_eq!(roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn bid_vector_roundtrips(v in arb_bid_vector()) {
        prop_assert_eq!(roundtrip(&v).unwrap(), v);
    }

    #[test]
    fn bid_vector_encoding_is_canonical(v in arb_bid_vector()) {
        use dauctioneer_types::Encode;
        let clone = v.clone();
        prop_assert_eq!(v.encode_to_bytes(), clone.encode_to_bytes());
    }

    #[test]
    fn allocation_roundtrips(a in arb_allocation()) {
        prop_assert_eq!(roundtrip(&a).unwrap(), a);
    }

    #[test]
    fn payments_roundtrip(p in arb_payments()) {
        prop_assert_eq!(roundtrip(&p).unwrap(), p);
    }

    #[test]
    fn outcome_roundtrips(a in arb_allocation(), p in arb_payments(), abort in any::<bool>()) {
        let o = if abort {
            Outcome::Abort
        } else {
            Outcome::Agreed(AuctionResult::new(a, p))
        };
        prop_assert_eq!(roundtrip(&o).unwrap(), o);
    }

    /// Decoding never panics on arbitrary bytes — it returns an error or a
    /// value (fuzz-style robustness for everything the network can hand us).
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = BidVector::decode_all(&bytes);
        let _ = Allocation::decode_all(&bytes);
        let _ = Payments::decode_all(&bytes);
        let _ = Outcome::decode_all(&bytes);
    }

    /// Money arithmetic respects basic algebraic laws at micro precision.
    #[test]
    fn money_addition_is_commutative_and_associative(
        a in -1_000_000_000i64..1_000_000_000,
        b in -1_000_000_000i64..1_000_000_000,
        c in -1_000_000_000i64..1_000_000_000,
    ) {
        let (a, b, c) = (Money::from_micro(a), Money::from_micro(b), Money::from_micro(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a - a, Money::ZERO);
    }

    /// `per_unit` is monotone in both arguments for non-negative money.
    #[test]
    fn per_unit_is_monotone(
        v1 in 0i64..2_000_000, v2 in 0i64..2_000_000,
        d1 in 0u64..2_000_000, d2 in 0u64..2_000_000,
    ) {
        let (lo_v, hi_v) = (v1.min(v2), v1.max(v2));
        let (lo_d, hi_d) = (d1.min(d2), d1.max(d2));
        prop_assert!(
            Money::from_micro(lo_v).per_unit(Bw::from_micro(lo_d))
                <= Money::from_micro(hi_v).per_unit(Bw::from_micro(hi_d))
        );
    }
}
