//! Seeded, deterministic fault injection over any [`Transport`].
//!
//! The paper's claim is not that the auctioneer works on a good network —
//! it is that `m` mutually distrusting providers reach the *same* outcome
//! (or the external ⊥ of §3.2) when links lose, duplicate, reorder,
//! delay, or corrupt their messages. This module makes that claim
//! falsifiable in-process: a [`FaultPlan`] assigns per-link fault
//! probabilities, and a [`ChaosTransport`] wraps any transport —
//! [`Endpoint`][crate::Endpoint], [`TcpEndpoint`][crate::TcpEndpoint],
//! or any other [`Transport`] — applying the plan at the receiving edge
//! of every link.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(plan.seed, salt, from,
//! to, n)` where `n` is the position of the message in its directed
//! link's FIFO stream — **not** of wall-clock time, thread scheduling,
//! or a shared RNG. Because both transports deliver FIFO per ordered
//! pair, the *n*-th message from provider `i` to provider `j` suffers
//! exactly the same fate on every run with the same seed, on every
//! backend. A chaos run is therefore replayable from its seed alone,
//! and the same seed produces the same per-link fault trace under
//! in-process channels and under real TCP sockets.
//!
//! Only the *contents and per-link order* of deliveries are
//! deterministic; the interleaving across links still follows the
//! schedule, exactly like the fault-free transports.
//!
//! # Termination
//!
//! No fault can park a message forever: delays are bounded by the plan's
//! delay range, and a message held back for reordering is released when
//! the next message on its link arrives or after
//! [`FaultPlan::reorder_hold`], whichever comes first. A chaos run
//! therefore always terminates — sessions that lost a critical message
//! simply hit their deadline and read ⊥, the paper's external abort.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dauctioneer_types::ProviderId;

use crate::hub::RecvError;
use crate::transport::Transport;

/// Per-link fault probabilities and their seed: the full description of
/// one chaos experiment.
///
/// All probabilities are in `[0, 1]` and apply independently per
/// message at the receiving edge of each directed link (see the module
/// docs for the decision order). The zero plan ([`FaultPlan::none`]) is
/// exactly transparent: a [`ChaosTransport`] carrying it delivers the
/// same messages in the same per-link order as the bare transport.
///
/// # Example
///
/// ```
/// use dauctioneer_net::FaultPlan;
///
/// let plan = FaultPlan::seeded(7).with_drop(0.1).with_corrupt(0.02);
/// assert!(plan.validate().is_ok());
/// // Replayable: the spec string round-trips.
/// let respelled: FaultPlan = plan.to_string().parse().unwrap();
/// assert_eq!(plan, respelled);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// Probability a message is dropped (never delivered).
    pub drop: f64,
    /// Probability a message is delivered twice back-to-back.
    pub duplicate: f64,
    /// Probability a message is held back and delivered after the next
    /// message on its link (FIFO violation).
    pub reorder: f64,
    /// Probability a message is delayed by a duration sampled from
    /// [`FaultPlan::delay_range`].
    pub delay: f64,
    /// Probability one payload byte is flipped.
    pub corrupt: f64,
    /// Probability a directed link is **partitioned**: a total seeded
    /// blackout of that link — every message on it is swallowed. Decided
    /// once per link (not per message), so a partitioned link stays
    /// black, modelling a network partition rather than loss.
    pub partition: f64,
    /// When set, a partitioned link heals after this many messages have
    /// been attempted on it: message indices `< heal_after` are
    /// swallowed, later ones pass to the ordinary fault lanes. `None`
    /// means the partition never heals within the run.
    pub heal_after: Option<u64>,
    /// Inclusive bounds the extra delay is sampled from.
    pub delay_range: (Duration, Duration),
    /// How long a reorder-held message waits for a successor before
    /// being released anyway (the termination bound).
    pub reorder_hold: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The benign plan: no faults, seed 0. Exactly transparent.
    pub fn none() -> FaultPlan {
        FaultPlan::seeded(0)
    }

    /// A plan with all probabilities zero and the given seed; compose
    /// with the `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: 0.0,
            corrupt: 0.0,
            partition: 0.0,
            heal_after: None,
            delay_range: (Duration::from_millis(1), Duration::from_millis(20)),
            reorder_hold: Duration::from_millis(50),
        }
    }

    /// Set the drop probability.
    pub fn with_drop(mut self, p: f64) -> FaultPlan {
        self.drop = p;
        self
    }

    /// Set the duplicate probability.
    pub fn with_duplicate(mut self, p: f64) -> FaultPlan {
        self.duplicate = p;
        self
    }

    /// Set the reorder probability.
    pub fn with_reorder(mut self, p: f64) -> FaultPlan {
        self.reorder = p;
        self
    }

    /// Set the delay probability and the sampled delay bounds.
    pub fn with_delay(mut self, p: f64, min: Duration, max: Duration) -> FaultPlan {
        self.delay = p;
        self.delay_range = (min, max);
        self
    }

    /// Set the corrupt-payload probability.
    pub fn with_corrupt(mut self, p: f64) -> FaultPlan {
        self.corrupt = p;
        self
    }

    /// Set the per-link partition probability and (optionally) the
    /// message index at which a partitioned link heals.
    pub fn with_partition(mut self, p: f64, heal_after: Option<u64>) -> FaultPlan {
        self.partition = p;
        self.heal_after = heal_after;
        self
    }

    /// Replace the seed, keeping every probability.
    pub fn reseeded(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// `true` when every fault probability is zero — the wrapper will be
    /// exactly transparent.
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay == 0.0
            && self.corrupt == 0.0
            && self.partition == 0.0
    }

    /// Reject impossible plans up front.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] when a probability is outside `[0, 1]` (or not
    /// a number) or the delay range is inverted.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (name, p) in [
            ("drop", self.drop),
            ("dup", self.duplicate),
            ("reorder", self.reorder),
            ("delay", self.delay),
            ("corrupt", self.corrupt),
            ("partition", self.partition),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError::BadProbability { knob: name, value: p });
            }
        }
        if self.delay_range.0 > self.delay_range.1 {
            return Err(FaultPlanError::InvertedDelayRange {
                min: self.delay_range.0,
                max: self.delay_range.1,
            });
        }
        Ok(())
    }

    /// The fate of the `index`-th message on the directed link
    /// `from → to` under this plan. Pure: same inputs, same decision,
    /// forever. `salt` keeps independent meshes (hub shards) from
    /// experiencing lock-stepped faults.
    pub fn decide(&self, salt: u64, from: ProviderId, to: ProviderId, index: u64) -> FaultDecision {
        let link = splitmix64(
            splitmix64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ ((from.0 as u64) << 32 | to.0 as u64),
        );
        let roll = |lane: u64| unit_f64(prf(link, index, lane));
        // Partition is a property of the *link*, not the message: one
        // roll at index 0 on its own lane decides the link's fate, and
        // an unhealed partition swallows every message before
        // `heal_after` (all of them when `None`).
        let partitioned = unit_f64(prf(link, 0, 7)) < self.partition
            && self.heal_after.map_or(true, |heal| index < heal);
        let drop = !partitioned && roll(0) < self.drop;
        let duplicate = !partitioned && !drop && roll(1) < self.duplicate;
        let reorder = !partitioned && !drop && roll(2) < self.reorder;
        let delay = if !partitioned && !drop && !reorder && roll(3) < self.delay {
            let (min, max) = self.delay_range;
            let span = max.saturating_sub(min);
            Some(
                min + Duration::from_nanos(
                    (unit_f64(prf(link, index, 4)) * span.as_nanos() as f64) as u64,
                ),
            )
        } else {
            None
        };
        let corrupt = !partitioned && !drop && roll(5) < self.corrupt;
        FaultDecision {
            partitioned,
            drop,
            duplicate,
            reorder,
            delay,
            corrupt,
            entropy: prf(link, index, 6),
        }
    }

    /// Apply this decision's corruption to `payload` (one byte flipped
    /// at a PRF-chosen position with a PRF-chosen non-zero mask).
    fn corrupt_payload(payload: &Bytes, entropy: u64) -> Bytes {
        if payload.is_empty() {
            return payload.clone();
        }
        let mut altered = payload.to_vec();
        let pos = (entropy % altered.len() as u64) as usize;
        let mask = (((entropy >> 16) & 0xFF) as u8) | 1; // never the identity flip
        altered[pos] ^= mask;
        Bytes::from(altered)
    }
}

/// `FaultPlan` parses from and serialises to a compact
/// `key=value,key=value` spec, the format `dauction serve --chaos`
/// takes: `seed=7,drop=0.1,dup=0.05,reorder=0.1,delay=0.05,`
/// `delay-ms=1..20,corrupt=0.01,partition=0.3,heal_after=40,hold-ms=50`.
/// Absent keys keep the [`FaultPlan::seeded`] defaults; `heal_after`
/// only matters alongside a non-zero `partition`.
impl std::str::FromStr for FaultPlan {
    type Err = FaultPlanError;

    fn from_str(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::seeded(0);
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').ok_or_else(|| FaultPlanError::BadSpec {
                detail: format!("`{pair}`: expected key=value"),
            })?;
            let bad = |detail: String| FaultPlanError::BadSpec { detail };
            match key.trim() {
                "seed" => plan.seed = value.parse().map_err(|e| bad(format!("seed: {e}")))?,
                "drop" => plan.drop = value.parse().map_err(|e| bad(format!("drop: {e}")))?,
                "dup" => plan.duplicate = value.parse().map_err(|e| bad(format!("dup: {e}")))?,
                "reorder" => {
                    plan.reorder = value.parse().map_err(|e| bad(format!("reorder: {e}")))?
                }
                "delay" => plan.delay = value.parse().map_err(|e| bad(format!("delay: {e}")))?,
                "corrupt" => {
                    plan.corrupt = value.parse().map_err(|e| bad(format!("corrupt: {e}")))?
                }
                "partition" => {
                    plan.partition = value.parse().map_err(|e| bad(format!("partition: {e}")))?
                }
                "heal_after" => {
                    plan.heal_after =
                        Some(value.parse().map_err(|e| bad(format!("heal_after: {e}")))?)
                }
                "delay-ms" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| bad(format!("delay-ms: `{value}`: expected MIN..MAX")))?;
                    plan.delay_range = (parse_ms("delay-ms", lo)?, parse_ms("delay-ms", hi)?);
                }
                "hold-ms" => plan.reorder_hold = parse_ms("hold-ms", value)?,
                other => return Err(bad(format!("unknown knob `{other}`"))),
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Parse a (possibly fractional) non-negative millisecond value of a
/// chaos spec into a [`Duration`].
fn parse_ms(knob: &str, value: &str) -> Result<Duration, FaultPlanError> {
    let bad = |detail: String| FaultPlanError::BadSpec { detail };
    let ms: f64 = value.trim().parse().map_err(|e| bad(format!("{knob}: {e}")))?;
    if !ms.is_finite() || ms < 0.0 {
        return Err(bad(format!("{knob}: must be a finite non-negative number, got {value}")));
    }
    Ok(Duration::from_secs_f64(ms / 1e3))
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fractional milliseconds, so sub-ms delay bounds survive the
        // print → parse round trip (f64 Display is shortest-exact).
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        write!(
            f,
            "seed={},drop={},dup={},reorder={},delay={},delay-ms={}..{},corrupt={},partition={}",
            self.seed,
            self.drop,
            self.duplicate,
            self.reorder,
            self.delay,
            ms(self.delay_range.0),
            ms(self.delay_range.1),
            self.corrupt,
            self.partition,
        )?;
        if let Some(heal) = self.heal_after {
            write!(f, ",heal_after={heal}")?;
        }
        write!(f, ",hold-ms={}", ms(self.reorder_hold))
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability knob is outside `[0, 1]` (or NaN).
    BadProbability {
        /// The knob name.
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `delay_range.0 > delay_range.1`.
    InvertedDelayRange {
        /// Configured lower bound.
        min: Duration,
        /// Configured upper bound.
        max: Duration,
    },
    /// A `--chaos` spec string did not parse.
    BadSpec {
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadProbability { knob, value } => {
                write!(f, "fault probability `{knob}` must be in [0, 1], got {value}")
            }
            FaultPlanError::InvertedDelayRange { min, max } => {
                write!(f, "delay range inverted: {min:?} > {max:?}")
            }
            FaultPlanError::BadSpec { detail } => write!(f, "bad chaos spec: {detail}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The fate of one message, as decided by [`FaultPlan::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Swallowed by a link partition (a blackout, counted separately
    /// from probabilistic drops).
    pub partitioned: bool,
    /// Never delivered.
    pub drop: bool,
    /// Delivered twice.
    pub duplicate: bool,
    /// Held until the next message on the link (or the hold bound).
    pub reorder: bool,
    /// Delivered this much later than it arrived.
    pub delay: Option<Duration>,
    /// One payload byte flipped.
    pub corrupt: bool,
    /// PRF residue driving the corruption position/mask.
    entropy: u64,
}

impl FaultDecision {
    /// `true` when the message passes through untouched.
    pub fn is_clean(&self) -> bool {
        !self.partitioned
            && !self.drop
            && !self.duplicate
            && !self.reorder
            && !self.corrupt
            && self.delay.is_none()
    }
}

/// Counters of the faults a [`ChaosTransport`] actually injected —
/// chaos-induced loss is observable, never silent (the same principle as
/// the hub's undeliverable-drop counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Messages dropped by the plan.
    pub dropped: u64,
    /// Extra copies delivered by the plan.
    pub duplicated: u64,
    /// Messages held back past a successor.
    pub reordered: u64,
    /// Messages delivered late.
    pub delayed: u64,
    /// Messages delivered with a flipped byte.
    pub corrupted: u64,
    /// Messages swallowed by a link partition.
    pub partitioned: u64,
}

impl ChaosStats {
    /// Total fault events injected.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.delayed
            + self.corrupted
            + self.partitioned
    }

    /// Add `other`'s counters into this snapshot (used to aggregate the
    /// per-worker transports of a pool).
    pub fn merge(&mut self, other: &ChaosStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.delayed += other.delayed;
        self.corrupted += other.corrupted;
        self.partitioned += other.partitioned;
    }
}

/// Shared, cloneable fault counters — the live-observability twin of the
/// per-transport [`ChaosStats`] snapshot.
///
/// A [`ChaosTransport`] is owned by its worker thread, so its private
/// `stats()` are only readable at teardown; attach a `ChaosMetrics` (one
/// handle per pool, cloned into every wrapper) and the same counts
/// become visible mid-run to a scrape endpoint. Cloning shares the
/// cells, mirroring [`TrafficMetrics`](crate::TrafficMetrics).
#[derive(Debug, Clone, Default)]
pub struct ChaosMetrics {
    cells: std::sync::Arc<ChaosCells>,
}

#[derive(Debug, Default)]
struct ChaosCells {
    dropped: std::sync::atomic::AtomicU64,
    duplicated: std::sync::atomic::AtomicU64,
    reordered: std::sync::atomic::AtomicU64,
    delayed: std::sync::atomic::AtomicU64,
    corrupted: std::sync::atomic::AtomicU64,
    partitioned: std::sync::atomic::AtomicU64,
}

impl ChaosMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> ChaosMetrics {
        ChaosMetrics::default()
    }

    fn bump(&self, cell: &std::sync::atomic::AtomicU64) {
        cell.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters (relaxed reads; exact once
    /// the run has quiesced).
    pub fn snapshot(&self) -> ChaosStats {
        use std::sync::atomic::Ordering::Relaxed;
        ChaosStats {
            dropped: self.cells.dropped.load(Relaxed),
            duplicated: self.cells.duplicated.load(Relaxed),
            reordered: self.cells.reordered.load(Relaxed),
            delayed: self.cells.delayed.load(Relaxed),
            corrupted: self.cells.corrupted.load(Relaxed),
            partitioned: self.cells.partitioned.load(Relaxed),
        }
    }
}

/// A message parked in the delay stage.
struct Parked {
    deliver_at: Instant,
    seq: u64,
    from: ProviderId,
    payload: Bytes,
}

impl PartialEq for Parked {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Parked {}
impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap reversed: earliest deadline pops first, FIFO on ties.
        other.deliver_at.cmp(&self.deliver_at).then(other.seq.cmp(&self.seq))
    }
}

/// A message held back to violate its link's FIFO order.
struct Held {
    payload: Bytes,
    release_at: Instant,
}

/// A [`Transport`] adapter injecting the faults of a [`FaultPlan`] at
/// the receiving edge of every link.
///
/// Wraps any transport; the protocol layer sees the same interface and
/// cannot tell it is being sabotaged. All faults are applied on
/// *receive* — the `n`-th message received from each peer is the `n`-th
/// message that peer sent (FIFO transports), which is what makes the
/// decisions replayable from the seed.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{ChaosTransport, FaultPlan, LatencyModel, ThreadedHub, Transport};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
/// let mut eps = hub.take_endpoints();
/// let plain = eps.remove(0);
/// // Drop everything arriving at endpoint 1:
/// let mut lossy = ChaosTransport::new(eps.remove(0), FaultPlan::seeded(9).with_drop(1.0));
/// plain.send(lossy.me(), Bytes::from_static(b"doomed"));
/// assert!(lossy.recv_timeout(Duration::from_millis(50)).is_err());
/// assert_eq!(lossy.stats().dropped, 1);
/// ```
pub struct ChaosTransport<T> {
    inner: T,
    plan: FaultPlan,
    salt: u64,
    /// Per-peer receive index: position of the next message in that
    /// directed link's FIFO stream.
    indices: Vec<u64>,
    /// Per-peer held (reorder) message, at most one per link.
    held: Vec<Option<Held>>,
    parked: BinaryHeap<Parked>,
    ready: VecDeque<(ProviderId, Bytes)>,
    seq: u64,
    stats: ChaosStats,
    /// Optional shared counters bumped alongside `stats`, so a pool can
    /// aggregate fault counts across its worker-owned transports live.
    metrics: Option<ChaosMetrics>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner` under `plan` (salt 0 — single-mesh runs).
    pub fn new(inner: T, plan: FaultPlan) -> ChaosTransport<T> {
        ChaosTransport::with_salt(inner, plan, 0)
    }

    /// Wrap `inner` under `plan`, salting the per-link PRF streams —
    /// pass the shard index so independent meshes of one run don't
    /// suffer lock-stepped faults.
    pub fn with_salt(inner: T, plan: FaultPlan, salt: u64) -> ChaosTransport<T> {
        let m = inner.num_providers();
        ChaosTransport {
            inner,
            plan,
            salt,
            indices: vec![0; m],
            held: (0..m).map(|_| None).collect(),
            parked: BinaryHeap::new(),
            ready: VecDeque::new(),
            seq: 0,
            stats: ChaosStats::default(),
            metrics: None,
        }
    }

    /// Attach shared counters: every future fault bump also lands in
    /// `metrics`, making this wrapper's injections visible outside its
    /// owning thread. Builder-style so it chains onto the constructors.
    pub fn with_metrics(mut self, metrics: ChaosMetrics) -> ChaosTransport<T> {
        self.metrics = Some(metrics);
        self
    }

    /// The plan this wrapper is executing.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Unwrap, discarding any in-flight held/parked messages.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn park(&mut self, from: ProviderId, payload: Bytes, deliver_at: Instant) {
        let seq = self.seq;
        self.seq += 1;
        self.parked.push(Parked { deliver_at, seq, from, payload });
    }

    /// Route one freshly received message per its fault decision.
    fn ingest(&mut self, from: ProviderId, payload: Bytes, now: Instant) {
        let slot = from.index();
        let index = self.indices[slot];
        self.indices[slot] = index + 1;
        let decision = self.plan.decide(self.salt, from, self.inner.me(), index);

        if decision.partitioned {
            // A blacked-out link: the message vanishes, counted under
            // its own reason so a partition is distinguishable from
            // probabilistic loss.
            self.stats.partitioned += 1;
            if let Some(m) = &self.metrics {
                m.bump(&m.cells.partitioned);
            }
            return;
        }
        if decision.drop {
            // The held message (if any) keeps waiting for the next
            // *delivered* successor or its hold bound.
            self.stats.dropped += 1;
            if let Some(m) = &self.metrics {
                m.bump(&m.cells.dropped);
            }
            return;
        }
        let payload = if decision.corrupt {
            self.stats.corrupted += 1;
            if let Some(m) = &self.metrics {
                m.bump(&m.cells.corrupted);
            }
            FaultPlan::corrupt_payload(&payload, decision.entropy)
        } else {
            payload
        };
        let copies = if decision.duplicate {
            self.stats.duplicated += 1;
            if let Some(m) = &self.metrics {
                m.bump(&m.cells.duplicated);
            }
            2
        } else {
            1
        };
        // A delivered successor completes the pending swap: it goes out
        // first (its own reorder flag is ignored — swaps don't stack),
        // then the held message right behind it.
        let swap = self.held[slot].take();
        // Where the successor itself lands; the released held message
        // must follow it there, or a delayed successor would quietly
        // restore the original order and undo the swap.
        let mut successor_at = now;
        for _ in 0..copies {
            if swap.is_none() && decision.reorder && self.held[slot].is_none() {
                self.stats.reordered += 1;
                if let Some(m) = &self.metrics {
                    m.bump(&m.cells.reordered);
                }
                self.held[slot] = Some(Held {
                    payload: payload.clone(),
                    release_at: now + self.plan.reorder_hold,
                });
            } else if let Some(extra) = decision.delay {
                self.stats.delayed += 1;
                if let Some(m) = &self.metrics {
                    m.bump(&m.cells.delayed);
                }
                successor_at = now + extra;
                self.park(from, payload.clone(), successor_at);
            } else {
                self.ready.push_back((from, payload.clone()));
            }
        }
        if let Some(held) = swap {
            if successor_at > now {
                // Same due instant as the successor: the heap's FIFO
                // tie-break (enqueue seq) keeps the held copy behind it.
                self.park(from, held.payload, successor_at);
            } else {
                self.ready.push_back((from, held.payload));
            }
        }
    }

    /// Move everything whose time has come into the ready queue.
    fn promote_due(&mut self, now: Instant) {
        while self.parked.peek().is_some_and(|p| p.deliver_at <= now) {
            let p = self.parked.pop().expect("peeked");
            self.ready.push_back((p.from, p.payload));
        }
        for slot in 0..self.held.len() {
            if self.held[slot].as_ref().is_some_and(|h| h.release_at <= now) {
                let held = self.held[slot].take().expect("checked");
                self.ready.push_back((ProviderId(slot as u32), held.payload));
            }
        }
    }

    /// The earliest instant a parked or held message becomes due.
    fn next_due(&self) -> Option<Instant> {
        let parked = self.parked.peek().map(|p| p.deliver_at);
        let held = self.held.iter().flatten().map(|h| h.release_at).min();
        match (parked, held) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn me(&self) -> ProviderId {
        self.inner.me()
    }

    fn num_providers(&self) -> usize {
        self.inner.num_providers()
    }

    fn send(&mut self, to: ProviderId, payload: Bytes) {
        // All faults are applied at the receiving edge (see type docs);
        // sends pass straight through.
        self.inner.send(to, payload);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        // The benign plan never parks or holds anything: the honest
        // fast path is a direct forward, costing one branch.
        if self.plan.is_benign() {
            return self.inner.recv_timeout(timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            self.promote_due(now);
            if let Some(msg) = self.ready.pop_front() {
                return Ok(msg);
            }
            // Wait on the inner transport, but never past an internal
            // deadline (a parked/held message coming due) or the
            // caller's.
            let wake = match self.next_due() {
                Some(due) => due.min(deadline),
                None => deadline,
            };
            let wait = wake.saturating_duration_since(now);
            match self.inner.recv_timeout(wait) {
                Ok((from, payload)) => self.ingest(from, payload, Instant::now()),
                Err(RecvError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(RecvError::Timeout);
                    }
                    // An internal deadline fired: loop to promote it.
                }
                Err(RecvError::Disconnected) => {
                    // Drain what chaos still holds before giving up.
                    if self.ready.is_empty()
                        && self.parked.is_empty()
                        && self.held.iter().all(Option::is_none)
                    {
                        return Err(RecvError::Disconnected);
                    }
                    match self.next_due() {
                        Some(due) if due > deadline => return Err(RecvError::Timeout),
                        Some(due) => {
                            std::thread::sleep(due.saturating_duration_since(Instant::now()));
                        }
                        None => {} // ready has items; next loop pops one
                    }
                }
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ChaosTransport<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .field("salt", &self.salt)
            .field("stats", &self.stats)
            .finish()
    }
}

/// SplitMix64: the one-shot mixer every fault decision derives from.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent 64-bit stream per (link, message index, decision lane).
fn prf(link: u64, index: u64, lane: u64) -> u64 {
    splitmix64(link ^ splitmix64(index.wrapping_mul(0xA24B_AED4_963E_E407) ^ splitmix64(lane)))
}

/// Map a PRF draw onto `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::ThreadedHub;
    use crate::latency::LatencyModel;

    fn pair() -> (crate::hub::Endpoint, crate::hub::Endpoint) {
        // Endpoints own their channels; the zero-latency hub has no
        // delayer thread, so it can be dropped immediately.
        let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
        let mut eps = hub.take_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        (a, b)
    }

    #[test]
    fn benign_plan_is_transparent() {
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, FaultPlan::none());
        for i in 0..10u8 {
            a.send(ProviderId(1), Bytes::copy_from_slice(&[i]));
        }
        for i in 0..10u8 {
            let (from, payload) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(from, ProviderId(0));
            assert_eq!(payload[0], i, "benign chaos must preserve FIFO");
        }
        assert_eq!(chaos.stats(), ChaosStats::default());
    }

    #[test]
    fn full_drop_loses_everything_and_counts() {
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, FaultPlan::seeded(3).with_drop(1.0));
        for _ in 0..5 {
            a.send(ProviderId(1), Bytes::from_static(b"x"));
        }
        assert_eq!(chaos.recv_timeout(Duration::from_millis(40)), Err(RecvError::Timeout));
        assert_eq!(chaos.stats().dropped, 5);
    }

    #[test]
    fn full_duplicate_doubles_every_message() {
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, FaultPlan::seeded(3).with_duplicate(1.0));
        a.send(ProviderId(1), Bytes::from_static(b"m"));
        let first = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        let second = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first, second);
        assert_eq!(chaos.stats().duplicated, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, FaultPlan::seeded(5).with_corrupt(1.0));
        let original = Bytes::from_static(b"payload-bytes");
        a.send(ProviderId(1), original.clone());
        let (_, payload) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(payload.len(), original.len());
        let diff = payload.iter().zip(original.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "exactly one byte flipped");
    }

    #[test]
    fn reorder_swaps_with_successor() {
        let (a, b) = pair();
        // Reorder every message: msg0 held, released after msg1, which
        // is itself held and released after msg2, and so on — the swap
        // cascades but nothing is lost.
        let mut chaos = ChaosTransport::new(b, FaultPlan::seeded(11).with_reorder(1.0));
        for i in 0..4u8 {
            a.send(ProviderId(1), Bytes::copy_from_slice(&[i]));
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            let (_, payload) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
            got.push(payload[0]);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "reorder must not lose messages");
        assert_ne!(got, vec![0, 1, 2, 3], "order must actually change");
        assert!(chaos.stats().reordered > 0);
    }

    #[test]
    fn reorder_survives_a_delayed_successor() {
        // Find a seed whose link stream says: message 0 is reordered,
        // message 1 is delayed. The swap must still manifest — the held
        // message 0 follows the delayed message 1, not jump back ahead.
        let plan_for = |seed| {
            FaultPlan::seeded(seed).with_reorder(0.5).with_delay(
                1.0,
                Duration::from_millis(10),
                Duration::from_millis(15),
            )
        };
        let seed = (0..)
            .find(|&s| {
                let p = plan_for(s);
                let d0 = p.decide(0, ProviderId(0), ProviderId(1), 0);
                let d1 = p.decide(0, ProviderId(0), ProviderId(1), 1);
                d0.reorder && !d0.duplicate && d1.delay.is_some() && !d1.duplicate && !d1.drop
            })
            .unwrap();
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, plan_for(seed));
        a.send(ProviderId(1), Bytes::from_static(b"first"));
        a.send(ProviderId(1), Bytes::from_static(b"second"));
        let (_, x) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        let (_, y) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&x[..], b"second", "the delayed successor still goes first");
        assert_eq!(&y[..], b"first", "the held message stays swapped behind it");
    }

    #[test]
    fn reorder_hold_releases_a_final_message() {
        let (a, b) = pair();
        let mut plan = FaultPlan::seeded(11).with_reorder(1.0);
        plan.reorder_hold = Duration::from_millis(20);
        let mut chaos = ChaosTransport::new(b, plan);
        a.send(ProviderId(1), Bytes::from_static(b"last"));
        // No successor ever arrives: the hold bound must release it.
        let (_, payload) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&payload[..], b"last");
    }

    #[test]
    fn delay_defers_but_delivers() {
        let (a, b) = pair();
        let plan = FaultPlan::seeded(7).with_delay(
            1.0,
            Duration::from_millis(15),
            Duration::from_millis(25),
        );
        let mut chaos = ChaosTransport::new(b, plan);
        let start = Instant::now();
        a.send(ProviderId(1), Bytes::from_static(b"slow"));
        let (_, payload) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&payload[..], b"slow");
        assert!(start.elapsed() >= Duration::from_millis(12), "{:?}", start.elapsed());
        assert_eq!(chaos.stats().delayed, 1);
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let plan = FaultPlan::seeded(42)
            .with_drop(0.3)
            .with_duplicate(0.2)
            .with_reorder(0.2)
            .with_delay(0.2, Duration::from_millis(1), Duration::from_millis(5))
            .with_corrupt(0.1);
        for index in 0..200 {
            let a = plan.decide(3, ProviderId(0), ProviderId(1), index);
            let b = plan.decide(3, ProviderId(0), ProviderId(1), index);
            assert_eq!(a, b, "same inputs, same decision");
        }
        // Different links and salts see different fault streams.
        let traces = |salt, from: u32, to: u32| -> Vec<bool> {
            (0..200).map(|i| plan.decide(salt, ProviderId(from), ProviderId(to), i).drop).collect()
        };
        assert_ne!(traces(0, 0, 1), traces(0, 1, 0), "directed links are independent");
        assert_ne!(traces(0, 0, 1), traces(1, 0, 1), "salts decorrelate shards");
    }

    #[test]
    fn spec_string_round_trips() {
        let plan: FaultPlan =
            "seed=9,drop=0.25,dup=0.1,reorder=0.05,delay=0.5,delay-ms=2..8,corrupt=0.01,hold-ms=30"
                .parse()
                .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.drop, 0.25);
        assert_eq!(plan.delay_range, (Duration::from_millis(2), Duration::from_millis(8)));
        assert_eq!(plan.reorder_hold, Duration::from_millis(30));
        let round: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, round);
    }

    #[test]
    fn sub_millisecond_bounds_survive_the_spec_round_trip() {
        let plan = FaultPlan::seeded(4).with_delay(
            0.5,
            Duration::from_micros(500),
            Duration::from_micros(2_250),
        );
        let spec = plan.to_string();
        assert!(spec.contains("delay-ms=0.5..2.25"), "{spec}");
        let round: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan, round, "replaying the printed spec must reproduce the plan exactly");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!("drop=1.5".parse::<FaultPlan>().is_err(), "probability out of range");
        assert!("nope=1".parse::<FaultPlan>().is_err(), "unknown knob");
        assert!("drop".parse::<FaultPlan>().is_err(), "missing value");
        assert!("delay-ms=9..2,delay=0.1".parse::<FaultPlan>().is_err(), "inverted range");
    }

    #[test]
    fn validate_names_the_bad_knob() {
        let err = FaultPlan::seeded(1).with_drop(2.0).validate().unwrap_err();
        assert!(err.to_string().contains("drop"));
        assert!(FaultPlan::seeded(1).with_drop(f64::NAN).validate().is_err());
    }

    #[test]
    fn benign_detection() {
        assert!(FaultPlan::none().is_benign());
        assert!(!FaultPlan::none().with_drop(0.01).is_benign());
        assert!(!FaultPlan::none().with_partition(0.01, None).is_benign());
    }

    #[test]
    fn partition_spec_round_trips() {
        let plan: FaultPlan = "seed=3,partition=0.4,heal_after=25".parse().unwrap();
        assert_eq!(plan.partition, 0.4);
        assert_eq!(plan.heal_after, Some(25));
        let round: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, round);
        // Without heal_after the key must not be printed at all, and the
        // spec still round-trips.
        let forever: FaultPlan = "partition=1".parse().unwrap();
        assert!(!forever.to_string().contains("heal_after"));
        let round: FaultPlan = forever.to_string().parse().unwrap();
        assert_eq!(forever, round);
        assert!("partition=1.5".parse::<FaultPlan>().is_err(), "probability out of range");
        assert!("heal_after=-1".parse::<FaultPlan>().is_err(), "negative heal index");
    }

    #[test]
    fn partition_is_per_link_and_heals_at_the_configured_index() {
        let plan = FaultPlan::seeded(13).with_partition(0.5, Some(10));
        // Find one blacked-out link and one clear link: the decision is
        // a property of the link, so every message before the heal index
        // agrees with message 0.
        let linked = |from: u32, to: u32| plan.decide(0, ProviderId(from), ProviderId(to), 0);
        let dead = (0..64u32)
            .flat_map(|a| (0..64u32).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .find(|&(a, b)| linked(a, b).partitioned)
            .expect("some link is partitioned at p=0.5");
        let alive = (0..64u32)
            .flat_map(|a| (0..64u32).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .find(|&(a, b)| !linked(a, b).partitioned)
            .expect("some link is clear at p=0.5");
        for index in 0..10 {
            let d = plan.decide(0, ProviderId(dead.0), ProviderId(dead.1), index);
            assert!(d.partitioned, "dead link swallows message {index}");
            assert!(!d.is_clean() && !d.drop && !d.corrupt, "partition suppresses lanes");
            assert!(!plan.decide(0, ProviderId(alive.0), ProviderId(alive.1), index).partitioned);
        }
        for index in 10..20 {
            let d = plan.decide(0, ProviderId(dead.0), ProviderId(dead.1), index);
            assert!(!d.partitioned, "link heals at heal_after: message {index} passes");
        }
        // An unhealing partition stays black forever.
        let forever = FaultPlan::seeded(13).with_partition(0.5, None);
        for index in 0..100 {
            assert!(
                forever.decide(0, ProviderId(dead.0), ProviderId(dead.1), index).partitioned,
                "unhealed partition swallows message {index}"
            );
        }
    }

    #[test]
    fn partitioned_link_counts_and_delivers_nothing() {
        let (a, b) = pair();
        let mut chaos = ChaosTransport::new(b, FaultPlan::seeded(3).with_partition(1.0, Some(3)));
        for i in 0..5u8 {
            a.send(ProviderId(1), Bytes::copy_from_slice(&[i]));
        }
        // Messages 0..3 are swallowed by the blackout; 3 and 4 arrive
        // after the heal, in order.
        let (_, first) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        let (_, second) = chaos.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first[0], 3, "first post-heal message");
        assert_eq!(second[0], 4);
        assert_eq!(chaos.stats().partitioned, 3);
        assert_eq!(chaos.stats().dropped, 0, "partition is not a drop");
    }
}
