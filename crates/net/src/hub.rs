//! The threaded transport: one endpoint per provider, crossbeam channels,
//! and an optional delay stage injecting modelled link latency.
//!
//! Topology is a full mesh, as in the paper's deployment: every provider
//! can message every other provider directly. When the latency model is
//! non-zero, sends are routed through a dedicated *delayer* thread that
//! holds each message until its sampled delivery time — the sender never
//! blocks, mirroring asynchronous sends in the ØMQ prototype.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dauctioneer_types::ProviderId;

use crate::latency::LatencyModel;
use crate::metrics::TrafficMetrics;

/// Error returned by [`Endpoint::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All senders are gone; no message can ever arrive.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Disconnected => write!(f, "all peers disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A message in flight through the delay stage.
struct Delayed {
    deliver_at: Instant,
    seq: u64,
    from: ProviderId,
    to: ProviderId,
    payload: Bytes,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest deadline pops
        // first, with the enqueue sequence breaking ties (FIFO per link).
        other.deliver_at.cmp(&self.deliver_at).then(other.seq.cmp(&self.seq))
    }
}

/// One provider's handle onto the mesh.
#[derive(Debug)]
pub struct Endpoint {
    me: ProviderId,
    m: usize,
    /// Direct channels into each peer's inbox (fast path, Zero latency).
    direct: Vec<Sender<(ProviderId, Bytes)>>,
    /// Channel into the delayer thread (latency path), if any.
    delayer: Option<Sender<(ProviderId, ProviderId, Bytes)>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    metrics: TrafficMetrics,
}

impl Endpoint {
    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// Send `payload` to `to`. Never blocks; messages to departed peers
    /// cannot be delivered — they are **counted** as drops in the hub's
    /// [`TrafficMetrics`] (never silently discarded), so late-session
    /// and chaos-induced loss is observable in every
    /// [`crate::TrafficSnapshot`].
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        self.metrics.record_send(self.me, payload.len());
        match &self.delayer {
            Some(d) => {
                let len = payload.len();
                if d.send((self.me, to, payload)).is_err() {
                    self.metrics.record_drop(self.me, len);
                }
            }
            None => match self.direct.get(to.index()) {
                Some(ch) => {
                    let len = payload.len();
                    if ch.send((self.me, payload)).is_err() {
                        self.metrics.record_drop(self.me, len);
                    }
                }
                None => self.metrics.record_drop(self.me, payload.len()),
            },
        }
    }

    /// Send `payload` to every other provider.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] if every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

/// A full mesh of `m` providers over crossbeam channels.
///
/// Construct, [`ThreadedHub::take_endpoints`], and hand one endpoint to
/// each provider thread. The hub owns the delayer thread (when latency is
/// modelled); dropping the hub after all endpoints are dropped shuts the
/// delayer down.
#[derive(Debug)]
pub struct ThreadedHub {
    endpoints: Vec<Endpoint>,
    metrics: TrafficMetrics,
    delayer_handle: Option<std::thread::JoinHandle<()>>,
}

impl ThreadedHub {
    /// Build a mesh of `m` providers with the given latency model. The
    /// `seed` drives latency sampling (reproducible jitter).
    pub fn new(m: usize, latency: LatencyModel, seed: u64) -> ThreadedHub {
        let metrics = TrafficMetrics::new(m);
        let mut inboxes_tx: Vec<Sender<(ProviderId, Bytes)>> = Vec::with_capacity(m);
        let mut inboxes_rx: Vec<Receiver<(ProviderId, Bytes)>> = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded();
            inboxes_tx.push(tx);
            inboxes_rx.push(rx);
        }

        let (delayer_tx, delayer_handle) = if latency.is_zero() {
            (None, None)
        } else {
            let (tx, rx) = bounded::<(ProviderId, ProviderId, Bytes)>(64 * 1024);
            let outs = inboxes_tx.clone();
            let delayer_metrics = metrics.clone();
            let handle = std::thread::Builder::new()
                .name("dauctioneer-delayer".into())
                .spawn(move || run_delayer(rx, outs, latency, seed, delayer_metrics))
                .expect("spawn delayer thread");
            (Some(tx), Some(handle))
        };
        // The in-process transport needs no I/O threads beyond the
        // optional delayer; the gauge makes that a queryable fact next
        // to the socket backends' reactor count.
        metrics.set_io_threads(u64::from(delayer_handle.is_some()));

        let endpoints = inboxes_rx
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| Endpoint {
                me: ProviderId(i as u32),
                m,
                direct: inboxes_tx.clone(),
                delayer: delayer_tx.clone(),
                inbox,
                metrics: metrics.clone(),
            })
            .collect();

        ThreadedHub { endpoints, metrics, delayer_handle }
    }

    /// Take ownership of the endpoints (one per provider, in id order).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<Endpoint> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The hub's shared traffic counters.
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }
}

impl Drop for ThreadedHub {
    fn drop(&mut self) {
        // Release our references so the delayer's input disconnects once
        // the endpoints are gone, then wait for it to finish draining.
        self.endpoints.clear();
        if let Some(handle) = self.delayer_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Delay-stage event loop: hold each message until its sampled delivery
/// time, then forward it to the destination inbox.
///
/// The loop never busy-polls: with nothing in flight it blocks on the
/// input channel, and with messages in flight it sleeps exactly until the
/// next heap deadline — including after the input disconnects, so final
/// deliveries and shutdown happen as soon as the last deadline passes.
fn run_delayer(
    input: Receiver<(ProviderId, ProviderId, Bytes)>,
    outs: Vec<Sender<(ProviderId, Bytes)>>,
    latency: LatencyModel,
    seed: u64,
    metrics: TrafficMetrics,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut input_open = true;
    loop {
        // Deliver everything due; undeliverable messages (destination
        // inbox gone or out of range) are counted, never silent.
        let now = Instant::now();
        while heap.peek().is_some_and(|d| d.deliver_at <= now) {
            let d = heap.pop().unwrap();
            match outs.get(d.to.index()) {
                Some(out) => {
                    let len = d.payload.len();
                    if out.send((d.from, d.payload)).is_err() {
                        metrics.record_drop(d.from, len);
                    }
                }
                None => metrics.record_drop(d.from, d.payload.len()),
            }
        }
        fn enqueue(
            heap: &mut BinaryHeap<Delayed>,
            seq: &mut u64,
            rng: &mut StdRng,
            latency: &LatencyModel,
            (from, to, payload): (ProviderId, ProviderId, Bytes),
        ) {
            let delay = latency.sample(rng);
            heap.push(Delayed { deliver_at: Instant::now() + delay, seq: *seq, from, to, payload });
            *seq += 1;
        }
        let next_deadline =
            heap.peek().map(|d| d.deliver_at.saturating_duration_since(Instant::now()));
        match next_deadline {
            None if !input_open => return, // drained and no more input: done
            None => {
                // Nothing in flight: block until input arrives or closes.
                match input.recv() {
                    Ok(msg) => enqueue(&mut heap, &mut seq, &mut rng, &latency, msg),
                    Err(_) => input_open = false,
                }
            }
            Some(wait) => {
                // Sleep exactly until the next deadline (or new input).
                if !input_open {
                    std::thread::sleep(wait);
                    continue;
                }
                match input.recv_timeout(wait) {
                    Ok(msg) => enqueue(&mut heap, &mut seq, &mut rng, &latency, msg),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => input_open = false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_delivery_zero_latency() {
        let mut hub = ThreadedHub::new(3, LatencyModel::Zero, 1);
        let eps = hub.take_endpoints();
        eps[0].send(ProviderId(2), Bytes::from_static(b"m"));
        let (from, payload) = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, ProviderId(0));
        assert_eq!(&payload[..], b"m");
    }

    #[test]
    fn broadcast_reaches_all_peers_but_not_self() {
        let mut hub = ThreadedHub::new(3, LatencyModel::Zero, 1);
        let eps = hub.take_endpoints();
        eps[1].broadcast(&Bytes::from_static(b"b"));
        assert!(eps[0].recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(eps[2].recv_timeout(Duration::from_secs(1)).is_ok());
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn latency_delays_delivery() {
        let mut hub = ThreadedHub::new(2, LatencyModel::ConstantMicros(30_000), 7);
        let eps = hub.take_endpoints();
        let start = Instant::now();
        eps[0].send(ProviderId(1), Bytes::from_static(b"slow"));
        let got = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(&got.1[..], b"slow");
        assert!(elapsed >= Duration::from_millis(25), "delivered too early: {elapsed:?}");
    }

    #[test]
    fn fifo_per_link_with_constant_latency() {
        let mut hub = ThreadedHub::new(2, LatencyModel::ConstantMicros(5_000), 7);
        let eps = hub.take_endpoints();
        for i in 0..10u8 {
            eps[0].send(ProviderId(1), Bytes::copy_from_slice(&[i]));
        }
        for i in 0..10u8 {
            let (_, payload) = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(payload[0], i, "out-of-order delivery");
        }
    }

    #[test]
    fn recv_timeout_expires() {
        let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
        let eps = hub.take_endpoints();
        let err = eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
    }

    #[test]
    fn peers_excludes_self() {
        let mut hub = ThreadedHub::new(3, LatencyModel::Zero, 1);
        let eps = hub.take_endpoints();
        let peers: Vec<_> = eps[1].peers().collect();
        assert_eq!(peers, vec![ProviderId(0), ProviderId(2)]);
        assert_eq!(eps[1].num_providers(), 3);
    }

    #[test]
    fn metrics_count_traffic() {
        let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
        let metrics = hub.metrics();
        let eps = hub.take_endpoints();
        eps[0].send(ProviderId(1), Bytes::from_static(b"12345"));
        eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.per_provider[0].sent_bytes, 5);
        assert_eq!(snap.per_provider[1].received_bytes, 5);
    }

    #[test]
    fn undeliverable_messages_are_counted_not_silent() {
        let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
        let metrics = hub.metrics();
        let mut eps = hub.take_endpoints();
        let survivor = eps.remove(0);
        drop(eps); // endpoint 1 departs; its inbox receiver is gone
        survivor.send(ProviderId(1), Bytes::from_static(b"ghost"));
        // Out-of-range destinations are undeliverable too.
        survivor.send(ProviderId(7), Bytes::from_static(b"void!"));
        let snap = metrics.snapshot();
        assert_eq!(snap.per_provider[0].dropped_messages, 2);
        assert_eq!(snap.per_provider[0].dropped_bytes, 10);
        assert_eq!(snap.total_dropped(), 2);
        // Sends are still counted as sends — the drop counter is additive
        // observability, not a reclassification.
        assert_eq!(snap.per_provider[0].sent_messages, 2);
    }

    #[test]
    fn delayer_counts_drops_to_departed_peers() {
        let mut hub = ThreadedHub::new(2, LatencyModel::ConstantMicros(2_000), 5);
        let metrics = hub.metrics();
        let mut eps = hub.take_endpoints();
        let survivor = eps.remove(0);
        drop(eps); // peer 1 departs before the delayed delivery lands
        survivor.send(ProviderId(1), Bytes::from_static(b"late"));
        drop(survivor);
        drop(hub); // joins the delayer: the drop is recorded by now
        let snap = metrics.snapshot();
        assert_eq!(snap.per_provider[0].dropped_messages, 1);
        assert_eq!(snap.per_provider[0].dropped_bytes, 4);
    }

    #[test]
    fn hub_shuts_down_cleanly_with_latency_thread() {
        let mut hub = ThreadedHub::new(2, LatencyModel::ConstantMicros(1_000), 9);
        let eps = hub.take_endpoints();
        eps[0].send(ProviderId(1), Bytes::from_static(b"x"));
        drop(eps);
        drop(hub); // must not hang
    }

    #[test]
    fn delayer_shutdown_is_prompt_after_disconnect() {
        let mut hub = ThreadedHub::new(2, LatencyModel::ConstantMicros(2_000), 11);
        let eps = hub.take_endpoints();
        eps[0].send(ProviderId(1), Bytes::from_static(b"late"));
        drop(eps); // disconnects the delayer input with one delivery queued
        let start = Instant::now();
        drop(hub); // joins the delayer: must wait only the 2 ms deadline
                   // Bound chosen against the legacy 50 ms fallback poll: generous
                   // for the 2 ms deadline, but a poll tick would still blow it.
        assert!(
            start.elapsed() < Duration::from_millis(48),
            "delayer lingered after disconnect: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn threads_can_exchange_concurrently() {
        let mut hub =
            ThreadedHub::new(4, LatencyModel::UniformMicros { min_micros: 10, max_micros: 500 }, 3);
        let eps = hub.take_endpoints();
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    ep.broadcast(&Bytes::from_static(b"ping"));
                    let mut got = 0;
                    while got < 3 {
                        if ep.recv_timeout(Duration::from_secs(5)).is_ok() {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
    }
}
