//! Traffic accounting for the benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dauctioneer_types::ProviderId;

/// Atomic per-provider counters, shared by all endpoints of a hub.
#[derive(Debug, Default)]
pub struct ProviderTraffic {
    sent_messages: AtomicU64,
    sent_bytes: AtomicU64,
    received_messages: AtomicU64,
    received_bytes: AtomicU64,
    dropped_messages: AtomicU64,
    dropped_bytes: AtomicU64,
}

impl ProviderTraffic {
    fn record_send(&self, bytes: usize) {
        self.sent_messages.fetch_add(1, Ordering::Relaxed);
        self.sent_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_recv(&self, bytes: usize) {
        self.received_messages.fetch_add(1, Ordering::Relaxed);
        self.received_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_drop(&self, bytes: usize) {
        self.dropped_messages.fetch_add(1, Ordering::Relaxed);
        self.dropped_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// Shared traffic metrics for one hub.
///
/// Cloning shares the same underlying counters.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{ThreadedHub, LatencyModel};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 1);
/// let metrics = hub.metrics();
/// let mut eps = hub.take_endpoints();
/// let e1 = eps.remove(1);
/// let e0 = eps.remove(0);
/// e0.send(e1.me(), Bytes::from_static(b"xyz"));
/// e1.recv_timeout(Duration::from_secs(1)).unwrap();
/// let snap = metrics.snapshot();
/// assert_eq!(snap.total_messages(), 1);
/// assert_eq!(snap.total_bytes(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficMetrics {
    providers: Arc<Vec<ProviderTraffic>>,
    io_threads: Arc<AtomicU64>,
}

impl TrafficMetrics {
    /// Fresh counters for `m` providers.
    pub fn new(m: usize) -> TrafficMetrics {
        TrafficMetrics {
            providers: Arc::new((0..m).map(|_| ProviderTraffic::default()).collect()),
            io_threads: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Set the number of OS threads this transport dedicates to I/O
    /// (reactor threads for the socket backends, delayer threads for the
    /// in-process hub). A gauge, not a counter: the transport stores its
    /// roster size once at spawn so the O(1)-I/O-threads property is a
    /// queryable runtime fact rather than a doc claim.
    pub fn set_io_threads(&self, n: u64) {
        self.io_threads.store(n, Ordering::Relaxed);
    }

    /// Current value of the I/O-thread gauge.
    pub fn io_threads(&self) -> u64 {
        self.io_threads.load(Ordering::Relaxed)
    }

    /// Record a send by `from` of `bytes` payload bytes.
    pub fn record_send(&self, from: ProviderId, bytes: usize) {
        if let Some(t) = self.providers.get(from.index()) {
            t.record_send(bytes);
        }
    }

    /// Record a receive by `to` of `bytes` payload bytes.
    pub fn record_recv(&self, to: ProviderId, bytes: usize) {
        if let Some(t) = self.providers.get(to.index()) {
            t.record_recv(bytes);
        }
    }

    /// Record a message from `from` that could not be delivered (the
    /// destination's inbox is gone or out of range). Undeliverable
    /// traffic is *counted*, never silently discarded — chaos-induced
    /// loss must be observable.
    pub fn record_drop(&self, from: ProviderId, bytes: usize) {
        if let Some(t) = self.providers.get(from.index()) {
            t.record_drop(bytes);
        }
    }

    /// Capture a consistent-enough snapshot (relaxed reads; exact once the
    /// run has quiesced).
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            io_threads: self.io_threads.load(Ordering::Relaxed),
            per_provider: self
                .providers
                .iter()
                .map(|t| ProviderSnapshot {
                    sent_messages: t.sent_messages.load(Ordering::Relaxed),
                    sent_bytes: t.sent_bytes.load(Ordering::Relaxed),
                    received_messages: t.received_messages.load(Ordering::Relaxed),
                    received_bytes: t.received_bytes.load(Ordering::Relaxed),
                    dropped_messages: t.dropped_messages.load(Ordering::Relaxed),
                    dropped_bytes: t.dropped_bytes.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one provider's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProviderSnapshot {
    /// Messages sent.
    pub sent_messages: u64,
    /// Payload bytes sent.
    pub sent_bytes: u64,
    /// Messages received.
    pub received_messages: u64,
    /// Payload bytes received.
    pub received_bytes: u64,
    /// Messages this provider sent that could not be delivered (the
    /// destination inbox was gone or out of range).
    pub dropped_messages: u64,
    /// Payload bytes of those undeliverable messages.
    pub dropped_bytes: u64,
}

/// Point-in-time copy of a hub's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Counters by provider index.
    pub per_provider: Vec<ProviderSnapshot>,
    /// OS threads the transport dedicates to I/O (see
    /// [`TrafficMetrics::set_io_threads`]). Summed by [`merge`], so an
    /// aggregate over independent meshes reports the total roster.
    ///
    /// [`merge`]: TrafficSnapshot::merge
    pub io_threads: u64,
}

impl TrafficSnapshot {
    /// Add `other`'s counters into this snapshot, provider by provider
    /// (used to aggregate across the independent meshes of a sharded or
    /// multi-transport run).
    pub fn merge(&mut self, other: &TrafficSnapshot) {
        if self.per_provider.len() < other.per_provider.len() {
            self.per_provider.resize(other.per_provider.len(), ProviderSnapshot::default());
        }
        for (mine, theirs) in self.per_provider.iter_mut().zip(&other.per_provider) {
            mine.sent_messages += theirs.sent_messages;
            mine.sent_bytes += theirs.sent_bytes;
            mine.received_messages += theirs.received_messages;
            mine.received_bytes += theirs.received_bytes;
            mine.dropped_messages += theirs.dropped_messages;
            mine.dropped_bytes += theirs.dropped_bytes;
        }
        self.io_threads += other.io_threads;
    }

    /// Total messages sent across all providers.
    pub fn total_messages(&self) -> u64 {
        self.per_provider.iter().map(|p| p.sent_messages).sum()
    }

    /// Total payload bytes sent across all providers.
    pub fn total_bytes(&self) -> u64 {
        self.per_provider.iter().map(|p| p.sent_bytes).sum()
    }

    /// Total undeliverable messages across all providers.
    pub fn total_dropped(&self) -> u64 {
        self.per_provider.iter().map(|p| p.dropped_messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = TrafficMetrics::new(2);
        m.record_send(ProviderId(0), 10);
        m.record_send(ProviderId(0), 5);
        m.record_recv(ProviderId(1), 15);
        let snap = m.snapshot();
        assert_eq!(snap.per_provider[0].sent_messages, 2);
        assert_eq!(snap.per_provider[0].sent_bytes, 15);
        assert_eq!(snap.per_provider[1].received_messages, 1);
        assert_eq!(snap.per_provider[1].received_bytes, 15);
        assert_eq!(snap.total_messages(), 2);
        assert_eq!(snap.total_bytes(), 15);
    }

    #[test]
    fn drops_accumulate_and_merge() {
        let m = TrafficMetrics::new(2);
        m.record_drop(ProviderId(0), 7);
        m.record_drop(ProviderId(1), 3);
        let mut snap = m.snapshot();
        assert_eq!(snap.per_provider[0].dropped_messages, 1);
        assert_eq!(snap.per_provider[0].dropped_bytes, 7);
        assert_eq!(snap.total_dropped(), 2);
        let other = m.snapshot();
        snap.merge(&other);
        assert_eq!(snap.total_dropped(), 4);
        assert_eq!(snap.per_provider[1].dropped_bytes, 6);
    }

    #[test]
    fn out_of_range_ids_are_ignored() {
        let m = TrafficMetrics::new(1);
        m.record_send(ProviderId(5), 10);
        assert_eq!(m.snapshot().total_messages(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let m = TrafficMetrics::new(1);
        let c = m.clone();
        m.record_send(ProviderId(0), 1);
        assert_eq!(c.snapshot().total_messages(), 1);
    }

    #[test]
    fn io_thread_gauge_stores_and_merges() {
        let a = TrafficMetrics::new(1);
        assert_eq!(a.io_threads(), 0);
        a.set_io_threads(1);
        a.set_io_threads(1); // gauge: stores, never accumulates
        assert_eq!(a.io_threads(), 1);
        assert_eq!(a.clone().snapshot().io_threads, 1);
        let b = TrafficMetrics::new(1);
        b.set_io_threads(2);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.io_threads, 3);
    }
}
