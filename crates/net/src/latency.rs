//! Per-link latency models.
//!
//! The paper's testbed spans community-network nodes in Barcelona and
//! Taradell — wide-area links with a few milliseconds of latency. The
//! threaded transport injects delays drawn from a [`LatencyModel`] so that
//! the benchmark reproduces the paper's communication-dominated regime
//! (Fig. 4) on a single host; the model is the documented substitution for
//! the physical testbed (DESIGN.md §4).

use std::time::Duration;

use rand::Rng;

/// How long a message takes from sender to receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyModel {
    /// Immediate delivery (pure-computation benchmarks, unit tests).
    #[default]
    Zero,
    /// Every message takes exactly this many microseconds.
    ConstantMicros(u64),
    /// Uniformly distributed in `[min_micros, max_micros]`.
    UniformMicros {
        /// Lower bound, inclusive.
        min_micros: u64,
        /// Upper bound, inclusive.
        max_micros: u64,
    },
    /// Preset calibrated to intra-community-network RTTs observed between
    /// Guifi nodes (Barcelona ↔ Taradell): one-way delay uniform in
    /// 1.5–6 ms.
    CommunityNet,
}

impl LatencyModel {
    /// Draw one delivery delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::ConstantMicros(us) => Duration::from_micros(*us),
            LatencyModel::UniformMicros { min_micros, max_micros } => {
                debug_assert!(min_micros <= max_micros);
                Duration::from_micros(rng.gen_range(*min_micros..=*max_micros))
            }
            LatencyModel::CommunityNet => Duration::from_micros(rng.gen_range(1_500..=6_000)),
        }
    }

    /// `true` when the model never delays (lets transports take a fast
    /// path that skips the delay queue entirely).
    pub fn is_zero(&self) -> bool {
        matches!(self, LatencyModel::Zero) || matches!(self, LatencyModel::ConstantMicros(0))
    }

    /// The maximum possible delay, for sizing timeouts.
    pub fn max_delay(&self) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::ConstantMicros(us) => Duration::from_micros(*us),
            LatencyModel::UniformMicros { max_micros, .. } => Duration::from_micros(*max_micros),
            LatencyModel::CommunityNet => Duration::from_micros(6_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_never_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), Duration::ZERO);
        assert!(LatencyModel::Zero.is_zero());
        assert!(LatencyModel::ConstantMicros(0).is_zero());
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::ConstantMicros(250);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_micros(250));
        }
        assert!(!m.is_zero());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::UniformMicros { min_micros: 100, max_micros: 200 };
        for _ in 0..100 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(200));
        }
        assert_eq!(m.max_delay(), Duration::from_micros(200));
    }

    #[test]
    fn community_net_is_milliseconds_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = LatencyModel::CommunityNet.sample(&mut rng);
            assert!(d >= Duration::from_micros(1_500) && d <= Duration::from_micros(6_000));
        }
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(LatencyModel::default(), LatencyModel::Zero);
    }
}
