//! Sharded in-process transport: N independent provider meshes, with
//! sessions partitioned across them by session tag.
//!
//! One [`ThreadedHub`] mesh means one provider thread per provider, no
//! matter how many concurrent sessions are multiplexed over it — on a
//! multi-core host that single thread per provider is the ceiling on
//! batch throughput. A [`ShardedHub`] stands up `N` *independent* meshes
//! (each with its own channels and, when latency is modelled, its own
//! delayer thread) and assigns every session to exactly one of them by a
//! stable hash of its [`SessionId`] ([`shard_for`]). Sessions never cross
//! shards, so no inter-shard coordination exists at all; the batch layer
//! simply runs one provider thread per provider *per shard*.
//!
//! Sharding preserves every session-level guarantee: a session's frames
//! all travel the one mesh its tag hashes to, and within a mesh the
//! channels stay reliable and FIFO per pair (§3.3's model assumption).

use dauctioneer_types::SessionId;

use crate::hub::{Endpoint, ThreadedHub};
use crate::latency::LatencyModel;
use crate::metrics::TrafficSnapshot;

/// The shard a session's frames travel through, stable across processes
/// and runs: a Fibonacci hash of the session tag folded onto `shards`.
///
/// Adjacent session ids scatter across shards (batches are usually built
/// with consecutive tags), and every participant computes the same
/// mapping from the tag alone — no coordination or lookup table.
pub fn shard_for(session: SessionId, shards: usize) -> usize {
    debug_assert!(shards > 0, "a hub has at least one shard");
    (session.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards.max(1)
}

/// `N` independent [`ThreadedHub`] meshes of `m` providers each.
#[derive(Debug)]
pub struct ShardedHub {
    shards: Vec<ThreadedHub>,
}

impl ShardedHub {
    /// Build `shards` independent meshes of `m` providers. Each shard's
    /// latency sampling is seeded distinctly (`seed + shard`), so jitter
    /// is reproducible but not lock-stepped across shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(m: usize, shards: usize, latency: LatencyModel, seed: u64) -> ShardedHub {
        assert!(shards > 0, "a hub has at least one shard");
        ShardedHub {
            shards: (0..shards)
                .map(|s| ThreadedHub::new(m, latency, seed.wrapping_add(s as u64)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `session` is assigned to.
    pub fn shard_for(&self, session: SessionId) -> usize {
        shard_for(session, self.shards.len())
    }

    /// Take ownership of every shard's endpoints: `result[s][j]` is
    /// provider `j`'s endpoint on shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<Vec<Endpoint>> {
        self.shards.iter_mut().map(|hub| hub.take_endpoints()).collect()
    }

    /// Shared handles onto each shard's traffic counters, one per shard.
    ///
    /// The handles stay valid after the hub's endpoints are taken (and
    /// after the hub itself moves elsewhere), so a long-lived service can
    /// keep observing traffic on a mesh whose ownership it has handed to
    /// its worker threads.
    pub fn shard_metrics(&self) -> Vec<crate::metrics::TrafficMetrics> {
        self.shards.iter().map(|hub| hub.metrics()).collect()
    }

    /// Traffic counters summed across all shards, per provider.
    pub fn traffic_snapshot(&self) -> TrafficSnapshot {
        let mut total = TrafficSnapshot::default();
        for hub in &self.shards {
            total.merge(&hub.metrics().snapshot());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dauctioneer_types::ProviderId;
    use std::time::Duration;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in 1..8 {
            for tag in 0..256 {
                let s = shard_for(SessionId(tag), shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(SessionId(tag), shards), "stable");
            }
        }
    }

    #[test]
    fn consecutive_tags_scatter() {
        let shards = 4;
        let hit: std::collections::HashSet<usize> =
            (0..16).map(|tag| shard_for(SessionId(tag), shards)).collect();
        assert!(hit.len() > 1, "16 consecutive tags all landed on one shard");
    }

    #[test]
    fn shards_are_independent_meshes() {
        let mut hub = ShardedHub::new(2, 2, LatencyModel::Zero, 1);
        assert_eq!(hub.num_shards(), 2);
        let shards = hub.take_endpoints();
        // A message on shard 0 arrives on shard 0 only.
        shards[0][0].send(ProviderId(1), Bytes::from_static(b"s0"));
        let (from, payload) = shards[0][1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(from, ProviderId(0));
        assert_eq!(&payload[..], b"s0");
        assert!(shards[1][1].try_recv().is_none());
    }

    #[test]
    fn traffic_sums_across_shards() {
        let mut hub = ShardedHub::new(2, 3, LatencyModel::Zero, 1);
        let shards = hub.take_endpoints();
        shards[0][0].send(ProviderId(1), Bytes::from_static(b"abc"));
        shards[2][0].send(ProviderId(1), Bytes::from_static(b"de"));
        let snap = hub.traffic_snapshot();
        assert_eq!(snap.per_provider[0].sent_bytes, 5);
        assert_eq!(snap.total_messages(), 2);
    }
}
