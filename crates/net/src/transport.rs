//! The minimal blocking point-to-point transport interface.
//!
//! Every message substrate in this crate — the in-process channel mesh
//! ([`Endpoint`]), the real-socket mesh ([`TcpEndpoint`]) and the
//! fault-injecting adapter ([`crate::chaos::ChaosTransport`]) — presents
//! the same four operations, so the protocol layer above (the
//! `SessionEngine` drive loops in `dauctioneer-core`) is written once
//! against this trait and cannot observe which substrate carries its
//! frames. The trait lives here, next to the transports, so adapters
//! that *wrap* a transport (chaos injection, adversarial strategies)
//! can be generic over it without depending on the protocol layer.

use std::time::Duration;

use bytes::Bytes;
use dauctioneer_types::ProviderId;

use crate::hub::{Endpoint, RecvError};
use crate::tcp::{MuxEndpoint, TcpEndpoint};

/// The minimal blocking point-to-point transport the generic drive loops
/// run over. [`Endpoint`] and [`TcpEndpoint`] implement it; a test double
/// or an alternative substrate (e.g. a socket mesh) only needs these four
/// operations.
pub trait Transport {
    /// The provider this transport belongs to.
    fn me(&self) -> ProviderId;

    /// Number of providers in the mesh.
    fn num_providers(&self) -> usize;

    /// Send `payload` to `to`; never blocks.
    fn send(&mut self, to: ProviderId, payload: Bytes);

    /// Wait up to `timeout` for the next message.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] if no message can ever arrive again.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError>;
}

impl Transport for Endpoint {
    fn me(&self) -> ProviderId {
        Endpoint::me(self)
    }

    fn num_providers(&self) -> usize {
        Endpoint::num_providers(self)
    }

    fn send(&mut self, to: ProviderId, payload: Bytes) {
        Endpoint::send(self, to, payload)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        Endpoint::recv_timeout(self, timeout)
    }
}

impl Transport for TcpEndpoint {
    fn me(&self) -> ProviderId {
        TcpEndpoint::me(self)
    }

    fn num_providers(&self) -> usize {
        TcpEndpoint::num_providers(self)
    }

    fn send(&mut self, to: ProviderId, payload: Bytes) {
        TcpEndpoint::send(self, to, payload)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        TcpEndpoint::recv_timeout(self, timeout)
    }
}

impl Transport for MuxEndpoint {
    fn me(&self) -> ProviderId {
        MuxEndpoint::me(self)
    }

    fn num_providers(&self) -> usize {
        MuxEndpoint::num_providers(self)
    }

    fn send(&mut self, to: ProviderId, payload: Bytes) {
        MuxEndpoint::send(self, to, payload)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        MuxEndpoint::recv_timeout(self, timeout)
    }
}
