//! Message-passing substrate for the distributed auctioneer.
//!
//! The paper evaluates its prototype on Guifi.net community-network nodes
//! with ØMQ as the messaging layer. This crate is the workspace's
//! substitute substrate (see `DESIGN.md` §4): an abstraction for reliable
//! point-to-point messaging between the `m` providers, with the transport
//! concern pulled out so the rest of the system is transport-agnostic:
//!
//! * [`ThreadedHub`] / [`Endpoint`] — the in-process transport (one
//!   OS thread per provider, crossbeam channels) with **injectable per-link
//!   latency** from a [`LatencyModel`]. This is what the wall-clock
//!   benchmarks run on: computation parallelises across threads (Fig. 5's
//!   regime) while injected community-network latencies dominate cheap
//!   computations (Fig. 4's regime).
//! * [`TcpMesh`] / [`TcpEndpoint`] — the real-socket transport: a full
//!   TCP mesh over loopback or LAN, carrying the same session-tagged
//!   frames delimited by length-prefixed wire frames
//!   ([`wire_encode`] / [`wire_decode`]). This is the deployment-shaped
//!   backend, standing in for the paper's ØMQ prototype on Guifi nodes.
//! * [`ShardedHub`] — `N` independent in-process meshes with sessions
//!   partitioned across them by a stable hash of the session tag
//!   ([`shard_for`]), lifting the one-thread-per-provider ceiling on
//!   multi-session batch throughput.
//! * [`ChaosTransport`] / [`FaultPlan`] — seeded, deterministic fault
//!   injection (drop / duplicate / reorder / delay / corrupt per link)
//!   wrapping any [`Transport`], so every test and bench can run under
//!   adversarial network conditions replayable from a seed.
//! * [`Transport`] — the minimal blocking point-to-point interface all of
//!   the above present to the protocol layer.
//! * [`frame()`] / [`unframe`] — tag-framing used by the protocol layer to
//!   multiplex many building-block instances over one link.
//! * [`TrafficMetrics`] — per-provider message/byte counters, reported by
//!   the benchmark harness as the communication-overhead breakdown.
//!
//! Channels are reliable and FIFO per sender–receiver pair, matching the
//! paper's model assumption of reliable channels (§3.3); the TCP backend
//! inherits both properties from TCP itself.
//!
//! # Example
//!
//! ```
//! use dauctioneer_net::{ThreadedHub, LatencyModel};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut hub = ThreadedHub::new(2, LatencyModel::Zero, 42);
//! let mut endpoints = hub.take_endpoints();
//! let e1 = endpoints.remove(1);
//! let e0 = endpoints.remove(0);
//! e0.send(e1.me(), Bytes::from_static(b"hello"));
//! let (from, payload) = e1.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(from, e0.me());
//! assert_eq!(&payload[..], b"hello");
//! ```

#![deny(missing_docs)]

pub mod chaos;
pub mod frame;
pub mod hello;
pub mod hub;
pub mod latency;
pub mod liveness;
pub mod metrics;
mod reactor;
pub mod shard;
pub mod tcp;
pub mod transport;

pub use chaos::{
    ChaosMetrics, ChaosStats, ChaosTransport, FaultDecision, FaultPlan, FaultPlanError,
};
pub use frame::{
    frame, frame_wire_into, mux_frame_into, mux_pack, mux_unframe, mux_unpack, unframe,
    wire_decode, wire_encode, wire_encode_into, FrameAssembler, FrameError, WireError,
    MAX_WIRE_FRAME, MUX_LANE_BITS, MUX_MAX_LANES, MUX_RAW_TAG, MUX_SESSION_BITS,
};
pub use hello::{Hello, HELLO_LEN, HELLO_MAGIC};
pub use hub::{Endpoint, RecvError, ThreadedHub};
pub use latency::LatencyModel;
pub use liveness::{Backoff, LivenessConfig, LivenessMetrics, LivenessTracker, PeerState};
pub use metrics::{ProviderTraffic, TrafficMetrics, TrafficSnapshot};
pub use shard::{shard_for, ShardedHub};
pub use tcp::{MeshOptions, MuxEndpoint, MuxMesh, TcpEndpoint, TcpMesh};
pub use transport::Transport;
