//! Tag framing: multiplexing protocol channels over one link.
//!
//! The distributed auctioneer runs many building-block instances at once
//! (one consensus instance per bid chunk, coin rounds, data transfers…).
//! Each message is framed with a `u64` channel tag so the receiving router
//! can dispatch it; the protocol layer defines the tag namespace.
//!
//! Two layers live here:
//!
//! * the **session/channel frame** ([`frame`] / [`unframe`]) — an 8-byte
//!   little-endian tag prefix, used on every transport;
//! * the **wire frame** ([`wire_encode`] / [`wire_decode`]) — a 4-byte
//!   little-endian length prefix delimiting messages on byte-stream
//!   transports (TCP), where message boundaries are not preserved by the
//!   medium. In-process channel transports deliver whole messages and
//!   skip this layer.
//!
//! # The multiplexed tag namespace
//!
//! The single-connection TCP mesh ([`MuxMesh`][crate::tcp::MuxMesh])
//! carries **every shard's** traffic over one socket per provider pair,
//! so the wire needs to say which logical lane (= shard) a frame belongs
//! to. Rather than growing the wire format, the lane is **folded into
//! the u64 tag slot that already heads every payload**: an engine
//! payload is `[session:u64][inner…]`, and the mux wire frame replaces
//! that leading session tag with [`mux_pack`]`(lane, session)` — the
//! lane in the top [`MUX_LANE_BITS`] bits, the session in the low
//! [`MUX_SESSION_BITS`]. The receiver [`mux_unpack`]s it, routes by
//! lane, and restores the original `[session][inner…]` payload, so the
//! layers above (session routing in the engine, channel tags nested
//! inside) are byte-identical to the single-mesh transports and the
//! whole `(shard, session, channel)` triple stays injective on the wire.
//!
//! Payloads that are *not* well-formed session frames (shorter than a
//! tag, or with a leading u64 too large to fold) travel under the
//! reserved [`MUX_RAW_TAG`] session slot and are delivered verbatim —
//! garbage injected by adversaries crosses the mux unchanged instead of
//! being mangled or dropped by the framing layer.
//!
//! The hot-path builders ([`wire_encode_into`] / [`frame_wire_into`] /
//! [`mux_frame_into`]) append into a caller-owned, reused [`BytesMut`]:
//! one reserved-header build per frame, no intermediate allocation — the
//! coalescing socket writers drain a whole queue into one warm buffer
//! and issue a single `write_all`.

use bytes::{BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Error unframing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    len: usize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message too short for frame header: {} bytes", self.len)
    }
}

impl Error for FrameError {}

/// Prefix `payload` with the little-endian channel `tag`.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{frame, unframe};
/// let msg = frame(7, b"data");
/// let (tag, payload) = unframe(&msg)?;
/// assert_eq!(tag, 7);
/// assert_eq!(payload, b"data");
/// # Ok::<(), dauctioneer_net::FrameError>(())
/// ```
pub fn frame(tag: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + payload.len());
    buf.put_u64_le(tag);
    buf.put_slice(payload);
    buf.freeze()
}

/// Split a framed message into its channel tag and payload.
///
/// # Errors
///
/// Fails if the message is shorter than the 8-byte tag header.
pub fn unframe(message: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if message.len() < 8 {
        return Err(FrameError { len: message.len() });
    }
    let tag = u64::from_le_bytes(message[..8].try_into().unwrap());
    Ok((tag, &message[8..]))
}

/// Largest payload a wire frame may carry, in bytes.
///
/// Protocol messages are a few hundred bytes (fixed-width bid streams,
/// commitments, digests); anything approaching this bound is a corrupt or
/// hostile length header, and readers drop the connection rather than
/// allocate what it claims.
pub const MAX_WIRE_FRAME: usize = 16 * 1024 * 1024;

/// Error decoding a wire frame from a byte stream, or bringing the
/// stream's connection up in the first place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length header claims more than [`MAX_WIRE_FRAME`] bytes — the
    /// stream is corrupt (or hostile) and must be torn down.
    Oversized {
        /// The claimed payload length.
        claimed: usize,
    },
    /// Mesh bring-up exhausted its total readiness budget with peer
    /// connections still outstanding: the named peers never connected,
    /// never finished their hello, or kept refusing dials. Reported once
    /// at the deadline instead of silent per-peer retries.
    BringUpExpired {
        /// Identity of each peer connection still missing when the
        /// budget expired, as `"provider <id> @ <addr>"` — so an
        /// operator (or the cluster supervisor) can tell *which* peer
        /// never arrived, not just how many.
        missing: Vec<String>,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { claimed } => {
                write!(f, "wire frame claims {claimed} bytes (max {MAX_WIRE_FRAME})")
            }
            WireError::BringUpExpired { missing } => {
                write!(
                    f,
                    "mesh bring-up budget expired with {} peer connection(s) outstanding: {}",
                    missing.len(),
                    missing.join(", ")
                )
            }
        }
    }
}

impl Error for WireError {}

/// Delimit `payload` for a byte-stream transport: a little-endian `u32`
/// length header followed by the payload bytes.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_WIRE_FRAME`] — protocol messages are
/// orders of magnitude smaller, so this is a local programming error.
pub fn wire_encode(payload: &[u8]) -> Bytes {
    assert!(payload.len() <= MAX_WIRE_FRAME, "wire frame too large: {} bytes", payload.len());
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf.freeze()
}

/// Try to split one wire frame off the front of `stream`.
///
/// Returns `Ok(Some((payload, consumed)))` when a complete frame is
/// available (`consumed` bytes of `stream` were used), `Ok(None)` when the
/// stream is truncated mid-header or mid-payload and more bytes are
/// needed.
///
/// # Errors
///
/// [`WireError::Oversized`] when the header claims more than
/// [`MAX_WIRE_FRAME`] bytes; the connection carrying the stream must be
/// dropped, since resynchronising a byte stream after a corrupt length is
/// impossible.
pub fn wire_decode(stream: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if stream.len() < 4 {
        return Ok(None);
    }
    let claimed = u32::from_le_bytes(stream[..4].try_into().unwrap()) as usize;
    if claimed > MAX_WIRE_FRAME {
        return Err(WireError::Oversized { claimed });
    }
    if stream.len() < 4 + claimed {
        return Ok(None);
    }
    Ok(Some((&stream[4..4 + claimed], 4 + claimed)))
}

/// [`wire_encode`] into a caller-owned buffer: append the length header
/// and payload to `buf` without any intermediate allocation. This is the
/// coalescing writers' hot path — many frames accumulate in one warm
/// [`BytesMut`] and leave in a single `write_all`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_WIRE_FRAME`].
pub fn wire_encode_into(payload: &[u8], buf: &mut BytesMut) {
    assert!(payload.len() <= MAX_WIRE_FRAME, "wire frame too large: {} bytes", payload.len());
    buf.reserve(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
}

/// Build a tagged wire frame `[len:u32][tag:u64][payload…]` into a
/// caller-owned buffer: the length header and the u64 tag are written as
/// **one** reserved-header build, merging what used to be two layers
/// (`frame` then `wire_encode`) — two allocations and a copy — into a
/// single append.
///
/// The resulting bytes decode with [`wire_decode`] (yielding
/// `[tag][payload]`) followed by [`unframe`].
///
/// # Panics
///
/// Panics if `8 + payload.len()` exceeds [`MAX_WIRE_FRAME`].
pub fn frame_wire_into(tag: u64, payload: &[u8], buf: &mut BytesMut) {
    let total = 8 + payload.len();
    assert!(total <= MAX_WIRE_FRAME, "wire frame too large: {total} bytes");
    buf.reserve(4 + total);
    buf.put_u32_le(total as u32);
    buf.put_u64_le(tag);
    buf.put_slice(payload);
}

/// Incremental wire-frame reassembly for nonblocking byte streams.
///
/// Under a blocking reader, frames could be split off a private buffer
/// in one loop; under the reactor's nonblocking reads, bytes arrive in
/// chunks cut at **arbitrary** boundaries — mid-header, mid-payload, one
/// byte at a time — and each connection owns one `FrameAssembler` that
/// accumulates them and yields every complete frame exactly once, in
/// order. The chunking is invisible: the delivered frame sequence is
/// byte-identical to feeding the whole stream at once (the proptest
/// suite drives this with adversarial chunkings).
///
/// Internally a single reused buffer with a consumed-prefix cursor:
/// frames are split off without shifting bytes, and the buffer is
/// compacted only when the parser runs dry, so steady-state reassembly
/// costs one copy per inbound byte.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{wire_encode, FrameAssembler};
///
/// let wire = wire_encode(b"split me");
/// let mut assembler = FrameAssembler::new();
/// assembler.extend(&wire[..3]); // mid-header
/// assert!(assembler.next_frame().unwrap().is_none());
/// assembler.extend(&wire[3..]);
/// let frame = assembler.next_frame().unwrap().expect("complete");
/// assert_eq!(&frame[..], b"split me");
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Append a chunk of stream bytes (any length, any boundary).
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Split the next complete wire frame off the accumulated bytes.
    ///
    /// Returns `Ok(None)` when the stream is truncated mid-header or
    /// mid-payload — call [`extend`](FrameAssembler::extend) with more
    /// bytes and try again.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] on a corrupt or hostile length header;
    /// the connection must be torn down (resynchronising a byte stream
    /// past a bad length is impossible), so the assembler's state is
    /// irrelevant afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        Ok(self.next_frame_ref()?.map(Bytes::copy_from_slice))
    }

    /// [`next_frame`](FrameAssembler::next_frame) without the copy into
    /// an owned [`Bytes`]: the payload is borrowed straight out of the
    /// internal buffer. The reactor's mux read path uses this — the lane
    /// demultiplexer makes its own owned copy anyway, so borrowing here
    /// keeps inbound reassembly at one copy per byte, matching the old
    /// blocking reader.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`], exactly as
    /// [`next_frame`](FrameAssembler::next_frame).
    pub fn next_frame_ref(&mut self) -> Result<Option<&[u8]>, WireError> {
        let consumed = match wire_decode(&self.buf[self.start..])? {
            Some((_, consumed)) => consumed,
            None => {
                // Parser ran dry: reclaim the consumed prefix now, so the
                // buffer never grows past one partial frame + one read.
                if self.start > 0 {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                return Ok(None);
            }
        };
        // A wire frame is a 4-byte length header, then the payload.
        let payload = self.start + 4..self.start + consumed;
        self.start += consumed;
        Ok(Some(&self.buf[payload]))
    }

    /// Bytes accumulated but not yet consumed as complete frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Bits of the packed mux tag carrying the lane (= shard) id.
pub const MUX_LANE_BITS: u32 = 16;

/// Bits of the packed mux tag carrying the session tag.
pub const MUX_SESSION_BITS: u32 = 48;

/// Exclusive upper bound on lane ids a [`MuxMesh`][crate::tcp::MuxMesh]
/// can multiplex (65 536 — far above any plausible shard count).
pub const MUX_MAX_LANES: usize = 1 << MUX_LANE_BITS;

/// The reserved session slot marking a **raw** mux frame: the payload
/// was not a foldable session frame and is delivered verbatim. Session
/// tags must be strictly below this to fold; larger ones simply travel
/// raw (correct, just without the 8-byte header saving).
pub const MUX_RAW_TAG: u64 = (1 << MUX_SESSION_BITS) - 1;

/// Pack a `(lane, session)` pair into one u64 wire tag: lane in the top
/// [`MUX_LANE_BITS`], session in the low [`MUX_SESSION_BITS`]. Injective
/// over `lane < MUX_MAX_LANES`, `session <= MUX_RAW_TAG` (the proptest
/// suite pins this down), and the inverse of [`mux_unpack`].
///
/// # Panics
///
/// Panics if `lane` or `session` exceeds its field — both are local
/// programming errors (lane counts are validated at mesh bring-up).
pub fn mux_pack(lane: usize, session: u64) -> u64 {
    assert!(lane < MUX_MAX_LANES, "mux lane {lane} exceeds {MUX_LANE_BITS} bits");
    assert!(session <= MUX_RAW_TAG, "session tag {session} exceeds {MUX_SESSION_BITS} bits");
    ((lane as u64) << MUX_SESSION_BITS) | session
}

/// Split a packed mux wire tag back into `(lane, session)`.
pub fn mux_unpack(tag: u64) -> (usize, u64) {
    ((tag >> MUX_SESSION_BITS) as usize, tag & MUX_RAW_TAG)
}

/// Build one mux wire frame for `payload` travelling on `lane` into a
/// caller-owned buffer.
///
/// A well-formed session payload `[session:u64][inner…]` with
/// `session < MUX_RAW_TAG` is **folded**: the wire carries
/// `[len][mux_pack(lane, session)][inner…]` — the lane rides in the tag
/// slot the payload already paid for, zero added bytes. Anything else
/// (too short, or a leading u64 at/above [`MUX_RAW_TAG`]) is **escaped**:
/// `[len][mux_pack(lane, MUX_RAW_TAG)][payload…]` delivers the original
/// bytes verbatim. [`mux_unframe`] inverts both shapes exactly.
pub fn mux_frame_into(lane: usize, payload: &[u8], buf: &mut BytesMut) {
    if payload.len() >= 8 {
        let session = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if session < MUX_RAW_TAG {
            frame_wire_into(mux_pack(lane, session), &payload[8..], buf);
            return;
        }
    }
    frame_wire_into(mux_pack(lane, MUX_RAW_TAG), payload, buf)
}

/// Invert [`mux_frame_into`] on one decoded wire frame (`[packed
/// tag][body…]`, as [`wire_decode`] yields it): returns the lane and the
/// reconstructed original payload.
///
/// # Errors
///
/// Fails with [`FrameError`] if the frame is shorter than the 8-byte
/// packed tag (a corrupt stream; mux connections carry nothing smaller).
pub fn mux_unframe(frame: &[u8]) -> Result<(usize, Bytes), FrameError> {
    let (packed, body) = unframe(frame)?;
    let (lane, session) = mux_unpack(packed);
    if session == MUX_RAW_TAG {
        return Ok((lane, Bytes::copy_from_slice(body)));
    }
    let mut restored = BytesMut::with_capacity(8 + body.len());
    restored.put_u64_le(session);
    restored.put_slice(body);
    Ok((lane, restored.freeze()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let encoded = wire_encode(b"payload");
        let (payload, consumed) = wire_decode(&encoded).unwrap().unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn wire_truncated_needs_more() {
        let encoded = wire_encode(b"payload");
        for cut in 0..encoded.len() {
            assert_eq!(wire_decode(&encoded[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn wire_oversized_header_is_fatal() {
        let mut bad = Vec::from((MAX_WIRE_FRAME as u32 + 1).to_le_bytes());
        bad.extend_from_slice(b"x");
        assert_eq!(
            wire_decode(&bad).unwrap_err(),
            WireError::Oversized { claimed: MAX_WIRE_FRAME + 1 }
        );
    }

    #[test]
    fn wire_trailing_bytes_stay_in_stream() {
        let mut stream = Vec::from(&wire_encode(b"one")[..]);
        stream.extend_from_slice(&wire_encode(b"two"));
        let (payload, consumed) = wire_decode(&stream).unwrap().unwrap();
        assert_eq!(payload, b"one");
        let (payload, _) = wire_decode(&stream[consumed..]).unwrap().unwrap();
        assert_eq!(payload, b"two");
    }

    #[test]
    fn wire_encode_into_matches_wire_encode() {
        let mut buf = BytesMut::new();
        wire_encode_into(b"payload", &mut buf);
        assert_eq!(&buf[..], &wire_encode(b"payload")[..]);
        // Appending reuses the same buffer.
        wire_encode_into(b"second", &mut buf);
        let (first, consumed) = wire_decode(&buf).unwrap().unwrap();
        assert_eq!(first, b"payload");
        let (second, _) = wire_decode(&buf[consumed..]).unwrap().unwrap();
        assert_eq!(second, b"second");
    }

    #[test]
    fn frame_wire_into_merges_both_layers() {
        // One reserved-header build must equal frame() then wire_encode().
        let legacy = wire_encode(&frame(99, b"body"));
        let mut buf = BytesMut::new();
        frame_wire_into(99, b"body", &mut buf);
        assert_eq!(&buf[..], &legacy[..]);
        let (payload, _) = wire_decode(&buf).unwrap().unwrap();
        let (tag, inner) = unframe(payload).unwrap();
        assert_eq!(tag, 99);
        assert_eq!(inner, b"body");
    }

    #[test]
    fn mux_pack_unpack_roundtrip_and_field_layout() {
        for (lane, session) in
            [(0, 0), (1, 7), (42, MUX_RAW_TAG), (MUX_MAX_LANES - 1, (1 << 47) + 12345)]
        {
            let packed = mux_pack(lane, session);
            assert_eq!(mux_unpack(packed), (lane, session));
        }
        assert_eq!(mux_pack(0, 5), 5, "lane 0 leaves the session tag untouched");
    }

    #[test]
    fn mux_fold_roundtrips_session_frames() {
        let payload = frame(12345, b"session body");
        let mut buf = BytesMut::new();
        mux_frame_into(3, &payload, &mut buf);
        // Folding saves the 8 tag bytes: wire = 4 (len) + payload.
        assert_eq!(buf.len(), 4 + payload.len());
        let (wire_frame, _) = wire_decode(&buf).unwrap().unwrap();
        let (lane, restored) = mux_unframe(wire_frame).unwrap();
        assert_eq!(lane, 3);
        assert_eq!(&restored[..], &payload[..]);
    }

    #[test]
    fn mux_raw_escape_roundtrips_arbitrary_payloads() {
        // Too short for a session tag, exactly the reserved tag, and a
        // leading u64 with high bits set: all must travel verbatim.
        let junk: &[&[u8]] = &[b"", b"x", b"\xde\xad\xbe", &u64::MAX.to_le_bytes(), {
            &frame(MUX_RAW_TAG, b"reserved-tag payload")
        }];
        for payload in junk {
            let mut buf = BytesMut::new();
            mux_frame_into(7, payload, &mut buf);
            let (wire_frame, _) = wire_decode(&buf).unwrap().unwrap();
            let (lane, restored) = mux_unframe(wire_frame).unwrap();
            assert_eq!(lane, 7);
            assert_eq!(&restored[..], &payload[..], "raw payload mangled");
        }
    }

    #[test]
    fn mux_unframe_rejects_short_frames() {
        assert!(mux_unframe(&[1, 2, 3]).is_err());
    }

    #[test]
    fn roundtrip() {
        let msg = frame(u64::MAX, b"abc");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, u64::MAX);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn empty_payload_is_fine() {
        let msg = frame(0, b"");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn short_message_is_rejected() {
        let err = unframe(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("3 bytes"));
    }
}
