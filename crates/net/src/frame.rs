//! Tag framing: multiplexing protocol channels over one link.
//!
//! The distributed auctioneer runs many building-block instances at once
//! (one consensus instance per bid chunk, coin rounds, data transfers…).
//! Each message is framed with a `u64` channel tag so the receiving router
//! can dispatch it; the protocol layer defines the tag namespace.
//!
//! Two layers live here:
//!
//! * the **session/channel frame** ([`frame`] / [`unframe`]) — an 8-byte
//!   little-endian tag prefix, used on every transport;
//! * the **wire frame** ([`wire_encode`] / [`wire_decode`]) — a 4-byte
//!   little-endian length prefix delimiting messages on byte-stream
//!   transports (TCP), where message boundaries are not preserved by the
//!   medium. In-process channel transports deliver whole messages and
//!   skip this layer.

use bytes::{BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Error unframing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    len: usize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message too short for frame header: {} bytes", self.len)
    }
}

impl Error for FrameError {}

/// Prefix `payload` with the little-endian channel `tag`.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{frame, unframe};
/// let msg = frame(7, b"data");
/// let (tag, payload) = unframe(&msg)?;
/// assert_eq!(tag, 7);
/// assert_eq!(payload, b"data");
/// # Ok::<(), dauctioneer_net::FrameError>(())
/// ```
pub fn frame(tag: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + payload.len());
    buf.put_u64_le(tag);
    buf.put_slice(payload);
    buf.freeze()
}

/// Split a framed message into its channel tag and payload.
///
/// # Errors
///
/// Fails if the message is shorter than the 8-byte tag header.
pub fn unframe(message: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if message.len() < 8 {
        return Err(FrameError { len: message.len() });
    }
    let tag = u64::from_le_bytes(message[..8].try_into().unwrap());
    Ok((tag, &message[8..]))
}

/// Largest payload a wire frame may carry, in bytes.
///
/// Protocol messages are a few hundred bytes (fixed-width bid streams,
/// commitments, digests); anything approaching this bound is a corrupt or
/// hostile length header, and readers drop the connection rather than
/// allocate what it claims.
pub const MAX_WIRE_FRAME: usize = 16 * 1024 * 1024;

/// Error decoding a wire frame from a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length header claims more than [`MAX_WIRE_FRAME`] bytes — the
    /// stream is corrupt (or hostile) and must be torn down.
    Oversized {
        /// The claimed payload length.
        claimed: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { claimed } => {
                write!(f, "wire frame claims {claimed} bytes (max {MAX_WIRE_FRAME})")
            }
        }
    }
}

impl Error for WireError {}

/// Delimit `payload` for a byte-stream transport: a little-endian `u32`
/// length header followed by the payload bytes.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_WIRE_FRAME`] — protocol messages are
/// orders of magnitude smaller, so this is a local programming error.
pub fn wire_encode(payload: &[u8]) -> Bytes {
    assert!(payload.len() <= MAX_WIRE_FRAME, "wire frame too large: {} bytes", payload.len());
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf.freeze()
}

/// Try to split one wire frame off the front of `stream`.
///
/// Returns `Ok(Some((payload, consumed)))` when a complete frame is
/// available (`consumed` bytes of `stream` were used), `Ok(None)` when the
/// stream is truncated mid-header or mid-payload and more bytes are
/// needed.
///
/// # Errors
///
/// [`WireError::Oversized`] when the header claims more than
/// [`MAX_WIRE_FRAME`] bytes; the connection carrying the stream must be
/// dropped, since resynchronising a byte stream after a corrupt length is
/// impossible.
pub fn wire_decode(stream: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if stream.len() < 4 {
        return Ok(None);
    }
    let claimed = u32::from_le_bytes(stream[..4].try_into().unwrap()) as usize;
    if claimed > MAX_WIRE_FRAME {
        return Err(WireError::Oversized { claimed });
    }
    if stream.len() < 4 + claimed {
        return Ok(None);
    }
    Ok(Some((&stream[4..4 + claimed], 4 + claimed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let encoded = wire_encode(b"payload");
        let (payload, consumed) = wire_decode(&encoded).unwrap().unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn wire_truncated_needs_more() {
        let encoded = wire_encode(b"payload");
        for cut in 0..encoded.len() {
            assert_eq!(wire_decode(&encoded[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn wire_oversized_header_is_fatal() {
        let mut bad = Vec::from((MAX_WIRE_FRAME as u32 + 1).to_le_bytes());
        bad.extend_from_slice(b"x");
        assert_eq!(
            wire_decode(&bad).unwrap_err(),
            WireError::Oversized { claimed: MAX_WIRE_FRAME + 1 }
        );
    }

    #[test]
    fn wire_trailing_bytes_stay_in_stream() {
        let mut stream = Vec::from(&wire_encode(b"one")[..]);
        stream.extend_from_slice(&wire_encode(b"two"));
        let (payload, consumed) = wire_decode(&stream).unwrap().unwrap();
        assert_eq!(payload, b"one");
        let (payload, _) = wire_decode(&stream[consumed..]).unwrap().unwrap();
        assert_eq!(payload, b"two");
    }

    #[test]
    fn roundtrip() {
        let msg = frame(u64::MAX, b"abc");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, u64::MAX);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn empty_payload_is_fine() {
        let msg = frame(0, b"");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn short_message_is_rejected() {
        let err = unframe(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("3 bytes"));
    }
}
