//! Tag framing: multiplexing protocol channels over one link.
//!
//! The distributed auctioneer runs many building-block instances at once
//! (one consensus instance per bid chunk, coin rounds, data transfers…).
//! Each message is framed with a `u64` channel tag so the receiving router
//! can dispatch it; the protocol layer defines the tag namespace.

use bytes::{BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Error unframing a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    len: usize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "message too short for frame header: {} bytes", self.len)
    }
}

impl Error for FrameError {}

/// Prefix `payload` with the little-endian channel `tag`.
///
/// # Example
///
/// ```
/// use dauctioneer_net::{frame, unframe};
/// let msg = frame(7, b"data");
/// let (tag, payload) = unframe(&msg)?;
/// assert_eq!(tag, 7);
/// assert_eq!(payload, b"data");
/// # Ok::<(), dauctioneer_net::FrameError>(())
/// ```
pub fn frame(tag: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + payload.len());
    buf.put_u64_le(tag);
    buf.put_slice(payload);
    buf.freeze()
}

/// Split a framed message into its channel tag and payload.
///
/// # Errors
///
/// Fails if the message is shorter than the 8-byte tag header.
pub fn unframe(message: &[u8]) -> Result<(u64, &[u8]), FrameError> {
    if message.len() < 8 {
        return Err(FrameError { len: message.len() });
    }
    let tag = u64::from_le_bytes(message[..8].try_into().unwrap());
    Ok((tag, &message[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let msg = frame(u64::MAX, b"abc");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, u64::MAX);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn empty_payload_is_fine() {
        let msg = frame(0, b"");
        let (tag, payload) = unframe(&msg).unwrap();
        assert_eq!(tag, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn short_message_is_rejected() {
        let err = unframe(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("3 bytes"));
    }
}
