//! The socket reactor: **one OS thread driving every nonblocking
//! connection of a mesh**.
//!
//! The previous transport design paid two blocking threads (a reader and
//! a coalescing writer) per peer connection — `2m(m−1)` threads for an
//! `m`-provider mux mesh before a single client connects. The reactor
//! replaces all of them with a single epoll event loop (the vendored
//! [`polling`] subset): every socket is nonblocking and registered with
//! level-triggered readiness; reads feed per-connection
//! [`FrameAssembler`]s (frames arrive split at arbitrary byte
//! boundaries), writes drain per-connection bounded outbound rings into
//! one reused coalescing buffer, and an eventfd waker lets protocol
//! threads interrupt a blocked `epoll_wait` when they enqueue.
//!
//! The lifecycle per connection:
//!
//! 1. **enqueue** — a protocol thread calls [`ConnTx::send`]: the frame
//!    lands in the connection's bounded ring (blocking when full — pure
//!    backpressure), the connection's key goes onto the *dirty* list,
//!    and the waker fires unless a wakeup is already pending.
//! 2. **drain** — the reactor wakes, clears its wake-pending flag
//!    *before* reading the dirty list (so no enqueue can slip between
//!    drain and sleep unnoticed), and for each dirty connection refills
//!    the write buffer from the ring — up to the coalescing high-water
//!    mark, exactly the batch the old writer threads built — and writes
//!    until done or `WouldBlock`.
//! 3. **writability** — only a connection with unflushed bytes holds
//!    `EPOLLOUT` interest; when the kernel drains, the event fires, the
//!    remaining bytes go out, and write interest is dropped again.
//! 4. **readability** — level-triggered reads pull socket bytes into the
//!    connection's assembler and route every completed frame to its
//!    lane's inbox (mux) or the endpoint's inbox (plain).
//! 5. **close** — an endpoint drop sends a `CloseNode` control message
//!    and blocks for the ack: the reactor flushes the node's rings and
//!    write buffers to the kernel, then half-closes each socket
//!    (`shutdown(Write)` — FIN *after* the data), preserving the
//!    drain-then-shutdown losslessness of the threaded design. Read
//!    sides stay open until the peer's EOF so buffered inbound frames
//!    are never destroyed by an early full close.
//!
//! One reactor serves a whole in-process loopback mesh (all `m` nodes),
//! and one serves each node of a multi-host deployment — either way the
//! I/O thread count is **O(1)**, independent of mesh size and lane
//! count, which is what the thread-accounting regression tests pin down.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use polling::{Events, Interest, PollMode, Poller};

use dauctioneer_types::ProviderId;

use crate::frame::FrameAssembler;
use crate::frame::{mux_frame_into, mux_unframe, wire_encode_into, MAX_WIRE_FRAME};
use crate::metrics::TrafficMetrics;
use crate::tcp::{OUTBOUND_QUEUE_FRAMES, WRITE_COALESCE_BYTES};

/// Name every reactor thread carries (plus a discriminating suffix).
/// The thread-accounting tests count threads by this prefix, so it must
/// survive the kernel's 15-byte `comm` truncation.
pub(crate) const REACTOR_THREAD_PREFIX: &str = "net-reactor";

/// How a connection encodes outbound payloads and routes inbound frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireFormat {
    /// Dedicated mesh ([`TcpEndpoint`][crate::TcpEndpoint]): plain wire
    /// frames, one inbox (lane 0), the lane id on sends is ignored.
    Plain,
    /// Multiplexed mesh ([`MuxEndpoint`][crate::MuxEndpoint]): the lane
    /// id is folded into the frame tag and inbound frames are
    /// demultiplexed to per-lane inboxes.
    Mux,
}

/// One provider's wiring handed to [`spawn`].
#[derive(Debug)]
pub(crate) struct NodeSpec {
    /// The node's provider id.
    pub me: ProviderId,
    /// Outbound encoding / inbound routing discipline.
    pub format: WireFormat,
    /// `streams[j]` is the established connection to peer `j` (`None` at
    /// the node's own index). The reactor takes ownership and switches
    /// every stream to nonblocking mode.
    pub streams: Vec<Option<TcpStream>>,
    /// Inbound frame sinks: one per lane (exactly one for
    /// [`WireFormat::Plain`]). Dropped by the reactor once the node's
    /// last read side dies, so receivers observe `Disconnected`.
    pub lanes: Vec<Sender<(ProviderId, Bytes)>>,
    /// The node's traffic counters (shared mesh-wide for loopback).
    pub metrics: TrafficMetrics,
}

/// What [`spawn`] hands back per node: the per-peer send handles and the
/// close handle the endpoint teardown calls.
#[derive(Debug)]
pub(crate) struct NodeIo {
    /// `outbound[j]` sends to peer `j` (`None` at the node's own index).
    pub outbound: Vec<Option<ConnTx>>,
    /// Flush-and-half-close handle for this node's connections.
    pub closer: NodeCloser,
}

/// Sender half of one connection's bounded outbound ring, plus the
/// wakeup plumbing. Cloneable: every lane endpoint of a mux node shares
/// the same per-peer ring.
#[derive(Debug, Clone)]
pub(crate) struct ConnTx {
    ring: Sender<(usize, Bytes)>,
    key: usize,
    shared: Arc<Shared>,
}

impl ConnTx {
    /// Queue `(lane, payload)` for this connection and wake the reactor.
    /// Blocks only when the ring is full (a peer that stopped draining —
    /// pure backpressure, bounded memory). Errors (reactor gone) drop
    /// the frame silently, exactly like the old writer-thread queues.
    pub fn send(&self, lane: usize, payload: Bytes) {
        if self.ring.send((lane, payload)).is_ok() {
            let _ = self.shared.dirty.send(self.key);
            self.shared.wake();
        }
    }
}

/// Handle that flushes one node's connections and half-closes them.
///
/// [`NodeCloser::close`] blocks until every queued frame of the node has
/// reached the kernel and each socket's write side carries its FIN —
/// the reactor's equivalent of "join the writer threads" — so a decided
/// session's final sends are never lost to teardown.
#[derive(Debug)]
pub(crate) struct NodeCloser {
    node: usize,
    shared: Arc<Shared>,
}

impl NodeCloser {
    /// Flush and half-close the node's connections; returns once done.
    /// Must not be called from the reactor thread itself (it would
    /// deadlock on its own ack); endpoint drops run on protocol threads.
    pub fn close(&self) {
        let (ack_tx, ack_rx) = bounded(1);
        if self.shared.control.send(Control::CloseNode { node: self.node, ack: ack_tx }).is_err() {
            return; // reactor already gone; nothing left to flush
        }
        self.shared.wake();
        // Generous hang-guard: the flush itself is bounded by ring size
        // and kernel buffers, so this only fires if the reactor died.
        let _ = ack_rx.recv_timeout(Duration::from_secs(30));
    }
}

/// Owner handle for the reactor thread; the last clone's drop shuts the
/// event loop down (after every node has been closed) and joins it.
#[derive(Debug)]
pub(crate) struct ReactorHandle {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// OS threads the reactor runs: always exactly one.
    pub fn io_threads(&self) -> usize {
        1
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        let _ = self.shared.control.send(Control::Shutdown);
        self.shared.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Cross-thread plumbing shared by senders, closers and the loop.
#[derive(Debug)]
struct Shared {
    poller: Poller,
    dirty: Sender<usize>,
    control: Sender<Control>,
    /// True while a waker write is pending that the loop has not yet
    /// consumed; lets `n` concurrent sends pay one eventfd write.
    wake_pending: AtomicBool,
}

impl Shared {
    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            let _ = self.poller.notify();
        }
    }
}

#[derive(Debug)]
enum Control {
    /// Flush `node`'s rings to the kernel, FIN its sockets, then ack.
    CloseNode { node: usize, ack: Sender<()> },
    /// Exit the loop (sent by the last [`ReactorHandle`] drop).
    Shutdown,
}

/// One registered connection's state.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    key: usize,
    node: usize,
    peer: ProviderId,
    assembler: FrameAssembler,
    ring: Receiver<(usize, Bytes)>,
    /// Encoded-but-unflushed outbound bytes (one reused buffer — the
    /// coalescing batch) and the how-far-written cursor into it.
    wbuf: BytesMut,
    wpos: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Node close requested: flush, then FIN.
    closing: bool,
    /// Write side finished (flushed + FIN, or the socket died).
    write_shut: bool,
    /// Read side still live (peer has not shown EOF).
    read_open: bool,
}

/// Per-node bookkeeping.
#[derive(Debug)]
struct NodeState {
    me: ProviderId,
    format: WireFormat,
    /// Dropped once the last read side dies, so lane receivers observe
    /// `Disconnected` exactly like the old reader-thread teardown.
    lanes: Option<Vec<Sender<(ProviderId, Bytes)>>>,
    metrics: TrafficMetrics,
    conn_keys: Vec<usize>,
    /// Connections whose read side is still open.
    read_live: usize,
    /// Connections whose write side is not yet shut.
    write_live: usize,
    closing: bool,
    ack: Option<Sender<()>>,
}

/// Spawn one reactor thread over `specs` (all nodes of an in-process
/// mesh, or the single node of a multi-host endpoint). Returns the
/// thread's owner handle plus per-node send/close wiring, and stores the
/// O(1) thread roster into every node's `io_threads` gauge.
///
/// # Errors
///
/// Poller creation, socket-option, registration or thread-spawn failure.
pub(crate) fn spawn(specs: Vec<NodeSpec>) -> io::Result<(Arc<ReactorHandle>, Vec<NodeIo>)> {
    let poller = Poller::new()?;
    let (dirty_tx, dirty_rx) = unbounded();
    let (control_tx, control_rx) = unbounded();
    let shared = Arc::new(Shared {
        poller,
        dirty: dirty_tx,
        control: control_tx,
        wake_pending: AtomicBool::new(false),
    });

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut nodes: Vec<NodeState> = Vec::with_capacity(specs.len());
    let mut ios: Vec<NodeIo> = Vec::with_capacity(specs.len());

    for (node_idx, spec) in specs.into_iter().enumerate() {
        spec.metrics.set_io_threads(1);
        let m = spec.streams.len();
        let mut outbound: Vec<Option<ConnTx>> = (0..m).map(|_| None).collect();
        let mut conn_keys = Vec::new();
        for (peer, slot) in spec.streams.into_iter().enumerate() {
            let Some(stream) = slot else { continue };
            stream.set_nonblocking(true)?;
            let _ = stream.set_nodelay(true);
            let key = conns.len();
            shared.poller.add(&stream, key, Interest::READABLE, PollMode::Level)?;
            let (ring_tx, ring_rx) = bounded(OUTBOUND_QUEUE_FRAMES);
            outbound[peer] = Some(ConnTx { ring: ring_tx, key, shared: Arc::clone(&shared) });
            conn_keys.push(key);
            conns.push(Some(Conn {
                stream,
                key,
                node: node_idx,
                peer: ProviderId(peer as u32),
                assembler: FrameAssembler::new(),
                ring: ring_rx,
                wbuf: BytesMut::with_capacity(64 * 1024),
                wpos: 0,
                interest: Interest::READABLE,
                closing: false,
                write_shut: false,
                read_open: true,
            }));
        }
        let live = conn_keys.len();
        nodes.push(NodeState {
            me: spec.me,
            format: spec.format,
            lanes: Some(spec.lanes),
            metrics: spec.metrics,
            conn_keys,
            read_live: live,
            write_live: live,
            closing: false,
            ack: None,
        });
        ios.push(NodeIo {
            outbound,
            closer: NodeCloser { node: node_idx, shared: Arc::clone(&shared) },
        });
    }

    // A node with no live connections delivers Disconnected immediately,
    // matching the threaded design (its lane senders never existed).
    for node in &mut nodes {
        if node.read_live == 0 {
            node.lanes = None;
        }
    }

    let reactor = Reactor {
        shared: Arc::clone(&shared),
        control: control_rx,
        dirty: dirty_rx,
        conns,
        nodes,
        scratch: vec![0u8; 64 * 1024],
    };
    let thread = std::thread::Builder::new()
        .name(REACTOR_THREAD_PREFIX.to_string())
        .spawn(move || reactor.run())?;

    Ok((Arc::new(ReactorHandle { shared, thread: Some(thread) }), ios))
}

/// Append `(lane, payload)` to `buf` in the connection's wire format.
/// Oversized payloads are skipped defensively — both endpoint `send`s
/// already drop-and-count them, and a panic here would take the whole
/// mesh's I/O down.
fn encode_frame(format: WireFormat, lane: usize, payload: &Bytes, buf: &mut BytesMut) {
    match format {
        WireFormat::Plain => {
            if payload.len() <= MAX_WIRE_FRAME {
                wire_encode_into(payload, buf);
            }
        }
        WireFormat::Mux => {
            if payload.len() <= MAX_WIRE_FRAME - 8 {
                mux_frame_into(lane, payload, buf);
            }
        }
    }
}

/// What a read pass decided about the connection.
enum ReadOutcome {
    /// Drained to `WouldBlock`; keep everything as is.
    Keep,
    /// Peer EOF or socket error: the read side is done.
    Eof,
    /// Undecodable stream (corrupt length, bad lane, dead plain inbox):
    /// tear the whole connection down.
    Kill,
}

struct Reactor {
    shared: Arc<Shared>,
    control: Receiver<Control>,
    dirty: Receiver<usize>,
    conns: Vec<Option<Conn>>,
    nodes: Vec<NodeState>,
    scratch: Vec<u8>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(256);
        loop {
            if self.shared.poller.wait(&mut events, None).is_err() {
                break; // fatal epoll failure: bail out; channels disconnect
            }
            // Reset *before* draining: any send that lands after the
            // drain sees the flag cleared and fires a fresh wakeup, so
            // nothing slips through while the loop goes back to sleep.
            self.shared.wake_pending.store(false, Ordering::Release);

            let mut shutdown = false;
            while let Ok(ctl) = self.control.try_recv() {
                match ctl {
                    Control::CloseNode { node, ack } => self.begin_close(node, ack),
                    Control::Shutdown => shutdown = true,
                }
            }
            if shutdown {
                break;
            }
            while let Ok(key) = self.dirty.try_recv() {
                self.try_write(key);
            }
            for ev in events.iter() {
                if ev.readable {
                    self.do_read(ev.key);
                }
                if ev.writable {
                    self.try_write(ev.key);
                }
            }
        }
        // Shutdown: every node has already been flushed and half-closed
        // by its CloseNode; force-close whatever read sides remain and
        // release any closer still waiting.
        for conn in self.conns.iter().flatten() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for node in &mut self.nodes {
            if let Some(ack) = node.ack.take() {
                let _ = ack.send(());
            }
        }
    }

    /// Route one inbound frame. Returns `false` when the stream must be
    /// torn down (corrupt mux framing or a dead plain inbox).
    fn deliver(&mut self, node_idx: usize, peer: ProviderId, frame: &[u8]) -> bool {
        let node = &mut self.nodes[node_idx];
        match node.format {
            WireFormat::Mux => {
                let Ok((lane, payload)) = mux_unframe(frame) else {
                    return false; // shorter than a packed tag: corrupt
                };
                let len = payload.len();
                let delivered = node
                    .lanes
                    .as_ref()
                    .and_then(|lanes| lanes.get(lane))
                    .is_some_and(|tx| tx.send((peer, payload)).is_ok());
                if !delivered {
                    match node.lanes.as_ref() {
                        // A lane outside the mesh's range: corrupt stream.
                        Some(lanes) if lane >= lanes.len() => return false,
                        // This lane's endpoint is gone (a straggler of a
                        // finished epoch): count, drop, carry on.
                        _ => node.metrics.record_drop(node.me, len),
                    }
                }
                true
            }
            WireFormat::Plain => match node.lanes.as_ref() {
                Some(lanes) => lanes[0].send((peer, Bytes::copy_from_slice(frame))).is_ok(),
                None => false, // endpoint gone: no reason to keep reading
            },
        }
    }

    fn do_read(&mut self, key: usize) {
        let Some(mut conn) = self.conns.get_mut(key).and_then(Option::take) else { return };
        if !conn.read_open {
            self.conns[key] = Some(conn);
            return;
        }
        let mut outcome = ReadOutcome::Keep;
        'read: loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    outcome = ReadOutcome::Eof;
                    break;
                }
                Ok(n) => {
                    conn.assembler.extend(&self.scratch[..n]);
                    loop {
                        match conn.assembler.next_frame_ref() {
                            Ok(Some(frame)) => {
                                // The frame borrows only the assembler
                                // (conn lives outside `self` here);
                                // routing copies it into its inbox.
                                if !self.deliver(conn.node, conn.peer, frame) {
                                    outcome = ReadOutcome::Kill;
                                    break 'read;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                outcome = ReadOutcome::Kill;
                                break 'read;
                            }
                        }
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    outcome = ReadOutcome::Eof;
                    break;
                }
            }
        }
        match outcome {
            ReadOutcome::Keep => self.conns[key] = Some(conn),
            ReadOutcome::Eof => self.close_read(key, conn),
            ReadOutcome::Kill => self.kill_conn(conn),
        }
    }

    /// The peer's write side is gone: retire this connection's read half
    /// (our write half may still be flushing).
    fn close_read(&mut self, key: usize, mut conn: Conn) {
        conn.read_open = false;
        self.retire_read(conn.node);
        if conn.write_shut {
            let _ = self.shared.poller.delete(&conn.stream);
            // conn drops here: fully closed.
        } else {
            let want = Interest { readable: false, writable: conn.interest.writable };
            self.set_interest(&mut conn, want);
            self.conns[key] = Some(conn);
        }
    }

    /// Corrupt stream or dead inbox: tear the connection down entirely.
    fn kill_conn(&mut self, conn: Conn) {
        let _ = conn.stream.shutdown(Shutdown::Both);
        let _ = self.shared.poller.delete(&conn.stream);
        if conn.read_open {
            self.retire_read(conn.node);
        }
        if !conn.write_shut {
            self.nodes[conn.node].write_live -= 1;
            self.maybe_ack(conn.node);
        }
    }

    fn retire_read(&mut self, node_idx: usize) {
        let node = &mut self.nodes[node_idx];
        node.read_live -= 1;
        if node.read_live == 0 {
            // Last peer gone: drop the lane senders so every endpoint's
            // recv sees Disconnected once its inbox is drained.
            node.lanes = None;
        }
    }

    /// Flush this connection: refill the coalescing buffer from the ring
    /// (one batch, up to the high-water mark) and write until done or
    /// `WouldBlock`. Write interest is held only while bytes are pending.
    fn try_write(&mut self, key: usize) {
        let Some(mut conn) = self.conns.get_mut(key).and_then(Option::take) else { return };
        if conn.write_shut {
            self.conns[key] = Some(conn);
            return;
        }
        let format = self.nodes[conn.node].format;
        loop {
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                while conn.wbuf.len() < WRITE_COALESCE_BYTES {
                    match conn.ring.try_recv() {
                        Ok((lane, payload)) => encode_frame(format, lane, &payload, &mut conn.wbuf),
                        Err(_) => break, // ring momentarily empty (or closing)
                    }
                }
                if conn.wbuf.is_empty() {
                    // Fully flushed to the kernel.
                    if conn.closing {
                        // FIN after the data: the peer reads everything,
                        // then EOF — the drain-then-shutdown contract.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        self.finish_write(key, conn);
                    } else {
                        let want = Interest { readable: conn.read_open, writable: false };
                        self.set_interest(&mut conn, want);
                        self.conns[key] = Some(conn);
                    }
                    return;
                }
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.finish_write(key, conn);
                    return;
                }
                Ok(n) => conn.wpos += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    let want = Interest { readable: conn.read_open, writable: true };
                    self.set_interest(&mut conn, want);
                    self.conns[key] = Some(conn);
                    return;
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Dead socket (peer gone): the write side is over,
                    // exactly as when the old writer thread's write_all
                    // failed. Undelivered frames die with the ring.
                    self.finish_write(key, conn);
                    return;
                }
            }
        }
    }

    /// The connection's write side is done (flushed + FIN, or dead).
    fn finish_write(&mut self, key: usize, mut conn: Conn) {
        conn.write_shut = true;
        let node_idx = conn.node;
        self.nodes[node_idx].write_live -= 1;
        if conn.read_open {
            let want = Interest { readable: true, writable: false };
            self.set_interest(&mut conn, want);
            self.conns[key] = Some(conn);
        } else {
            let _ = self.shared.poller.delete(&conn.stream);
            // conn drops here: fully closed.
        }
        self.maybe_ack(node_idx);
    }

    /// A node's endpoints are gone: flush its rings, FIN its sockets,
    /// and ack the blocked closer once the last write side is shut.
    fn begin_close(&mut self, node_idx: usize, ack: Sender<()>) {
        let node = &mut self.nodes[node_idx];
        node.closing = true;
        node.ack = Some(ack);
        let keys = node.conn_keys.clone();
        for key in keys {
            if let Some(conn) = self.conns.get_mut(key).and_then(Option::as_mut) {
                if conn.node == node_idx {
                    conn.closing = true;
                }
            }
            self.try_write(key);
        }
        self.maybe_ack(node_idx);
    }

    fn maybe_ack(&mut self, node_idx: usize) {
        let node = &mut self.nodes[node_idx];
        if node.closing && node.write_live == 0 {
            if let Some(ack) = node.ack.take() {
                let _ = ack.send(());
            }
        }
    }

    fn set_interest(&self, conn: &mut Conn, want: Interest) {
        if conn.interest != want
            && self.shared.poller.modify(&conn.stream, conn.key, want, PollMode::Level).is_ok()
        {
            conn.interest = want;
        }
    }
}
