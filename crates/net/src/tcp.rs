//! Real-socket transport: a full TCP mesh of providers.
//!
//! The paper deploys its prototype on physical community-network nodes
//! with ØMQ sockets between them; [`crate::hub`] substitutes in-process
//! channels for speed. This module closes the realism gap: a
//! [`TcpEndpoint`] is one provider's handle onto a full mesh of TCP
//! connections (loopback or LAN), carrying exactly the same
//! session-tagged frames the in-process transport carries, delimited on
//! the byte stream by the wire frames of the [`frame`][mod@crate::frame]
//! module ([`wire_encode`][crate::frame::wire_encode]).
//!
//! Two flavours share the same sockets, bring-up and teardown:
//!
//! * [`TcpEndpoint`] / [`TcpMesh`] — one dedicated mesh, one endpoint
//!   per provider (the original PR-2 transport, still what a single
//!   standalone deployment uses);
//! * [`MuxEndpoint`] / [`MuxMesh`] — **one connection per provider pair
//!   shared by any number of logical lanes** (= hub shards): the lane id
//!   is folded into the u64 tag slot of every wire frame
//!   ([`mux_pack`][crate::frame::mux_pack]), so `N` shards cost the
//!   connection count and thread count of *one* mesh instead of `N`.
//!
//! Topology and threads:
//!
//! * **one TCP connection per provider pair**, used bidirectionally.
//!   Provider `i` dials every peer `j < i` and accepts from every
//!   `j > i`; a 12-byte [`Hello`] (magic, peer id, incarnation number)
//!   identifies the dialler — and which *life* of it, so a restarted
//!   provider's previous incarnation is rejected at admission — and the
//!   mesh comes up regardless of start order. Bring-up is fully
//!   event-driven:
//!   nonblocking `connect` completion, accept readiness and hello bytes
//!   are all observed through an epoll poller — no dial-retry or
//!   accept-poll sleep loops — under one bounded budget
//!   (`DIAL_TIMEOUT`, or [`MeshOptions::budget`]) whose expiry reports
//!   a [`WireError::BringUpExpired`] naming each missing peer.
//!   [`MuxMesh::loopback`] skips the hello dance entirely and wires the
//!   pairs up through one ephemeral listener. `TCP_NODELAY` is set on
//!   every stream, dialled or accepted — the protocol's frames are small
//!   and latency-critical, the worst case for Nagle's algorithm.
//! * **one reactor thread per mesh** (per node, for a multi-host
//!   deployment) drives *every* connection: nonblocking sockets on an
//!   epoll event loop (`reactor`), per-connection
//!   [`FrameAssembler`][crate::FrameAssembler] reassembly on the read
//!   side, and the coalescing-batch discipline on the write side —
//!   frames queue into a **bounded per-connection ring**
//!   (`OUTBOUND_QUEUE_FRAMES`) and leave in one kernel write per batch
//!   (up to `WRITE_COALESCE_BYTES`), exactly the syscall profile of
//!   the old per-peer writer threads. What used to be `2m(m−1)` blocking
//!   threads per mux mesh is now **one thread, independent of both `m`
//!   and the lane count** — the property the thread-accounting tests and
//!   the [`TrafficMetrics::io_threads`][crate::TrafficMetrics::io_threads]
//!   gauge pin down.
//!
//! Shutdown is clean on either a decided session or a ⊥-abort: dropping
//! the endpoint blocks until the reactor has flushed every queued frame
//! of the node to the kernel and half-closed its sockets (FIN *after*
//! the data). Peers observe EOF, and their own
//! [`TcpEndpoint::recv_timeout`] reports [`RecvError::Disconnected`]
//! once every connection is gone — which the engine's drive loops map to
//! the external ⊥ of §3.2.
//!
//! # Example
//!
//! ```
//! use dauctioneer_net::TcpMesh;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut mesh = TcpMesh::loopback(2).unwrap();
//! let mut endpoints = mesh.take_endpoints();
//! let e1 = endpoints.remove(1);
//! let e0 = endpoints.remove(0);
//! e0.send(e1.me(), Bytes::from_static(b"over real sockets"));
//! let (from, payload) = e1.recv_timeout(Duration::from_secs(5)).unwrap();
//! assert_eq!(from, e0.me());
//! assert_eq!(&payload[..], b"over real sockets");
//! ```

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use polling::{connect_nonblocking, Events, Interest, PollMode, Poller};

use dauctioneer_types::ProviderId;

use crate::frame::{WireError, MAX_WIRE_FRAME, MUX_MAX_LANES};
use crate::hello::{Hello, HELLO_LEN};
use crate::hub::RecvError;
use crate::metrics::TrafficMetrics;
use crate::reactor::{self, ConnTx, NodeCloser, NodeIo, NodeSpec, ReactorHandle, WireFormat};

/// Total bring-up budget for [`TcpEndpoint::establish`]: how long dial
/// completion, accept readiness and hello exchange may take before the
/// mesh is reported down ([`WireError::BringUpExpired`]).
const DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// Pacing between redial attempts while a peer's listener comes up.
/// This is an epoll-wait timeout, not a sleep: any other readiness
/// (accepts, other dials) is still processed while a redial is pending.
const DIAL_RETRY: Duration = Duration::from_millis(5);

/// How long an accepted connection gets to present its hello before it
/// is dropped as a stray.
const HELLO_TIMEOUT: Duration = Duration::from_secs(2);

/// Knobs for one mesh bring-up ([`MuxEndpoint::establish_with_options`]).
///
/// The defaults reproduce the classic single-deployment behaviour:
/// incarnation 0 (a process that never died), no per-peer incarnation
/// floor (anything is admissible), and the standard `DIAL_TIMEOUT`
/// budget.
#[derive(Debug, Clone)]
pub struct MeshOptions {
    /// The incarnation number this provider presents in its hellos.
    pub incarnation: u32,
    /// Per-peer minimum incarnation this node honours on accept
    /// (`min_incarnations[j]` for peer `j`); hellos below the floor are
    /// dropped as a previous life. Missing entries default to 0.
    pub min_incarnations: Vec<u32>,
    /// Total bring-up budget (dials, accepts and hellos together).
    pub budget: Duration,
}

impl Default for MeshOptions {
    fn default() -> MeshOptions {
        MeshOptions { incarnation: 0, min_incarnations: Vec::new(), budget: DIAL_TIMEOUT }
    }
}

/// High-water mark for the coalescing write batches: the reactor refills
/// a connection's write buffer from its ring up to this size and issues
/// one kernel write per batch, so a loaded link pays one syscall per
/// *batch*, not per frame — unchanged from the writer-thread design.
pub(crate) const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Bound on a peer connection's outbound ring (frames). Comfortably
/// above what protocol rounds burst; it exists so a peer that stops
/// reading cannot make the sender's memory grow without bound. A full
/// ring briefly blocks the sender until the reactor's batch drain
/// catches up — pure backpressure, never deadlock, since the reactor
/// always keeps draining read sides.
pub(crate) const OUTBOUND_QUEUE_FRAMES: usize = 1024;

/// One provider's handle onto a TCP mesh.
///
/// Constructed either directly with [`TcpEndpoint::establish`] (one call
/// per process, for a real multi-host deployment) or via
/// [`TcpMesh::loopback`] (all providers in one process, over loopback
/// sockets). The API mirrors the in-process
/// [`Endpoint`][crate::Endpoint], so the protocol layer cannot tell the
/// two apart.
#[derive(Debug)]
pub struct TcpEndpoint {
    me: ProviderId,
    m: usize,
    /// Outbound ring per peer (`None` at our own index).
    outbound: Vec<Option<ConnTx>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    metrics: TrafficMetrics,
    closer: Option<NodeCloser>,
    /// Shared by every endpoint the same reactor serves; the last drop
    /// shuts the event loop down.
    reactor: Arc<ReactorHandle>,
}

impl TcpEndpoint {
    /// Join the mesh as provider `me`.
    ///
    /// `addrs[j]` is provider `j`'s listening address; `listener` must be
    /// bound to `addrs[me]`'s port. The call dials every peer with a
    /// smaller id (redialling, event-paced, until its listener is up) and
    /// accepts a connection from every peer with a larger id, so the `m`
    /// providers may start in any order. It returns once all `m − 1`
    /// connections are established. Accepted connections that never
    /// present a valid hello (strays, port scanners) are dropped and
    /// accepting continues.
    ///
    /// # Errors
    ///
    /// Any socket-level failure, or peers that cannot be reached (dial)
    /// or do not connect (accept) within the bring-up budget — the
    /// timeout error wraps [`WireError::BringUpExpired`] naming each
    /// peer still outstanding, so a peer whose own bring-up failed
    /// leaves this call with a diagnosis, never blocked forever.
    pub fn establish(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> io::Result<TcpEndpoint> {
        TcpEndpoint::establish_with(me, listener, addrs, TrafficMetrics::new(addrs.len()))
    }

    /// [`TcpEndpoint::establish`] with caller-supplied (possibly shared)
    /// traffic counters — what [`TcpMesh`] uses so one snapshot covers
    /// the whole in-process mesh.
    pub fn establish_with(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        metrics: TrafficMetrics,
    ) -> io::Result<TcpEndpoint> {
        let m = addrs.len();
        let streams = establish_streams(me, listener, addrs)?;
        let (inbox_tx, inbox) = unbounded();
        let spec = NodeSpec {
            me,
            format: WireFormat::Plain,
            streams,
            lanes: vec![inbox_tx],
            metrics: metrics.clone(),
        };
        let (reactor, mut ios) = reactor::spawn(vec![spec])?;
        let io = ios.pop().expect("one node spec yields one node io");
        Ok(TcpEndpoint::from_parts(me, m, io, inbox, metrics, reactor))
    }

    fn from_parts(
        me: ProviderId,
        m: usize,
        io: NodeIo,
        inbox: Receiver<(ProviderId, Bytes)>,
        metrics: TrafficMetrics,
        reactor: Arc<ReactorHandle>,
    ) -> TcpEndpoint {
        TcpEndpoint {
            me,
            m,
            outbound: io.outbound,
            inbox,
            metrics,
            closer: Some(io.closer),
            reactor,
        }
    }

    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// The endpoint's traffic counters (shared across the mesh when built
    /// by [`TcpMesh`]).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// OS threads doing I/O for this endpoint: the reactor's constant
    /// roster (one), no matter how many peers the mesh has.
    pub fn io_threads(&self) -> usize {
        self.reactor.io_threads()
    }

    /// Queue `payload` for `to`. The reactor performs the socket write;
    /// a send blocks only when the peer's bounded ring is full
    /// (backpressure). Sends to self or to departed peers are dropped
    /// silently (the run is over at that point); payloads exceeding
    /// [`MAX_WIRE_FRAME`] are dropped and
    /// counted rather than queued — a panic inside the shared reactor
    /// would take down the whole mesh's I/O.
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        let Some(Some(conn)) = self.outbound.get(to.index()) else { return };
        self.metrics.record_send(self.me, payload.len());
        if payload.len() > MAX_WIRE_FRAME {
            self.metrics.record_drop(self.me, payload.len());
            return;
        }
        conn.send(0, payload);
    }

    /// Send `payload` to every other provider.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once every peer connection is gone and
    /// the inbox is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // Block until the reactor has flushed every frame still queued in
        // our rings to the kernel and half-closed the sockets (FIN after
        // the data): a decided engine's final sends must reach the peers.
        if let Some(closer) = self.closer.take() {
            closer.close();
        }
        // `reactor` drops with the struct; the last endpoint it serves
        // shuts the event loop down and joins the thread.
    }
}

/// In-flight state of one outgoing (dialling) connection during
/// event-driven bring-up.
#[derive(Debug)]
enum Dial {
    /// Nonblocking connect in flight; writability delivers the verdict.
    Connecting(TcpStream),
    /// Connected; the hello is partially written.
    Hello { stream: TcpStream, sent: usize },
    /// Last attempt failed (listener not up yet); redial at `retry_at`.
    Backoff { retry_at: Instant },
    /// Established and handed to `streams`.
    Done,
}

/// One accepted connection waiting to present its hello.
#[derive(Debug)]
struct PendingHello {
    stream: TcpStream,
    buf: [u8; HELLO_LEN],
    got: usize,
    deadline: Instant,
}

/// The shared mesh bring-up: one connected, [`TCP_NODELAY`]-enabled
/// stream per peer (`None` at our own index), regardless of start order.
///
/// Fully event-driven on a temporary poller: every dial is a nonblocking
/// connect whose completion (or refusal) arrives as writability, redials
/// are paced by the poll timeout instead of sleeps, accepts arrive as
/// listener readability, and hello bytes as connection readability — so
/// a whole mesh's bring-up burns no busy-wait cycles anywhere. Dials
/// present a 4-byte hello; accepted connections must present one within
/// [`HELLO_TIMEOUT`] (port scanners and misdirected clients are dropped,
/// not fatal). The whole bring-up shares one `DIAL_TIMEOUT` budget:
/// expiry reports [`WireError::BringUpExpired`] with the number of
/// connections still missing. Returned streams are nonblocking — their
/// next stop is the reactor's poller.
///
/// [`TCP_NODELAY`]: TcpStream::set_nodelay
fn establish_streams(
    me: ProviderId,
    listener: TcpListener,
    addrs: &[SocketAddr],
) -> io::Result<Vec<Option<TcpStream>>> {
    establish_streams_with(me, listener, addrs, &MeshOptions::default())
}

/// [`establish_streams`] with explicit [`MeshOptions`]: the incarnation
/// this node presents, the per-peer incarnation floor it honours on
/// accept, and the bring-up budget.
fn establish_streams_with(
    me: ProviderId,
    listener: TcpListener,
    addrs: &[SocketAddr],
    options: &MeshOptions,
) -> io::Result<Vec<Option<TcpStream>>> {
    let m = addrs.len();
    assert!(me.index() < m, "provider {me} outside address table of {m}");

    let mut streams: Vec<Option<TcpStream>> = (0..m).map(|_| None).collect();
    let dial_count = me.index();
    let mut expected_accepts = m - 1 - me.index();
    if dial_count == 0 && expected_accepts == 0 {
        return Ok(streams);
    }

    // Poller keys: `0..dial_count` are dials (by peer id), `m` is the
    // listener, `m + 1 ..` are accepted connections awaiting hellos.
    let poller = Poller::new()?;
    let listener_key = m;
    let mut next_pending_key = m + 1;
    let mut pending: HashMap<usize, PendingHello> = HashMap::new();
    let mut events = Events::new();
    let deadline = Instant::now() + options.budget;
    let hello = Hello { peer: me.index() as u32, incarnation: options.incarnation }.encode();

    listener.set_nonblocking(true)?;
    if expected_accepts > 0 {
        poller.add(&listener, listener_key, Interest::READABLE, PollMode::Level)?;
    }
    let mut dials: Vec<Dial> = Vec::with_capacity(dial_count);
    let mut dials_done = 0;
    for (peer, &addr) in addrs.iter().enumerate().take(dial_count) {
        dials.push(start_dial(&poller, peer, addr)?);
    }

    while dials_done < dial_count || expected_accepts > 0 {
        let now = Instant::now();
        if now >= deadline {
            let missing = (0..m)
                .filter(|&peer| peer != me.index() && streams[peer].is_none())
                .map(|peer| format!("provider {peer} @ {}", addrs[peer]))
                .collect();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                WireError::BringUpExpired { missing },
            ));
        }
        // Sleep until the next scheduled redial, hello expiry, or the
        // budget's end — or any readiness, whichever is first.
        let mut wake_at = deadline;
        for dial in &dials {
            if let Dial::Backoff { retry_at } = dial {
                wake_at = wake_at.min(*retry_at);
            }
        }
        for p in pending.values() {
            wake_at = wake_at.min(p.deadline);
        }
        poller.wait(&mut events, Some(wake_at.saturating_duration_since(now)))?;
        let now = Instant::now();

        for ev in events.iter() {
            if ev.key < dial_count {
                advance_dial(&poller, &mut dials[ev.key], &hello, now, &mut |stream| {
                    streams[ev.key] = Some(stream);
                    dials_done += 1;
                });
            } else if ev.key == listener_key {
                // Drain the accept queue; strays join `pending` too and
                // get weeded out by their hello (or its timeout).
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let key = next_pending_key;
                            next_pending_key += 1;
                            if poller.add(&stream, key, Interest::READABLE, PollMode::Level).is_ok()
                            {
                                let deadline = now + HELLO_TIMEOUT;
                                pending.insert(
                                    key,
                                    PendingHello { stream, buf: [0; HELLO_LEN], got: 0, deadline },
                                );
                            }
                        }
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                        Err(err) => return Err(err),
                    }
                }
            } else if let Some(p) = pending.remove(&ev.key) {
                if let Some((hello, stream)) = advance_hello(&poller, p, ev.key, &mut pending) {
                    // A well-formed hello from a peer we are actually
                    // waiting for, at an admissible incarnation; strays
                    // and previous lives of restarted peers are dropped.
                    let peer = hello.peer as usize;
                    if peer > me.index()
                        && hello.admissible(m, &options.min_incarnations)
                        && streams[peer].is_none()
                    {
                        let _ = stream.set_nodelay(true);
                        streams[peer] = Some(stream);
                        expected_accepts -= 1;
                    }
                }
            }
        }

        // Fire due redials and expire stale hellos.
        for (peer, dial) in dials.iter_mut().enumerate() {
            if matches!(dial, Dial::Backoff { retry_at } if *retry_at <= now) {
                *dial = start_dial(&poller, peer, addrs[peer])?;
            }
        }
        pending.retain(|_, p| {
            if p.deadline <= now {
                let _ = poller.delete(&p.stream);
                false
            } else {
                true
            }
        });
    }
    Ok(streams)
}

/// Begin (or re-begin) one nonblocking dial, registering it for
/// writability. A synchronous failure (no route, etc.) becomes a paced
/// backoff, exactly like a refused connect — the peer may simply not be
/// up yet, and the budget in [`establish_streams`] bounds the retrying.
fn start_dial(poller: &Poller, peer: usize, addr: SocketAddr) -> io::Result<Dial> {
    match connect_nonblocking(addr) {
        Ok(stream) => {
            poller.add(&stream, peer, Interest::WRITABLE, PollMode::Level)?;
            Ok(Dial::Connecting(stream))
        }
        Err(_) => Ok(Dial::Backoff { retry_at: Instant::now() + DIAL_RETRY }),
    }
}

/// Writability on a dialling connection: resolve the connect verdict
/// (`SO_ERROR`), then push hello bytes until done or `WouldBlock`.
/// Calls `complete` with the established stream on success.
fn advance_dial(
    poller: &Poller,
    dial: &mut Dial,
    hello: &[u8; HELLO_LEN],
    now: Instant,
    complete: &mut dyn FnMut(TcpStream),
) {
    let state = std::mem::replace(dial, Dial::Backoff { retry_at: now + DIAL_RETRY });
    let (stream, mut sent) = match state {
        Dial::Connecting(stream) => match stream.take_error() {
            Ok(None) => (stream, 0),
            Ok(Some(_)) | Err(_) => {
                // Refused (listener not up yet) or failed: redial later.
                let _ = poller.delete(&stream);
                return;
            }
        },
        Dial::Hello { stream, sent } => (stream, sent),
        done_or_backoff => {
            *dial = done_or_backoff; // stale event: nothing to advance
            return;
        }
    };
    loop {
        match (&stream).write(&hello[sent..]) {
            Ok(n) => {
                sent += n;
                if sent == hello.len() {
                    let _ = poller.delete(&stream);
                    let _ = stream.set_nodelay(true);
                    complete(stream);
                    *dial = Dial::Done;
                    return;
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                *dial = Dial::Hello { stream, sent };
                return;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                let _ = poller.delete(&stream);
                return; // connection died mid-hello: redial later
            }
        }
    }
}

/// Readability on an accepted connection: read hello bytes. Returns the
/// decoded `(hello, stream)` once the hello is complete; re-inserts
/// into `pending` on `WouldBlock`; drops torn or silent strays and
/// connections whose magic does not decode as a [`Hello`].
fn advance_hello(
    poller: &Poller,
    mut p: PendingHello,
    key: usize,
    pending: &mut HashMap<usize, PendingHello>,
) -> Option<(Hello, TcpStream)> {
    loop {
        match (&p.stream).read(&mut p.buf[p.got..]) {
            Ok(0) => {
                let _ = poller.delete(&p.stream);
                return None; // torn before the hello finished: drop
            }
            Ok(n) => {
                p.got += n;
                if p.got == p.buf.len() {
                    let _ = poller.delete(&p.stream);
                    return Hello::decode(&p.buf).map(|hello| (hello, p.stream));
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                pending.insert(key, p);
                return None;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                let _ = poller.delete(&p.stream);
                return None;
            }
        }
    }
}

/// A full in-process TCP mesh over loopback sockets: every provider pair
/// connected, all endpoints sharing one set of traffic counters **and
/// one reactor thread**.
///
/// This is the single-host stand-in for a real LAN deployment (where each
/// provider process calls [`TcpEndpoint::establish`] itself); it is what
/// the batch layer and the benchmarks use for the `Tcp` backend.
#[derive(Debug)]
pub struct TcpMesh {
    endpoints: Vec<TcpEndpoint>,
    metrics: TrafficMetrics,
}

impl TcpMesh {
    /// Bring up a full mesh of `m` providers over `127.0.0.1` (ephemeral
    /// ports), establishing all connections concurrently, then driving
    /// every node from **one** shared reactor thread.
    ///
    /// # Errors
    ///
    /// Any socket-level failure while binding or connecting.
    pub fn loopback(m: usize) -> io::Result<TcpMesh> {
        let metrics = TrafficMetrics::new(m);
        let mut listeners = Vec::with_capacity(m);
        let mut addrs = Vec::with_capacity(m);
        for _ in 0..m {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        // Bring every node's connections up concurrently: the dial /
        // accept / hello protocol needs all nodes progressing at once.
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let addrs = addrs.clone();
                std::thread::Builder::new()
                    .name(format!("tcp-mesh-up-{i}"))
                    .spawn(move || establish_streams(ProviderId(i as u32), listener, &addrs))
                    .expect("spawn mesh bring-up thread")
            })
            .collect();
        // Join every bring-up thread before reporting, so a failure on
        // one provider (its peers unblock at the bring-up deadline) never
        // leaves detached threads behind.
        let mut rows = Vec::with_capacity(m);
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("mesh bring-up thread panicked") {
                Ok(row) => rows.push(row),
                Err(err) => first_err = first_err.or(Some(err)),
            }
        }
        if let Some(err) = first_err {
            return Err(err);
        }
        // One reactor serves all m nodes.
        let mut specs = Vec::with_capacity(m);
        let mut inboxes = Vec::with_capacity(m);
        for (i, row) in rows.into_iter().enumerate() {
            let (inbox_tx, inbox_rx) = unbounded();
            specs.push(NodeSpec {
                me: ProviderId(i as u32),
                format: WireFormat::Plain,
                streams: row,
                lanes: vec![inbox_tx],
                metrics: metrics.clone(),
            });
            inboxes.push(inbox_rx);
        }
        let (reactor, ios) = reactor::spawn(specs)?;
        let endpoints = ios
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(i, (io, inbox))| {
                TcpEndpoint::from_parts(
                    ProviderId(i as u32),
                    m,
                    io,
                    inbox,
                    metrics.clone(),
                    Arc::clone(&reactor),
                )
            })
            .collect();
        Ok(TcpMesh { endpoints, metrics })
    }

    /// Take ownership of the endpoints (one per provider, in id order).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<TcpEndpoint> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The mesh's shared traffic counters.
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }
}

/// One provider's share of the reactor wiring that **every lane
/// shares**. Lane endpoints hold it behind an [`Arc`]; when the last one
/// drops, the node's rings are flushed and its sockets half-closed —
/// drain-then-shutdown exactly like [`TcpEndpoint`]'s.
#[derive(Debug)]
struct MuxNodeCore {
    closer: Option<NodeCloser>,
    /// Keeps the event loop alive while any lane endpoint lives.
    reactor: Arc<ReactorHandle>,
}

impl Drop for MuxNodeCore {
    fn drop(&mut self) {
        // Reached only after every lane endpoint of this provider is
        // gone; the reactor drains every lane's final frames to the
        // kernel before half-closing and acking.
        if let Some(closer) = self.closer.take() {
            closer.close();
        }
    }
}

/// One provider's handle onto **one lane** of a multiplexed TCP mesh.
///
/// All lanes of a provider share the same physical sockets and the
/// mesh's single reactor thread ([`MuxMesh`]); a lane is purely a
/// routing namespace — the lane id is folded into the u64 tag slot of
/// every wire frame ([`mux_pack`][crate::frame::mux_pack]) and incoming
/// frames are demultiplexed to the lane's own inbox. The API mirrors
/// [`TcpEndpoint`], so the protocol layer cannot tell a lane of a shared
/// mesh from a dedicated mesh.
#[derive(Debug)]
pub struct MuxEndpoint {
    me: ProviderId,
    m: usize,
    lane: usize,
    /// Per-peer shared outbound rings (`None` at our own index).
    outbound: Vec<Option<ConnTx>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    metrics: TrafficMetrics,
    core: Arc<MuxNodeCore>,
}

impl MuxEndpoint {
    /// Join a multiplexed mesh as provider `me`, returning one endpoint
    /// per lane (this is the multi-host entry point; in-process callers
    /// use [`MuxMesh::loopback`]). `addrs[j]` is provider `j`'s
    /// listening address; `listener` must be bound to `addrs[me]`'s
    /// port. All providers must agree on `lanes`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure, or peers unreachable within the
    /// bring-up budget — as for [`TcpEndpoint::establish`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds
    /// [`MUX_MAX_LANES`].
    pub fn establish(
        me: ProviderId,
        lanes: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> io::Result<Vec<MuxEndpoint>> {
        MuxEndpoint::establish_with_options(me, lanes, listener, addrs, &MeshOptions::default())
    }

    /// [`MuxEndpoint::establish`] with explicit [`MeshOptions`] — the
    /// multi-process deployment's entry point: the provider presents its
    /// coordinator-assigned incarnation in every hello, refuses hellos
    /// below each peer's incarnation floor (stale dials from a killed
    /// peer's previous life), and bounds bring-up by the caller's
    /// budget rather than the default `DIAL_TIMEOUT`.
    ///
    /// # Errors
    ///
    /// As for [`MuxEndpoint::establish`].
    ///
    /// # Panics
    ///
    /// As for [`MuxEndpoint::establish`].
    pub fn establish_with_options(
        me: ProviderId,
        lanes: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        options: &MeshOptions,
    ) -> io::Result<Vec<MuxEndpoint>> {
        let m = addrs.len();
        let streams = establish_streams_with(me, listener, addrs, options)?;
        let metrics = TrafficMetrics::new(m);
        let (lane_txs, lane_rxs) = make_lane_channels(lanes);
        let spec = NodeSpec {
            me,
            format: WireFormat::Mux,
            streams,
            lanes: lane_txs,
            metrics: metrics.clone(),
        };
        let (reactor, mut ios) = reactor::spawn(vec![spec])?;
        let io = ios.pop().expect("one node spec yields one node io");
        Ok(build_lane_endpoints(me, m, io, lane_rxs, metrics, &reactor))
    }

    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// The lane this endpoint sends and receives on.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// The endpoint's traffic counters (shared across the whole mesh).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// OS threads doing I/O for this provider's node: the reactor's
    /// constant roster (one), shared by **all** of its lanes and — for a
    /// loopback mesh — all of its fellow providers, no matter how many
    /// peers or lanes are multiplexed.
    pub fn io_threads(&self) -> usize {
        self.core.reactor.io_threads()
    }

    /// Queue `payload` for `to` on this lane. The reactor folds the lane
    /// into the wire tag and performs the socket write; sends to self or
    /// to departed peers are dropped silently (the run is over at that
    /// point).
    ///
    /// Payloads too large for even the raw-escape wire frame (within 8
    /// header bytes of [`MAX_WIRE_FRAME`])
    /// are dropped and counted rather than queued: protocol messages are
    /// orders of magnitude smaller, and a panic inside the shared
    /// reactor thread would take down **every** lane's traffic to every
    /// peer.
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        let Some(Some(conn)) = self.outbound.get(to.index()) else { return };
        self.metrics.record_send(self.me, payload.len());
        if payload.len() > MAX_WIRE_FRAME - 8 {
            self.metrics.record_drop(self.me, payload.len());
            return;
        }
        conn.send(self.lane, payload);
    }

    /// Send `payload` to every other provider on this lane, sharing the
    /// same frozen buffer across all peers.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message on this lane, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once every peer connection is gone
    /// and the lane inbox is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

/// Per-lane inbox channels for one node.
///
/// # Panics
///
/// Panics if `lanes` is zero or exceeds [`MUX_MAX_LANES`].
#[allow(clippy::type_complexity)]
fn make_lane_channels(
    lanes: usize,
) -> (Vec<Sender<(ProviderId, Bytes)>>, Vec<Receiver<(ProviderId, Bytes)>>) {
    assert!(lanes > 0, "a mux mesh has at least one lane");
    assert!(lanes <= MUX_MAX_LANES, "{lanes} lanes exceed the {MUX_MAX_LANES}-lane tag space");
    (0..lanes).map(|_| unbounded()).unzip()
}

/// Wrap one node's reactor wiring into its per-lane endpoints.
fn build_lane_endpoints(
    me: ProviderId,
    m: usize,
    io: NodeIo,
    lane_rxs: Vec<Receiver<(ProviderId, Bytes)>>,
    metrics: TrafficMetrics,
    reactor: &Arc<ReactorHandle>,
) -> Vec<MuxEndpoint> {
    let core = Arc::new(MuxNodeCore { closer: Some(io.closer), reactor: Arc::clone(reactor) });
    lane_rxs
        .into_iter()
        .enumerate()
        .map(|(lane, inbox)| MuxEndpoint {
            me,
            m,
            lane,
            outbound: io.outbound.clone(),
            inbox,
            metrics: metrics.clone(),
            core: Arc::clone(&core),
        })
        .collect()
}

/// A full multiplexed TCP mesh over loopback sockets: **one connection
/// per provider pair, shared by every lane**, with `lanes` logical
/// endpoint sets demultiplexed over it — all driven by **one reactor
/// thread**.
///
/// This is what [`ShardedHub`][crate::ShardedHub]'s socket flavour rides
/// on: `N` shards become `N` lanes over one physical mesh, so the
/// connection count is `m(m−1)/2` and the I/O thread count **one** —
/// both independent of the shard count, where the previous design paid
/// `2m(m−1)` blocking reader/writer threads (and, before that, a whole
/// mesh per shard).
///
/// # Example
///
/// ```
/// use dauctioneer_net::MuxMesh;
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut mesh = MuxMesh::loopback(2, 2).unwrap();
/// assert_eq!(mesh.io_threads(), 1);
/// let lanes = mesh.take_lane_endpoints();
/// // lanes[lane][provider]: two isolated namespaces, one socket.
/// lanes[1][0].send(lanes[1][1].me(), Bytes::from_static(b"lane one"));
/// let (from, payload) = lanes[1][1].recv_timeout(Duration::from_secs(5)).unwrap();
/// assert_eq!(from, lanes[0][0].me());
/// assert_eq!(&payload[..], b"lane one");
/// assert!(lanes[0][1].try_recv().is_none(), "lane 0 saw nothing");
/// ```
#[derive(Debug)]
pub struct MuxMesh {
    /// `endpoints[lane][provider]`.
    endpoints: Vec<Vec<MuxEndpoint>>,
    metrics: TrafficMetrics,
    io_threads: usize,
}

impl MuxMesh {
    /// Bring up a full mesh of `m` providers over `127.0.0.1` with
    /// `lanes` multiplexed lanes, one TCP connection per provider pair,
    /// one reactor thread for the whole mesh.
    ///
    /// Connections are created pairwise through one ephemeral listener —
    /// no per-provider listeners, hello exchanges, or retry sleeps — so
    /// in-process bring-up is cheap enough to pay per batch.
    ///
    /// # Errors
    ///
    /// Any socket-level failure while binding or connecting.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds
    /// [`MUX_MAX_LANES`].
    pub fn loopback(m: usize, lanes: usize) -> io::Result<MuxMesh> {
        let metrics = TrafficMetrics::new(m);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let mut rows: Vec<Vec<Option<TcpStream>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let pairs = (0..m).flat_map(|i| ((i + 1)..m).map(move |j| (i, j)));
        for (i, j) in pairs {
            // Connect, then immediately accept our own connection. The
            // accepted stream's peer address must be the one we just
            // dialled from — anything else is a stray (port scanner,
            // misdirected client) that must not be wired into the mesh;
            // drop it and keep accepting for our own connection.
            let ours = TcpStream::connect(addr)?;
            let ours_addr = ours.local_addr()?;
            let theirs = loop {
                let (candidate, peer) = listener.accept()?;
                if peer == ours_addr {
                    break candidate;
                }
            };
            ours.set_nodelay(true)?;
            theirs.set_nodelay(true)?;
            rows[i][j] = Some(ours);
            rows[j][i] = Some(theirs);
        }
        // One reactor serves all m nodes × all lanes.
        let mut specs = Vec::with_capacity(m);
        let mut rx_rows = Vec::with_capacity(m);
        for (i, row) in rows.into_iter().enumerate() {
            let (lane_txs, lane_rxs) = make_lane_channels(lanes);
            specs.push(NodeSpec {
                me: ProviderId(i as u32),
                format: WireFormat::Mux,
                streams: row,
                lanes: lane_txs,
                metrics: metrics.clone(),
            });
            rx_rows.push(lane_rxs);
        }
        let (reactor, ios) = reactor::spawn(specs)?;
        let io_threads = reactor.io_threads();
        let per_provider: Vec<Vec<MuxEndpoint>> = ios
            .into_iter()
            .zip(rx_rows)
            .enumerate()
            .map(|(i, (io, lane_rxs))| {
                build_lane_endpoints(
                    ProviderId(i as u32),
                    m,
                    io,
                    lane_rxs,
                    metrics.clone(),
                    &reactor,
                )
            })
            .collect();
        // Transpose [provider][lane] → [lane][provider].
        let mut endpoints: Vec<Vec<MuxEndpoint>> = (0..lanes).map(|_| Vec::new()).collect();
        for provider_lanes in per_provider {
            for (lane, endpoint) in provider_lanes.into_iter().enumerate() {
                endpoints[lane].push(endpoint);
            }
        }
        Ok(MuxMesh { endpoints, metrics, io_threads })
    }

    /// Number of lanes multiplexed over the mesh.
    pub fn num_lanes(&self) -> usize {
        self.endpoints.len()
    }

    /// Take ownership of the endpoints: `result[lane][provider]`.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_lane_endpoints(&mut self) -> Vec<Vec<MuxEndpoint>> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The mesh's shared traffic counters (all lanes, all providers).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// Total I/O threads serving the mesh: **one reactor**, independent
    /// of both the provider count and the lane count — the accounting
    /// the thread-roster tests pin down against the old per-peer
    /// `2m(m−1)` reader/writer design.
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }
}
