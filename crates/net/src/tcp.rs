//! Real-socket transport: a full TCP mesh of providers.
//!
//! The paper deploys its prototype on physical community-network nodes
//! with ØMQ sockets between them; [`crate::hub`] substitutes in-process
//! channels for speed. This module closes the realism gap: a
//! [`TcpEndpoint`] is one provider's handle onto a full mesh of TCP
//! connections (loopback or LAN), carrying exactly the same
//! session-tagged frames the in-process transport carries, delimited on
//! the byte stream by the wire frames of the [`frame`][mod@crate::frame]
//! module ([`wire_encode`]).
//!
//! Topology and threads:
//!
//! * **one TCP connection per provider pair**, used bidirectionally.
//!   Provider `i` dials every peer `j < i` and accepts from every
//!   `j > i`; a 4-byte hello identifies the dialler, so the mesh comes up
//!   regardless of start order (dialling retries until the peer listens).
//! * **one reader thread per peer** — blocks on the socket, splits wire
//!   frames off the stream, and forwards `(peer, payload)` into the
//!   endpoint's inbox. A corrupt length header
//!   ([`MAX_WIRE_FRAME`][crate::frame::MAX_WIRE_FRAME]) tears the
//!   connection down rather than trusting it.
//! * **one writer thread per peer** — drains an unbounded outbound queue,
//!   so [`TcpEndpoint::send`] never blocks the protocol loop (mirroring
//!   the asynchronous sends of the paper's ØMQ prototype).
//!
//! Shutdown is clean on either a decided session or a ⊥-abort: dropping
//! the endpoint first lets the writers drain every queued frame, then
//! shuts the sockets down to unblock the readers, then joins all threads.
//! Peers observe EOF, their readers exit, and their own
//! [`TcpEndpoint::recv_timeout`] reports [`RecvError::Disconnected`] once
//! every connection is gone — which the engine's drive loops map to the
//! external ⊥ of §3.2.
//!
//! # Example
//!
//! ```
//! use dauctioneer_net::TcpMesh;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut mesh = TcpMesh::loopback(2).unwrap();
//! let mut endpoints = mesh.take_endpoints();
//! let e1 = endpoints.remove(1);
//! let e0 = endpoints.remove(0);
//! e0.send(e1.me(), Bytes::from_static(b"over real sockets"));
//! let (from, payload) = e1.recv_timeout(Duration::from_secs(5)).unwrap();
//! assert_eq!(from, e0.me());
//! assert_eq!(&payload[..], b"over real sockets");
//! ```

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use dauctioneer_types::ProviderId;

use crate::frame::{wire_decode, wire_encode};
use crate::hub::RecvError;
use crate::metrics::TrafficMetrics;

/// How long [`TcpEndpoint::establish`] keeps re-dialling a peer whose
/// listener is not up yet before giving up on the mesh.
const DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// Pause between redial attempts while a peer's listener comes up.
const DIAL_RETRY: Duration = Duration::from_millis(5);

/// How long an accepted connection gets to present its 4-byte hello
/// before it is dropped as a stray.
const HELLO_TIMEOUT: Duration = Duration::from_secs(2);

/// One provider's handle onto a TCP mesh.
///
/// Constructed either directly with [`TcpEndpoint::establish`] (one call
/// per process, for a real multi-host deployment) or via
/// [`TcpMesh::loopback`] (all providers in one process, over loopback
/// sockets). The API mirrors the in-process
/// [`Endpoint`][crate::Endpoint], so the protocol layer cannot tell the
/// two apart.
#[derive(Debug)]
pub struct TcpEndpoint {
    me: ProviderId,
    m: usize,
    /// Outbound queue per peer (`None` at our own index).
    outbound: Vec<Option<Sender<Bytes>>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    /// Our handle on each peer connection, kept to shut readers down.
    streams: Vec<Option<TcpStream>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    metrics: TrafficMetrics,
}

impl TcpEndpoint {
    /// Join the mesh as provider `me`.
    ///
    /// `addrs[j]` is provider `j`'s listening address; `listener` must be
    /// bound to `addrs[me]`'s port. The call dials every peer with a
    /// smaller id (retrying until its listener is up) and accepts a
    /// connection from every peer with a larger id, so the `m` providers
    /// may start in any order. It returns once all `m − 1` connections
    /// are established. Accepted connections that never present a valid
    /// hello (strays, port scanners) are dropped and accepting continues.
    ///
    /// # Errors
    ///
    /// Any socket-level failure, or peers that cannot be reached (dial)
    /// or do not connect (accept) within the bring-up timeout — so a
    /// peer whose own bring-up failed leaves this call with an error
    /// after the timeout, never blocked forever.
    pub fn establish(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> io::Result<TcpEndpoint> {
        TcpEndpoint::establish_with(me, listener, addrs, TrafficMetrics::new(addrs.len()))
    }

    /// [`TcpEndpoint::establish`] with caller-supplied (possibly shared)
    /// traffic counters — what [`TcpMesh`] uses so one snapshot covers
    /// the whole in-process mesh.
    pub fn establish_with(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        metrics: TrafficMetrics,
    ) -> io::Result<TcpEndpoint> {
        let m = addrs.len();
        assert!(me.index() < m, "provider {me} outside address table of {m}");

        let mut streams: Vec<Option<TcpStream>> = (0..m).map(|_| None).collect();

        // Dial every smaller id; the listener may not be up yet, so retry.
        for peer in 0..me.index() {
            let mut stream = dial(addrs[peer])?;
            stream.write_all(&(me.index() as u32).to_le_bytes())?;
            streams[peer] = Some(stream);
        }
        // Accept from every larger id; the hello tells us who dialled.
        // The whole accept phase shares one deadline — a peer whose own
        // bring-up failed must not leave us blocked forever — and
        // connections that never present a valid hello (port scanners,
        // misdirected clients) are dropped, not fatal.
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + DIAL_TIMEOUT;
        let mut expected = m - 1 - me.index();
        while expected > 0 {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(HELLO_TIMEOUT))?;
                    let mut hello = [0u8; 4];
                    if stream.read_exact(&mut hello).is_err() {
                        continue; // silent or torn connection: drop it
                    }
                    let peer = u32::from_le_bytes(hello) as usize;
                    if peer <= me.index() || peer >= m || streams[peer].is_some() {
                        continue; // not a mesh peer we are waiting for: drop
                    }
                    stream.set_read_timeout(None)?;
                    stream.set_nodelay(true)?;
                    streams[peer] = Some(stream);
                    expected -= 1;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("provider {me}: {expected} peer(s) failed to connect"),
                        ));
                    }
                    std::thread::sleep(DIAL_RETRY);
                }
                Err(err) => return Err(err),
            }
        }

        // Spawn the per-peer reader/writer pairs.
        let (inbox_tx, inbox) = unbounded();
        let mut outbound: Vec<Option<Sender<Bytes>>> = (0..m).map(|_| None).collect();
        let mut threads = Vec::with_capacity(2 * m.saturating_sub(1));
        for (peer, slot) in streams.iter().enumerate() {
            let Some(stream) = slot else { continue };
            let peer_id = ProviderId(peer as u32);

            let reader = stream.try_clone()?;
            let tx = inbox_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-read-{me}-{peer_id}"))
                    .spawn(move || read_loop(reader, peer_id, tx))
                    .expect("spawn tcp reader"),
            );

            let writer = stream.try_clone()?;
            let (out_tx, out_rx) = unbounded::<Bytes>();
            outbound[peer] = Some(out_tx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-write-{me}-{peer_id}"))
                    .spawn(move || write_loop(writer, out_rx))
                    .expect("spawn tcp writer"),
            );
        }
        // `inbox_tx` clones live only in reader threads now: when the last
        // peer connection dies, the inbox disconnects.
        drop(inbox_tx);

        Ok(TcpEndpoint { me, m, outbound, inbox, streams, threads, metrics })
    }

    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// The endpoint's traffic counters (shared across the mesh when built
    /// by [`TcpMesh`]).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// Queue `payload` for `to`. Never blocks: the per-peer writer thread
    /// performs the socket write. Sends to self or to departed peers are
    /// dropped silently (the run is over at that point).
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        let Some(Some(queue)) = self.outbound.get(to.index()) else { return };
        self.metrics.record_send(self.me, payload.len());
        let _ = queue.send(payload);
    }

    /// Send `payload` to every other provider.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once every peer connection is gone and
    /// the inbox is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // 1. Close the outbound queues; each writer drains what is queued
        //    (a decided engine's final sends must reach the peers), half-
        //    closes its socket, and exits on the queue disconnect.
        for queue in &mut self.outbound {
            queue.take();
        }
        let (writers, readers): (Vec<_>, Vec<_>) = self
            .threads
            .drain(..)
            .partition(|t| t.thread().name().is_some_and(|n| n.starts_with("tcp-write")));
        for writer in writers {
            let _ = writer.join();
        }
        // 2. Only after every queued frame is flushed, tear the sockets
        //    down fully so our blocked readers return and can be joined.
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }
    }
}

/// Dial `addr`, retrying while the peer's listener comes up.
fn dial(addr: SocketAddr) -> io::Result<TcpStream> {
    let deadline = Instant::now() + DIAL_TIMEOUT;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(DIAL_RETRY);
            }
            Err(err) => return Err(err),
        }
    }
}

/// Reader half of one peer connection: split wire frames off the stream
/// with [`wire_decode`] — the same decoder the frame tests exercise —
/// and forward them to the inbox until the connection dies.
fn read_loop(mut stream: TcpStream, peer: ProviderId, inbox: Sender<(ProviderId, Bytes)>) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or torn connection: peer gone
            Ok(n) => n,
        };
        pending.extend_from_slice(&chunk[..n]);
        let mut consumed_total = 0;
        loop {
            match wire_decode(&pending[consumed_total..]) {
                Ok(Some((payload, consumed))) => {
                    if inbox.send((peer, Bytes::copy_from_slice(payload))).is_err() {
                        return; // endpoint dropped: nobody listens any more
                    }
                    consumed_total += consumed;
                }
                Ok(None) => break, // truncated: need more bytes from the socket
                Err(_) => {
                    // Corrupt or hostile length header: impossible to
                    // resynchronise a byte stream past it, so drop the
                    // connection.
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        pending.drain(..consumed_total);
    }
}

/// Writer half of one peer connection: drain the outbound queue onto the
/// socket, one wire frame per message, until the queue disconnects (clean
/// shutdown) or the socket dies (peer gone).
fn write_loop(mut stream: TcpStream, outbound: Receiver<Bytes>) {
    while let Ok(payload) = outbound.recv() {
        if stream.write_all(&wire_encode(&payload)).is_err() {
            return;
        }
    }
    // Queue closed: flush politely and let the peer see EOF.
    let _ = stream.shutdown(Shutdown::Write);
}

/// A full in-process TCP mesh over loopback sockets: every provider pair
/// connected, all endpoints sharing one set of traffic counters.
///
/// This is the single-host stand-in for a real LAN deployment (where each
/// provider process calls [`TcpEndpoint::establish`] itself); it is what
/// the batch layer and the benchmarks use for the `Tcp` backend.
#[derive(Debug)]
pub struct TcpMesh {
    endpoints: Vec<TcpEndpoint>,
    metrics: TrafficMetrics,
}

impl TcpMesh {
    /// Bring up a full mesh of `m` providers over `127.0.0.1` (ephemeral
    /// ports), establishing all connections concurrently.
    ///
    /// # Errors
    ///
    /// Any socket-level failure while binding or connecting.
    pub fn loopback(m: usize) -> io::Result<TcpMesh> {
        let metrics = TrafficMetrics::new(m);
        let mut listeners = Vec::with_capacity(m);
        let mut addrs = Vec::with_capacity(m);
        for _ in 0..m {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let addrs = addrs.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("tcp-mesh-up-{i}"))
                    .spawn(move || {
                        TcpEndpoint::establish_with(ProviderId(i as u32), listener, &addrs, metrics)
                    })
                    .expect("spawn mesh bring-up thread")
            })
            .collect();
        // Join every bring-up thread before reporting, so a failure on
        // one provider (its peers unblock at the accept deadline) never
        // leaves detached threads behind.
        let mut endpoints = Vec::with_capacity(m);
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("mesh bring-up thread panicked") {
                Ok(endpoint) => endpoints.push(endpoint),
                Err(err) => first_err = first_err.or(Some(err)),
            }
        }
        match first_err {
            None => Ok(TcpMesh { endpoints, metrics }),
            Some(err) => Err(err),
        }
    }

    /// Take ownership of the endpoints (one per provider, in id order).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<TcpEndpoint> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The mesh's shared traffic counters.
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }
}
