//! Real-socket transport: a full TCP mesh of providers.
//!
//! The paper deploys its prototype on physical community-network nodes
//! with ØMQ sockets between them; [`crate::hub`] substitutes in-process
//! channels for speed. This module closes the realism gap: a
//! [`TcpEndpoint`] is one provider's handle onto a full mesh of TCP
//! connections (loopback or LAN), carrying exactly the same
//! session-tagged frames the in-process transport carries, delimited on
//! the byte stream by the wire frames of the [`frame`][mod@crate::frame]
//! module ([`wire_encode`][crate::frame::wire_encode]).
//!
//! Two flavours share the same sockets, bring-up and teardown:
//!
//! * [`TcpEndpoint`] / [`TcpMesh`] — one dedicated mesh, one endpoint
//!   per provider (the original PR-2 transport, still what a single
//!   standalone deployment uses);
//! * [`MuxEndpoint`] / [`MuxMesh`] — **one connection per provider pair
//!   shared by any number of logical lanes** (= hub shards): the lane id
//!   is folded into the u64 tag slot of every wire frame
//!   ([`mux_pack`][crate::frame::mux_pack]), so `N` shards cost the
//!   connection count and thread count of *one* mesh instead of `N`.
//!
//! Topology and threads:
//!
//! * **one TCP connection per provider pair**, used bidirectionally.
//!   Provider `i` dials every peer `j < i` and accepts from every
//!   `j > i`; a 4-byte hello identifies the dialler, so the mesh comes up
//!   regardless of start order (dialling retries until the peer listens).
//!   [`MuxMesh::loopback`] skips the hello dance entirely and wires the
//!   pairs up through one ephemeral listener. `TCP_NODELAY` is set on
//!   every stream, dialled or accepted — the protocol's frames are small
//!   and latency-critical, the worst case for Nagle's algorithm.
//! * **one reader thread per peer** — blocks on the socket, splits wire
//!   frames off the stream, and forwards `(peer, payload)` into the
//!   endpoint's inbox (the lane's inbox, for a mux). A corrupt length
//!   header ([`MAX_WIRE_FRAME`][crate::frame::MAX_WIRE_FRAME]) tears the
//!   connection down rather than trusting it.
//! * **one coalescing writer thread per peer** — drains the outbound
//!   queue in batches into one reused buffer and issues a single
//!   `write_all` per batch, so [`TcpEndpoint::send`] never blocks the
//!   protocol loop (mirroring the asynchronous sends of the paper's ØMQ
//!   prototype) and a loaded link pays one syscall per *batch*, not per
//!   frame.
//!
//! Shutdown is clean on either a decided session or a ⊥-abort: dropping
//! the endpoint first lets the writers drain every queued frame, then
//! shuts the sockets down to unblock the readers, then joins all threads.
//! Peers observe EOF, their readers exit, and their own
//! [`TcpEndpoint::recv_timeout`] reports [`RecvError::Disconnected`] once
//! every connection is gone — which the engine's drive loops map to the
//! external ⊥ of §3.2.
//!
//! # Example
//!
//! ```
//! use dauctioneer_net::TcpMesh;
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let mut mesh = TcpMesh::loopback(2).unwrap();
//! let mut endpoints = mesh.take_endpoints();
//! let e1 = endpoints.remove(1);
//! let e0 = endpoints.remove(0);
//! e0.send(e1.me(), Bytes::from_static(b"over real sockets"));
//! let (from, payload) = e1.recv_timeout(Duration::from_secs(5)).unwrap();
//! assert_eq!(from, e0.me());
//! assert_eq!(&payload[..], b"over real sockets");
//! ```

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};

use dauctioneer_types::ProviderId;

use crate::frame::{mux_frame_into, mux_unframe, wire_decode, wire_encode_into, MUX_MAX_LANES};
use crate::hub::RecvError;
use crate::metrics::TrafficMetrics;

/// How long [`TcpEndpoint::establish`] keeps re-dialling a peer whose
/// listener is not up yet before giving up on the mesh.
const DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// Pause between redial attempts while a peer's listener comes up.
const DIAL_RETRY: Duration = Duration::from_millis(5);

/// Pause between accept polls while waiting for higher-id peers. Much
/// shorter than [`DIAL_RETRY`]: on a busy single-core host the dialling
/// peer often just hasn't been scheduled yet, and a millisecond-scale
/// sleep here used to dominate whole-mesh bring-up (it is paid once per
/// accepted connection).
const ACCEPT_POLL: Duration = Duration::from_micros(200);

/// How long an accepted connection gets to present its 4-byte hello
/// before it is dropped as a stray.
const HELLO_TIMEOUT: Duration = Duration::from_secs(2);

/// High-water mark for the coalescing writers: a flush is issued once
/// the batch buffer reaches this size even if more frames are queued,
/// so one `write_all` stays comfortably inside socket buffers.
const WRITE_COALESCE_BYTES: usize = 256 * 1024;

/// Bound on a peer's outbound queue (messages). Comfortably above what
/// protocol rounds burst; it exists so a peer that stops reading cannot
/// make the sender's memory grow without bound. A full queue briefly
/// blocks the sender until the writer's batch drain catches up — pure
/// backpressure, never deadlock, since readers always drain their side.
/// (Crossbeam preallocates the ring, so the bound is also sized to keep
/// per-mesh bring-up cost trivial.)
const OUTBOUND_QUEUE_FRAMES: usize = 1024;

/// One provider's handle onto a TCP mesh.
///
/// Constructed either directly with [`TcpEndpoint::establish`] (one call
/// per process, for a real multi-host deployment) or via
/// [`TcpMesh::loopback`] (all providers in one process, over loopback
/// sockets). The API mirrors the in-process
/// [`Endpoint`][crate::Endpoint], so the protocol layer cannot tell the
/// two apart.
#[derive(Debug)]
pub struct TcpEndpoint {
    me: ProviderId,
    m: usize,
    /// Outbound queue per peer (`None` at our own index).
    outbound: Vec<Option<Sender<Bytes>>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    /// Our handle on each peer connection, kept to shut readers down.
    streams: Vec<Option<TcpStream>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    metrics: TrafficMetrics,
}

impl TcpEndpoint {
    /// Join the mesh as provider `me`.
    ///
    /// `addrs[j]` is provider `j`'s listening address; `listener` must be
    /// bound to `addrs[me]`'s port. The call dials every peer with a
    /// smaller id (retrying until its listener is up) and accepts a
    /// connection from every peer with a larger id, so the `m` providers
    /// may start in any order. It returns once all `m − 1` connections
    /// are established. Accepted connections that never present a valid
    /// hello (strays, port scanners) are dropped and accepting continues.
    ///
    /// # Errors
    ///
    /// Any socket-level failure, or peers that cannot be reached (dial)
    /// or do not connect (accept) within the bring-up timeout — so a
    /// peer whose own bring-up failed leaves this call with an error
    /// after the timeout, never blocked forever.
    pub fn establish(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> io::Result<TcpEndpoint> {
        TcpEndpoint::establish_with(me, listener, addrs, TrafficMetrics::new(addrs.len()))
    }

    /// [`TcpEndpoint::establish`] with caller-supplied (possibly shared)
    /// traffic counters — what [`TcpMesh`] uses so one snapshot covers
    /// the whole in-process mesh.
    pub fn establish_with(
        me: ProviderId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        metrics: TrafficMetrics,
    ) -> io::Result<TcpEndpoint> {
        let m = addrs.len();
        let streams = establish_streams(me, listener, addrs)?;

        // Spawn the per-peer reader/writer pairs.
        let (inbox_tx, inbox) = unbounded();
        let mut outbound: Vec<Option<Sender<Bytes>>> = (0..m).map(|_| None).collect();
        let mut threads = Vec::with_capacity(2 * m.saturating_sub(1));
        for (peer, slot) in streams.iter().enumerate() {
            let Some(stream) = slot else { continue };
            let peer_id = ProviderId(peer as u32);

            let reader = stream.try_clone()?;
            let tx = inbox_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-read-{me}-{peer_id}"))
                    .spawn(move || read_loop(reader, peer_id, tx))
                    .expect("spawn tcp reader"),
            );

            let writer = stream.try_clone()?;
            let (out_tx, out_rx) = unbounded::<Bytes>();
            outbound[peer] = Some(out_tx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-write-{me}-{peer_id}"))
                    .spawn(move || {
                        coalescing_write_loop(writer, out_rx, |payload, buf| {
                            wire_encode_into(payload, buf)
                        })
                    })
                    .expect("spawn tcp writer"),
            );
        }
        // `inbox_tx` clones live only in reader threads now: when the last
        // peer connection dies, the inbox disconnects.
        drop(inbox_tx);

        Ok(TcpEndpoint { me, m, outbound, inbox, streams, threads, metrics })
    }

    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// The endpoint's traffic counters (shared across the mesh when built
    /// by [`TcpMesh`]).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// Queue `payload` for `to`. Never blocks: the per-peer writer thread
    /// performs the socket write. Sends to self or to departed peers are
    /// dropped silently (the run is over at that point).
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        let Some(Some(queue)) = self.outbound.get(to.index()) else { return };
        self.metrics.record_send(self.me, payload.len());
        let _ = queue.send(payload);
    }

    /// Send `payload` to every other provider.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once every peer connection is gone and
    /// the inbox is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        // 1. Close the outbound queues; each writer drains what is queued
        //    (a decided engine's final sends must reach the peers), half-
        //    closes its socket, and exits on the queue disconnect.
        for queue in &mut self.outbound {
            queue.take();
        }
        let (writers, readers): (Vec<_>, Vec<_>) = self
            .threads
            .drain(..)
            .partition(|t| t.thread().name().is_some_and(|n| n.starts_with("tcp-write")));
        for writer in writers {
            let _ = writer.join();
        }
        // 2. Only after every queued frame is flushed, tear the sockets
        //    down fully so our blocked readers return and can be joined.
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }
    }
}

/// Dial `addr`, retrying while the peer's listener comes up.
fn dial(addr: SocketAddr) -> io::Result<TcpStream> {
    let deadline = Instant::now() + DIAL_TIMEOUT;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                return Ok(stream);
            }
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(DIAL_RETRY);
            }
            Err(err) => return Err(err),
        }
    }
}

/// The shared mesh bring-up: one connected, [`TCP_NODELAY`]-enabled
/// stream per peer (`None` at our own index), regardless of start order.
///
/// Dials every smaller id (retrying until its listener is up, presenting
/// a 4-byte hello) and accepts from every larger id (the hello tells us
/// who dialled). The whole accept phase shares one deadline — a peer
/// whose own bring-up failed must not leave us blocked forever — and
/// connections that never present a valid hello (port scanners,
/// misdirected clients) are dropped, not fatal. Accepted streams are
/// switched back to blocking mode before use, so the writers' final
/// flush-on-shutdown can never hit a spurious `WouldBlock`.
///
/// [`TCP_NODELAY`]: TcpStream::set_nodelay
fn establish_streams(
    me: ProviderId,
    listener: TcpListener,
    addrs: &[SocketAddr],
) -> io::Result<Vec<Option<TcpStream>>> {
    let m = addrs.len();
    assert!(me.index() < m, "provider {me} outside address table of {m}");

    let mut streams: Vec<Option<TcpStream>> = (0..m).map(|_| None).collect();

    // Dial every smaller id; the listener may not be up yet, so retry.
    for peer in 0..me.index() {
        let mut stream = dial(addrs[peer])?;
        stream.write_all(&(me.index() as u32).to_le_bytes())?;
        streams[peer] = Some(stream);
    }
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + DIAL_TIMEOUT;
    let mut expected = m - 1 - me.index();
    while expected > 0 {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(HELLO_TIMEOUT))?;
                let mut hello = [0u8; 4];
                if stream.read_exact(&mut hello).is_err() {
                    continue; // silent or torn connection: drop it
                }
                let peer = u32::from_le_bytes(hello) as usize;
                if peer <= me.index() || peer >= m || streams[peer].is_some() {
                    continue; // not a mesh peer we are waiting for: drop
                }
                stream.set_read_timeout(None)?;
                stream.set_nodelay(true)?;
                streams[peer] = Some(stream);
                expected -= 1;
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("provider {me}: {expected} peer(s) failed to connect"),
                    ));
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(err) => return Err(err),
        }
    }
    Ok(streams)
}

/// The shared read-side stream splitter: accumulate socket bytes,
/// split complete wire frames off with [`wire_decode`] — the same
/// decoder the frame tests exercise — and hand each to `deliver` until
/// the connection dies. `deliver` returning `false` (an undecodable
/// frame at its layer) tears the connection down: resynchronising a
/// byte stream past corruption is impossible. A corrupt or hostile
/// *length header* tears it down here for the same reason.
fn read_split_loop(mut stream: TcpStream, mut deliver: impl FnMut(&[u8]) -> bool) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or torn connection: peer gone
            Ok(n) => n,
        };
        pending.extend_from_slice(&chunk[..n]);
        let mut consumed_total = 0;
        loop {
            match wire_decode(&pending[consumed_total..]) {
                Ok(Some((payload, consumed))) => {
                    consumed_total += consumed;
                    if !deliver(payload) {
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                }
                Ok(None) => break, // truncated: need more bytes from the socket
                Err(_) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        pending.drain(..consumed_total);
    }
}

/// Reader half of one dedicated-mesh peer connection: every frame goes
/// to the endpoint's single inbox. A dropped endpoint (send fails) just
/// ends the loop — the teardown path shuts the stream down anyway.
fn read_loop(stream: TcpStream, peer: ProviderId, inbox: Sender<(ProviderId, Bytes)>) {
    read_split_loop(stream, move |payload| {
        inbox.send((peer, Bytes::copy_from_slice(payload))).is_ok()
    });
}

/// Writer half of one peer connection: the **coalescing** drain loop
/// shared by [`TcpEndpoint`] and [`MuxEndpoint`]. Block for the next
/// message, then opportunistically drain everything already queued into
/// one reused [`BytesMut`] (up to [`WRITE_COALESCE_BYTES`]) and issue a
/// **single** `write_all` — under load this turns one syscall per frame
/// into one syscall per batch, and the buffer's allocation is warm after
/// the first round.
///
/// Exits when the socket dies (peer gone) or the queue disconnects
/// (clean shutdown): remaining queued frames are still drained and
/// flushed — crossbeam delivers buffered messages after disconnect — and
/// the write half is shut down so the peer sees EOF.
fn coalescing_write_loop<T>(
    mut stream: TcpStream,
    outbound: Receiver<T>,
    encode_into: impl Fn(&T, &mut BytesMut),
) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    while let Ok(item) = outbound.recv() {
        buf.clear();
        encode_into(&item, &mut buf);
        while buf.len() < WRITE_COALESCE_BYTES {
            match outbound.try_recv() {
                Ok(item) => encode_into(&item, &mut buf),
                Err(_) => break, // queue momentarily empty (or closing)
            }
        }
        if stream.write_all(&buf).is_err() {
            return;
        }
    }
    // Queue closed and fully drained: flush politely and let the peer
    // see EOF. The stream is in blocking mode, so the kernel accepts the
    // final bytes before shutdown returns.
    let _ = stream.shutdown(Shutdown::Write);
}

/// A full in-process TCP mesh over loopback sockets: every provider pair
/// connected, all endpoints sharing one set of traffic counters.
///
/// This is the single-host stand-in for a real LAN deployment (where each
/// provider process calls [`TcpEndpoint::establish`] itself); it is what
/// the batch layer and the benchmarks use for the `Tcp` backend.
#[derive(Debug)]
pub struct TcpMesh {
    endpoints: Vec<TcpEndpoint>,
    metrics: TrafficMetrics,
}

impl TcpMesh {
    /// Bring up a full mesh of `m` providers over `127.0.0.1` (ephemeral
    /// ports), establishing all connections concurrently.
    ///
    /// # Errors
    ///
    /// Any socket-level failure while binding or connecting.
    pub fn loopback(m: usize) -> io::Result<TcpMesh> {
        let metrics = TrafficMetrics::new(m);
        let mut listeners = Vec::with_capacity(m);
        let mut addrs = Vec::with_capacity(m);
        for _ in 0..m {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                let addrs = addrs.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("tcp-mesh-up-{i}"))
                    .spawn(move || {
                        TcpEndpoint::establish_with(ProviderId(i as u32), listener, &addrs, metrics)
                    })
                    .expect("spawn mesh bring-up thread")
            })
            .collect();
        // Join every bring-up thread before reporting, so a failure on
        // one provider (its peers unblock at the accept deadline) never
        // leaves detached threads behind.
        let mut endpoints = Vec::with_capacity(m);
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("mesh bring-up thread panicked") {
                Ok(endpoint) => endpoints.push(endpoint),
                Err(err) => first_err = first_err.or(Some(err)),
            }
        }
        match first_err {
            None => Ok(TcpMesh { endpoints, metrics }),
            Some(err) => Err(err),
        }
    }

    /// Take ownership of the endpoints (one per provider, in id order).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<TcpEndpoint> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The mesh's shared traffic counters.
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }
}

/// One provider's physical half of a [`MuxMesh`]: the per-peer sockets
/// and reader/writer threads that **every lane shares**. Lane endpoints
/// hold it behind an [`Arc`]; when the last one drops, teardown runs
/// drain-then-shutdown exactly like [`TcpEndpoint`]'s.
#[derive(Debug)]
struct MuxNodeCore {
    streams: Vec<Option<TcpStream>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for MuxNodeCore {
    fn drop(&mut self) {
        // Reached only after every lane endpoint of this provider is
        // gone — i.e. all outbound senders are dropped, so the writers
        // are draining their final frames.
        let (writers, readers): (Vec<_>, Vec<_>) = self
            .threads
            .drain(..)
            .partition(|t| t.thread().name().is_some_and(|n| n.starts_with("mux-write")));
        // 1. Writers first: they flush every queued frame of every lane,
        //    half-close their sockets, and exit on the queue disconnect.
        for writer in writers {
            let _ = writer.join();
        }
        // 2. Only then tear the sockets down fully so our blocked
        //    readers return and can be joined.
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for reader in readers {
            let _ = reader.join();
        }
    }
}

/// One provider's handle onto **one lane** of a multiplexed TCP mesh.
///
/// All lanes of a provider share the same physical sockets and
/// reader/writer threads ([`MuxMesh`]); a lane is purely a routing
/// namespace — the lane id is folded into the u64 tag slot of every wire
/// frame ([`mux_pack`][crate::frame::mux_pack]) and incoming frames are
/// demultiplexed to the lane's own inbox. The API mirrors
/// [`TcpEndpoint`], so the protocol layer cannot tell a lane of a shared
/// mesh from a dedicated mesh.
#[derive(Debug)]
pub struct MuxEndpoint {
    me: ProviderId,
    m: usize,
    lane: usize,
    /// Per-peer shared writer queues (`None` at our own index). Declared
    /// before `core`: the senders must disconnect before the core joins
    /// the writer threads.
    outbound: Vec<Option<Sender<(usize, Bytes)>>>,
    inbox: Receiver<(ProviderId, Bytes)>,
    metrics: TrafficMetrics,
    core: Arc<MuxNodeCore>,
}

impl MuxEndpoint {
    /// Join a multiplexed mesh as provider `me`, returning one endpoint
    /// per lane (this is the multi-host entry point; in-process callers
    /// use [`MuxMesh::loopback`]). `addrs[j]` is provider `j`'s
    /// listening address; `listener` must be bound to `addrs[me]`'s
    /// port. All providers must agree on `lanes`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure, or peers unreachable within the
    /// bring-up timeout — as for [`TcpEndpoint::establish`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds
    /// [`MUX_MAX_LANES`].
    pub fn establish(
        me: ProviderId,
        lanes: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> io::Result<Vec<MuxEndpoint>> {
        let streams = establish_streams(me, listener, addrs)?;
        spawn_mux_node(me, addrs.len(), lanes, streams, TrafficMetrics::new(addrs.len()))
    }

    /// This endpoint's provider id.
    pub fn me(&self) -> ProviderId {
        self.me
    }

    /// Number of providers in the mesh.
    pub fn num_providers(&self) -> usize {
        self.m
    }

    /// The lane this endpoint sends and receives on.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// All provider ids except this endpoint's own.
    pub fn peers(&self) -> impl Iterator<Item = ProviderId> + '_ {
        ProviderId::all(self.m).filter(move |p| *p != self.me)
    }

    /// The endpoint's traffic counters (shared across the whole mesh).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// Reader/writer threads serving this provider's node — shared by
    /// **all** of its lanes, so the count is `2 × (m − 1)` no matter how
    /// many lanes are multiplexed.
    pub fn io_threads(&self) -> usize {
        self.core.threads.len()
    }

    /// Queue `payload` for `to` on this lane. The shared per-peer writer
    /// thread folds the lane into the wire tag and performs the socket
    /// write; sends to self or to departed peers are dropped silently
    /// (the run is over at that point).
    ///
    /// Payloads too large for even the raw-escape wire frame (within 8
    /// header bytes of [`MAX_WIRE_FRAME`][crate::frame::MAX_WIRE_FRAME])
    /// are dropped and counted rather than queued: protocol messages are
    /// orders of magnitude smaller, and a panic inside the shared writer
    /// thread would take down **every** lane's traffic to that peer.
    pub fn send(&self, to: ProviderId, payload: Bytes) {
        let Some(Some(queue)) = self.outbound.get(to.index()) else { return };
        self.metrics.record_send(self.me, payload.len());
        if payload.len() > crate::frame::MAX_WIRE_FRAME - 8 {
            self.metrics.record_drop(self.me, payload.len());
            return;
        }
        let _ = queue.send((self.lane, payload));
    }

    /// Send `payload` to every other provider on this lane, sharing the
    /// same frozen buffer across all peers.
    pub fn broadcast(&self, payload: &Bytes) {
        for peer in ProviderId::all(self.m) {
            if peer != self.me {
                self.send(peer, payload.clone());
            }
        }
    }

    /// Receive the next message on this lane, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time,
    /// [`RecvError::Disconnected`] once every peer connection is gone
    /// and the lane inbox is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok((from, payload)) => {
                self.metrics.record_recv(self.me, payload.len());
                Ok((from, payload))
            }
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Option<(ProviderId, Bytes)> {
        self.inbox.try_recv().ok().inspect(|(_, payload)| {
            self.metrics.record_recv(self.me, payload.len());
        })
    }
}

/// Spawn one provider's shared reader/writer threads over its
/// already-established streams and hand back its `lanes` endpoints.
fn spawn_mux_node(
    me: ProviderId,
    m: usize,
    lanes: usize,
    streams: Vec<Option<TcpStream>>,
    metrics: TrafficMetrics,
) -> io::Result<Vec<MuxEndpoint>> {
    assert!(lanes > 0, "a mux mesh has at least one lane");
    assert!(lanes <= MUX_MAX_LANES, "{lanes} lanes exceed the {MUX_MAX_LANES}-lane tag space");

    let mut lane_txs: Vec<Sender<(ProviderId, Bytes)>> = Vec::with_capacity(lanes);
    let mut lane_rxs: Vec<Receiver<(ProviderId, Bytes)>> = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let (tx, rx) = unbounded();
        lane_txs.push(tx);
        lane_rxs.push(rx);
    }

    let mut outbound: Vec<Option<Sender<(usize, Bytes)>>> = (0..m).map(|_| None).collect();
    let mut threads = Vec::with_capacity(2 * m.saturating_sub(1));
    for (peer, slot) in streams.iter().enumerate() {
        let Some(stream) = slot else { continue };
        let peer_id = ProviderId(peer as u32);

        let reader = stream.try_clone()?;
        let txs = lane_txs.clone();
        let reader_metrics = metrics.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("mux-read-{me}-{peer_id}"))
                .spawn(move || mux_read_loop(reader, peer_id, me, txs, reader_metrics))
                .expect("spawn mux reader"),
        );

        let writer = stream.try_clone()?;
        // Bounded: a peer that stops draining cannot grow our memory
        // without bound; the coalescing drain keeps the bound unfelt in
        // honest runs.
        let (out_tx, out_rx) = bounded::<(usize, Bytes)>(OUTBOUND_QUEUE_FRAMES);
        outbound[peer] = Some(out_tx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("mux-write-{me}-{peer_id}"))
                .spawn(move || {
                    coalescing_write_loop(writer, out_rx, |(lane, payload), buf| {
                        mux_frame_into(*lane, payload, buf)
                    })
                })
                .expect("spawn mux writer"),
        );
    }
    // `lane_txs` clones live only in reader threads now: when the last
    // peer connection dies, every lane inbox disconnects.
    drop(lane_txs);

    let core = Arc::new(MuxNodeCore { streams, threads });
    Ok(lane_rxs
        .into_iter()
        .enumerate()
        .map(|(lane, inbox)| MuxEndpoint {
            me,
            m,
            lane,
            outbound: outbound.clone(),
            inbox,
            metrics: metrics.clone(),
            core: Arc::clone(&core),
        })
        .collect())
}

/// Reader half of one mux peer connection: unfold the lane from each
/// frame's packed tag, restore the original payload, and forward it to
/// the lane's inbox until the connection dies. Frames for lanes whose
/// endpoints are gone are counted as drops (a straggler of a finished
/// epoch, never an error); a frame shorter than the packed tag or
/// naming a lane outside the mesh's range means the stream is corrupt,
/// and the connection is torn down like any other undecodable stream.
fn mux_read_loop(
    stream: TcpStream,
    peer: ProviderId,
    me: ProviderId,
    lanes: Vec<Sender<(ProviderId, Bytes)>>,
    metrics: TrafficMetrics,
) {
    read_split_loop(stream, move |wire_frame| {
        let Ok((lane, payload)) = mux_unframe(wire_frame) else {
            return false; // shorter than a packed tag: corrupt
        };
        let Some(tx) = lanes.get(lane) else {
            return false; // lane outside the mesh: corrupt
        };
        let len = payload.len();
        if tx.send((peer, payload)).is_err() {
            // This lane's endpoint is gone; other lanes may still be
            // live. Count, drop, carry on.
            metrics.record_drop(me, len);
        }
        true
    });
}

/// A full multiplexed TCP mesh over loopback sockets: **one connection
/// per provider pair, shared by every lane**, with `lanes` logical
/// endpoint sets demultiplexed over it.
///
/// This is what [`ShardedHub`][crate::ShardedHub]'s socket flavour rides
/// on: `N` shards become `N` lanes over one physical mesh, so the
/// connection count is `m(m−1)/2` and the I/O thread count `2m(m−1)` —
/// both independent of the shard count, where the previous
/// mesh-per-shard wiring paid both costs `N` times over.
///
/// # Example
///
/// ```
/// use dauctioneer_net::MuxMesh;
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let mut mesh = MuxMesh::loopback(2, 2).unwrap();
/// let lanes = mesh.take_lane_endpoints();
/// // lanes[lane][provider]: two isolated namespaces, one socket.
/// lanes[1][0].send(lanes[1][1].me(), Bytes::from_static(b"lane one"));
/// let (from, payload) = lanes[1][1].recv_timeout(Duration::from_secs(5)).unwrap();
/// assert_eq!(from, lanes[0][0].me());
/// assert_eq!(&payload[..], b"lane one");
/// assert!(lanes[0][1].try_recv().is_none(), "lane 0 saw nothing");
/// ```
#[derive(Debug)]
pub struct MuxMesh {
    /// `endpoints[lane][provider]`.
    endpoints: Vec<Vec<MuxEndpoint>>,
    metrics: TrafficMetrics,
    io_threads: usize,
}

impl MuxMesh {
    /// Bring up a full mesh of `m` providers over `127.0.0.1` with
    /// `lanes` multiplexed lanes, one TCP connection per provider pair.
    ///
    /// Connections are created pairwise through one ephemeral listener —
    /// no per-provider listeners, hello exchanges, or retry sleeps — so
    /// in-process bring-up is cheap enough to pay per batch.
    ///
    /// # Errors
    ///
    /// Any socket-level failure while binding or connecting.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds
    /// [`MUX_MAX_LANES`].
    pub fn loopback(m: usize, lanes: usize) -> io::Result<MuxMesh> {
        let metrics = TrafficMetrics::new(m);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let mut rows: Vec<Vec<Option<TcpStream>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let pairs = (0..m).flat_map(|i| ((i + 1)..m).map(move |j| (i, j)));
        for (i, j) in pairs {
            // Connect, then immediately accept our own connection. The
            // accepted stream's peer address must be the one we just
            // dialled from — anything else is a stray (port scanner,
            // misdirected client) that must not be wired into the mesh;
            // drop it and keep accepting for our own connection.
            let ours = TcpStream::connect(addr)?;
            let ours_addr = ours.local_addr()?;
            let theirs = loop {
                let (candidate, peer) = listener.accept()?;
                if peer == ours_addr {
                    break candidate;
                }
            };
            ours.set_nodelay(true)?;
            theirs.set_nodelay(true)?;
            rows[i][j] = Some(ours);
            rows[j][i] = Some(theirs);
        }
        let mut per_provider = Vec::with_capacity(m);
        let mut io_threads = 0;
        for (i, row) in rows.into_iter().enumerate() {
            let endpoints = spawn_mux_node(ProviderId(i as u32), m, lanes, row, metrics.clone())?;
            io_threads += endpoints.first().map_or(0, MuxEndpoint::io_threads);
            per_provider.push(endpoints);
        }
        // Transpose [provider][lane] → [lane][provider].
        let mut endpoints: Vec<Vec<MuxEndpoint>> = (0..lanes).map(|_| Vec::new()).collect();
        for provider_lanes in per_provider {
            for (lane, endpoint) in provider_lanes.into_iter().enumerate() {
                endpoints[lane].push(endpoint);
            }
        }
        Ok(MuxMesh { endpoints, metrics, io_threads })
    }

    /// Number of lanes multiplexed over the mesh.
    pub fn num_lanes(&self) -> usize {
        self.endpoints.len()
    }

    /// Take ownership of the endpoints: `result[lane][provider]`.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_lane_endpoints(&mut self) -> Vec<Vec<MuxEndpoint>> {
        assert!(!self.endpoints.is_empty(), "endpoints already taken");
        std::mem::take(&mut self.endpoints)
    }

    /// The mesh's shared traffic counters (all lanes, all providers).
    pub fn metrics(&self) -> TrafficMetrics {
        self.metrics.clone()
    }

    /// Total reader/writer threads serving the mesh: `2·m·(m−1)`,
    /// independent of the lane count — the accounting the thread-roster
    /// tests pin down against the old mesh-per-shard `O(m·shards)`.
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }
}
