//! The mesh bring-up hello: the fixed 12-byte identity frame a dialling
//! provider presents before any wire traffic flows.
//!
//! ```text
//! [magic: u32 LE] [peer: u32 LE] [incarnation: u32 LE]
//! ```
//!
//! The original hello was the bare 4-byte peer id. Two fields were added
//! for the multi-process deployment:
//!
//! * **magic** — strays (port scanners, misdirected clients, a debugger
//!   poking the port) are rejected on the first 4 bytes instead of being
//!   admitted as whatever provider id their garbage happens to spell;
//! * **incarnation** — each restart of a provider process joins the
//!   cluster under a strictly larger incarnation number (assigned by the
//!   coordinator). The accept side of mesh bring-up knows the minimum
//!   incarnation it will honour per peer, so a connection from a killed
//!   provider's *previous life* — a socket that was mid-dial when the
//!   process died, or a stale frame source — is dropped at the hello and
//!   never reaches a session. Frames of a dead incarnation are thereby
//!   rejected at admission, not filtered downstream.
//!
//! The functions here are pure (no sockets), so the admission rule is
//! testable — and property-tested — in isolation.

/// Byte length of the hello frame.
pub const HELLO_LEN: usize = 12;

/// First 4 bytes of every valid hello (`"dah1"`: distributed-auctioneer
/// hello, version 1).
pub const HELLO_MAGIC: u32 = 0x3168_6164;

/// A decoded hello: who is dialling, and which life of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The dialling provider's id.
    pub peer: u32,
    /// The dialling provider's current incarnation number (0 for
    /// processes that never died; the cluster coordinator hands out
    /// strictly increasing values across restarts).
    pub incarnation: u32,
}

impl Hello {
    /// Encode the hello into its 12-byte wire form.
    pub fn encode(&self) -> [u8; HELLO_LEN] {
        let mut buf = [0u8; HELLO_LEN];
        buf[0..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
        buf[4..8].copy_from_slice(&self.peer.to_le_bytes());
        buf[8..12].copy_from_slice(&self.incarnation.to_le_bytes());
        buf
    }

    /// Decode a 12-byte hello. `None` if the magic does not match — the
    /// sender is a stray, not a provider.
    pub fn decode(buf: &[u8; HELLO_LEN]) -> Option<Hello> {
        let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if magic != HELLO_MAGIC {
            return None;
        }
        Some(Hello {
            peer: u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]),
            incarnation: u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]),
        })
    }

    /// The admission rule the accept side of mesh bring-up applies to a
    /// decoded hello: the peer id must be a real provider of the
    /// `m`-mesh, and the incarnation must be at least the minimum this
    /// node honours for that peer (`min_incarnations[peer]`, 0 when the
    /// table is shorter than `m` — single-process meshes never restart).
    ///
    /// A `false` verdict means the connection is dropped as a stray (or
    /// as a previous life of a restarted peer) and accepting continues;
    /// it is never an error.
    pub fn admissible(&self, m: usize, min_incarnations: &[u32]) -> bool {
        let peer = self.peer as usize;
        peer < m && self.incarnation >= min_incarnations.get(peer).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let h = Hello { peer: 3, incarnation: 17 };
        assert_eq!(Hello::decode(&h.encode()), Some(h));
    }

    #[test]
    fn bad_magic_is_a_stray() {
        let mut buf = Hello { peer: 0, incarnation: 0 }.encode();
        buf[0] ^= 0xFF;
        assert_eq!(Hello::decode(&buf), None);
    }

    #[test]
    fn stale_incarnations_are_inadmissible() {
        let mins = [0, 2, 0];
        assert!(Hello { peer: 1, incarnation: 2 }.admissible(3, &mins));
        assert!(Hello { peer: 1, incarnation: 5 }.admissible(3, &mins));
        assert!(!Hello { peer: 1, incarnation: 1 }.admissible(3, &mins), "previous life");
        assert!(!Hello { peer: 7, incarnation: 9 }.admissible(3, &mins), "id out of range");
    }

    #[test]
    fn empty_minimum_table_admits_any_incarnation() {
        assert!(Hello { peer: 2, incarnation: 0 }.admissible(3, &[]));
    }
}
