//! Peer liveness for the multi-process deployment: a per-peer heartbeat
//! failure detector, the `Up → Suspect → Down → Reconnecting` state
//! machine, and the jittered-exponential dial backoff a returning
//! provider paces its redials with.
//!
//! The tracker is **pure in time**: every method takes the caller's
//! `Instant`, nothing reads the clock, so the full state machine —
//! including the "Suspect must survive a slow-but-healthy link without
//! flapping to Down" property — is unit-testable with fabricated
//! timelines. The coordinator's control plane feeds it: a provider's
//! join marks it `Up` and bumps its incarnation, heartbeats refresh it,
//! a severed control connection forces `Down`, and [`LivenessTracker::tick`]
//! advances timeouts between events.
//!
//! Two timeouts, not one: a peer that misses heartbeats for
//! [`LivenessConfig::suspect_after`] becomes `Suspect` (sessions keep
//! running; the link may just be slow), and only after the full
//! [`LivenessConfig::down_after`] since its last heartbeat is it
//! declared `Down` — at which point the market stops dispatching to it
//! and aborts epochs that touch it with `AbortReason::PeerDown` instead
//! of hanging.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a peer stands in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats are current; the peer participates in epochs.
    Up,
    /// Heartbeats are late but within the down budget: the link may be
    /// slow. The peer still participates; a fresh heartbeat returns it
    /// to [`PeerState::Up`] without ever counting as an outage.
    Suspect,
    /// The peer missed the full down budget (or its control connection
    /// severed, or it has never joined). Epochs touching it abort with
    /// `PeerDown`; it is excluded from dispatch until it rejoins.
    Down,
    /// A connection from the peer is back but the (re)join handshake
    /// has not completed; the next successful join returns it to
    /// [`PeerState::Up`] under a fresh incarnation.
    Reconnecting,
}

impl PeerState {
    /// Stable lowercase label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            PeerState::Up => "up",
            PeerState::Suspect => "suspect",
            PeerState::Down => "down",
            PeerState::Reconnecting => "reconnecting",
        }
    }
}

/// The two heartbeat timeouts of the failure detector.
#[derive(Debug, Clone, Copy)]
pub struct LivenessConfig {
    /// Silence before `Up` degrades to `Suspect`.
    pub suspect_after: Duration,
    /// Silence before the peer is declared `Down`. Measured from the
    /// last heartbeat (not from entering `Suspect`), and must exceed
    /// `suspect_after`.
    pub down_after: Duration,
}

impl Default for LivenessConfig {
    fn default() -> LivenessConfig {
        LivenessConfig {
            suspect_after: Duration::from_millis(500),
            down_after: Duration::from_millis(1500),
        }
    }
}

/// Shared liveness gauges, exported as `net_peers_up` and
/// `net_peer_reconnects_total` by the telemetry plane. Cheap to clone
/// (an `Arc` around two atomics); the tracker keeps them current on
/// every transition.
#[derive(Debug, Clone, Default)]
pub struct LivenessMetrics {
    inner: Arc<LivenessCells>,
}

#[derive(Debug, Default)]
struct LivenessCells {
    peers_up: AtomicU64,
    reconnects_total: AtomicU64,
}

impl LivenessMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> LivenessMetrics {
        LivenessMetrics::default()
    }

    /// Peers currently `Up` or `Suspect` (still participating).
    pub fn peers_up(&self) -> u64 {
        self.inner.peers_up.load(Ordering::Relaxed)
    }

    /// Successful rejoins of previously-joined peers, cumulative.
    pub fn reconnects_total(&self) -> u64 {
        self.inner.reconnects_total.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct PeerSlot {
    state: PeerState,
    last_heartbeat: Option<Instant>,
    /// Last incarnation handed out; 0 = never joined.
    incarnation: u32,
}

/// The coordinator-side failure detector over `m` peers.
#[derive(Debug)]
pub struct LivenessTracker {
    config: LivenessConfig,
    peers: Vec<PeerSlot>,
    metrics: LivenessMetrics,
}

impl LivenessTracker {
    /// Track `m` peers, all initially [`PeerState::Down`] (a peer that
    /// has never joined cannot be dispatched to).
    pub fn new(m: usize, config: LivenessConfig) -> LivenessTracker {
        let peers = (0..m)
            .map(|_| PeerSlot { state: PeerState::Down, last_heartbeat: None, incarnation: 0 })
            .collect();
        LivenessTracker { config, peers, metrics: LivenessMetrics::new() }
    }

    /// The shared metric cells this tracker keeps current (clone it into
    /// a metrics registry).
    pub fn metrics(&self) -> LivenessMetrics {
        self.metrics.clone()
    }

    /// A peer completed the join handshake at `now`: mark it `Up` and
    /// hand out its next incarnation number (strictly increasing across
    /// its restarts; the first join of a life is incarnation 1). A
    /// rejoin of a previously-joined peer counts one reconnect.
    pub fn join(&mut self, peer: usize, now: Instant) -> u32 {
        let slot = &mut self.peers[peer];
        if slot.incarnation > 0 {
            self.metrics.inner.reconnects_total.fetch_add(1, Ordering::Relaxed);
        }
        slot.incarnation += 1;
        slot.state = PeerState::Up;
        slot.last_heartbeat = Some(now);
        let incarnation = slot.incarnation;
        self.refresh_up_gauge();
        incarnation
    }

    /// A connection from a `Down` peer arrived but the join handshake
    /// is still in flight.
    pub fn begin_reconnect(&mut self, peer: usize) {
        let slot = &mut self.peers[peer];
        if slot.state == PeerState::Down {
            slot.state = PeerState::Reconnecting;
        }
    }

    /// A heartbeat from `peer` at `now`. Returns the peer to `Up` from
    /// `Suspect`; ignored for `Down`/`Reconnecting` peers (only a full
    /// rejoin revives those — a heartbeat of a dead incarnation must
    /// not resurrect it).
    pub fn heartbeat(&mut self, peer: usize, now: Instant) {
        let slot = &mut self.peers[peer];
        match slot.state {
            PeerState::Up | PeerState::Suspect => {
                slot.state = PeerState::Up;
                slot.last_heartbeat = Some(now);
                self.refresh_up_gauge();
            }
            PeerState::Down | PeerState::Reconnecting => {}
        }
    }

    /// The peer's control connection severed (EOF, reset): declare it
    /// `Down` immediately — there is no link left to be slow on.
    pub fn disconnect(&mut self, peer: usize) {
        self.peers[peer].state = PeerState::Down;
        self.refresh_up_gauge();
    }

    /// Advance heartbeat timeouts to `now`: `Up` peers silent for
    /// `suspect_after` become `Suspect`; peers silent for the **full**
    /// `down_after` since their last heartbeat become `Down`. A
    /// `Suspect` peer is never rushed to `Down` early — the down budget
    /// is measured from the last heartbeat, not from entering
    /// `Suspect` — so a healthy-but-slow link oscillates `Up ↔ Suspect`
    /// without ever flapping to an outage.
    pub fn tick(&mut self, now: Instant) {
        for slot in &mut self.peers {
            let Some(last) = slot.last_heartbeat else { continue };
            let silence = now.saturating_duration_since(last);
            match slot.state {
                PeerState::Up if silence >= self.config.suspect_after => {
                    slot.state = PeerState::Suspect;
                }
                _ => {}
            }
            if matches!(slot.state, PeerState::Up | PeerState::Suspect)
                && silence >= self.config.down_after
            {
                slot.state = PeerState::Down;
            }
        }
        self.refresh_up_gauge();
    }

    /// Current state of `peer`.
    pub fn state(&self, peer: usize) -> PeerState {
        self.peers[peer].state
    }

    /// Peers currently participating (`Up` or `Suspect`).
    pub fn up_count(&self) -> usize {
        self.peers.iter().filter(|s| matches!(s.state, PeerState::Up | PeerState::Suspect)).count()
    }

    /// `true` when every peer is participating.
    pub fn all_up(&self) -> bool {
        self.up_count() == self.peers.len()
    }

    /// The incarnation last handed to `peer` (0 = never joined).
    pub fn incarnation(&self, peer: usize) -> u32 {
        self.peers[peer].incarnation
    }

    /// The per-peer incarnation floor for mesh admission: exactly the
    /// incarnations currently handed out, so any hello from an earlier
    /// life is rejected.
    pub fn min_incarnations(&self) -> Vec<u32> {
        self.peers.iter().map(|s| s.incarnation).collect()
    }

    fn refresh_up_gauge(&self) {
        self.metrics.inner.peers_up.store(self.up_count() as u64, Ordering::Relaxed);
    }
}

/// Jittered exponential backoff with a bounded attempt budget — how a
/// returning provider paces its redials of the coordinator.
///
/// Delay for attempt `n` is `min(cap, base · 2ⁿ)` scaled by a
/// deterministic jitter in `[0.5, 1.0)` (xorshift64* over the seed), so
/// a herd of restarting providers never redials in lockstep yet every
/// schedule replays exactly from its seed.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    budget: u32,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A budgeted schedule: at most `budget` delays, starting at `base`
    /// and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration, budget: u32, seed: u64) -> Backoff {
        Backoff { base, cap, budget, attempt: 0, rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay to sleep before redialling, or `None` once the
    /// reconnect budget is exhausted (the caller gives up).
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.budget {
            return None;
        }
        let exp = self.base.saturating_mul(1u32 << self.attempt.min(16));
        let full = exp.min(self.cap);
        // xorshift64* for the jitter factor in [0.5, 1.0).
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        let r = self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        self.attempt += 1;
        Some(full.mul_f64(0.5 + unit / 2.0))
    }

    /// Start the schedule over (after a successful connect).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LivenessConfig {
        LivenessConfig {
            suspect_after: Duration::from_millis(100),
            down_after: Duration::from_millis(300),
        }
    }

    #[test]
    fn suspect_to_down_requires_the_full_timeout() {
        let mut t = LivenessTracker::new(1, cfg());
        let t0 = Instant::now();
        t.join(0, t0);
        assert_eq!(t.state(0), PeerState::Up);

        t.tick(t0 + Duration::from_millis(99));
        assert_eq!(t.state(0), PeerState::Up, "inside the suspect budget");
        t.tick(t0 + Duration::from_millis(100));
        assert_eq!(t.state(0), PeerState::Suspect);
        // Entering Suspect must NOT restart the clock: Down is measured
        // from the last heartbeat, and needs the full budget.
        t.tick(t0 + Duration::from_millis(299));
        assert_eq!(t.state(0), PeerState::Suspect, "down budget not yet spent");
        t.tick(t0 + Duration::from_millis(300));
        assert_eq!(t.state(0), PeerState::Down);
    }

    #[test]
    fn healthy_but_slow_link_never_flaps_to_down() {
        let mut t = LivenessTracker::new(1, cfg());
        let t0 = Instant::now();
        t.join(0, t0);
        // Heartbeats land every 150ms: always late (Suspect) but always
        // inside the 300ms down budget.
        let mut last = t0;
        for beat in 1..=50u64 {
            let arrive = t0 + Duration::from_millis(150 * beat);
            t.tick(arrive - Duration::from_millis(1));
            assert_ne!(t.state(0), PeerState::Down, "beat {beat}: slow link flapped Down");
            t.heartbeat(0, arrive);
            assert_eq!(t.state(0), PeerState::Up, "beat {beat}: heartbeat must restore Up");
            last = arrive;
        }
        assert_eq!(t.metrics().reconnects_total(), 0, "no reconnects on a slow link");
        let _ = last;
    }

    #[test]
    fn rejoin_bumps_incarnation_and_counts_one_reconnect() {
        let mut t = LivenessTracker::new(2, cfg());
        let t0 = Instant::now();
        assert_eq!(t.join(0, t0), 1);
        assert_eq!(t.join(1, t0), 1);
        assert!(t.all_up());
        assert_eq!(t.metrics().peers_up(), 2);

        t.disconnect(1);
        assert_eq!(t.state(1), PeerState::Down);
        assert_eq!(t.metrics().peers_up(), 1);
        // A dead incarnation's heartbeat must not resurrect the peer.
        t.heartbeat(1, t0 + Duration::from_millis(10));
        assert_eq!(t.state(1), PeerState::Down);

        t.begin_reconnect(1);
        assert_eq!(t.state(1), PeerState::Reconnecting);
        assert_eq!(t.join(1, t0 + Duration::from_millis(20)), 2, "incarnation bumped");
        assert_eq!(t.state(1), PeerState::Up);
        assert_eq!(t.metrics().reconnects_total(), 1);
        assert_eq!(t.min_incarnations(), vec![1, 2]);
    }

    #[test]
    fn backoff_is_exponential_capped_jittered_and_budgeted() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(160);
        let mut b = Backoff::new(base, cap, 6, 42);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 6, "budget bounds the schedule");
        assert!(b.next_delay().is_none(), "exhausted budget yields None");
        for (i, d) in delays.iter().enumerate() {
            let full = (base * (1u32 << i)).min(cap);
            assert!(*d <= full, "attempt {i}: jitter never exceeds the full delay");
            assert!(*d >= full / 2, "attempt {i}: jitter floor is half the full delay");
        }
        // Deterministic in the seed; different seeds de-synchronize.
        let again: Vec<Duration> = std::iter::from_fn({
            let mut b = Backoff::new(base, cap, 6, 42);
            move || b.next_delay()
        })
        .collect();
        assert_eq!(delays, again, "same seed, same schedule");
        let other: Vec<Duration> = std::iter::from_fn({
            let mut b = Backoff::new(base, cap, 6, 43);
            move || b.next_delay()
        })
        .collect();
        assert_ne!(delays, other, "different seeds jitter differently");
    }
}
