//! Integration tests for the TCP transport: a real loopback mesh, frame
//! integrity across the byte stream, FIFO per link, shutdown semantics,
//! and session-tag isolation of multiplexed traffic sharing one socket.

use std::time::Duration;

use bytes::Bytes;
use dauctioneer_net::{frame, unframe, TcpMesh};
use dauctioneer_types::ProviderId;

const RECV: Duration = Duration::from_secs(5);

#[test]
fn full_mesh_delivers_between_all_pairs() {
    let mut mesh = TcpMesh::loopback(3).unwrap();
    let eps = mesh.take_endpoints();
    for from in 0..3u32 {
        for to in 0..3u32 {
            if from == to {
                continue;
            }
            let body = vec![from as u8, to as u8];
            eps[from as usize].send(ProviderId(to), Bytes::from(body.clone()));
            let (who, payload) = eps[to as usize].recv_timeout(RECV).unwrap();
            assert_eq!(who, ProviderId(from));
            assert_eq!(&payload[..], &body[..]);
        }
    }
}

#[test]
fn fifo_per_link_over_tcp() {
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let eps = mesh.take_endpoints();
    for i in 0..100u8 {
        eps[0].send(ProviderId(1), Bytes::copy_from_slice(&[i]));
    }
    for i in 0..100u8 {
        let (_, payload) = eps[1].recv_timeout(RECV).unwrap();
        assert_eq!(payload[0], i, "out-of-order TCP delivery");
    }
}

#[test]
fn message_boundaries_survive_the_byte_stream() {
    // Frames of very different sizes back-to-back on one socket: the
    // wire layer must re-delimit them exactly.
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let eps = mesh.take_endpoints();
    let sizes = [0usize, 1, 7, 8, 9, 1024, 65_537];
    for &len in &sizes {
        eps[0].send(ProviderId(1), Bytes::from(vec![len as u8; len]));
    }
    for &len in &sizes {
        let (_, payload) = eps[1].recv_timeout(RECV).unwrap();
        assert_eq!(payload.len(), len);
        assert!(payload.iter().all(|b| *b == len as u8));
    }
}

#[test]
fn session_tags_survive_a_shared_socket() {
    // Two sessions' frames interleaved over the same TCP connection: the
    // receiver can attribute every frame to its session by tag alone.
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let eps = mesh.take_endpoints();
    for round in 0..10u64 {
        for session in [7u64, 9] {
            let body = format!("s{session}-r{round}");
            eps[0].send(ProviderId(1), frame(session, body.as_bytes()));
        }
    }
    let mut seen = std::collections::HashMap::<u64, u64>::new();
    for _ in 0..20 {
        let (_, payload) = eps[1].recv_timeout(RECV).unwrap();
        let (tag, body) = unframe(&payload).unwrap();
        let round = seen.entry(tag).or_insert(0);
        assert_eq!(
            std::str::from_utf8(body).unwrap(),
            format!("s{tag}-r{round}"),
            "frame attributed to the wrong session"
        );
        *round += 1;
    }
    assert_eq!(seen[&7], 10);
    assert_eq!(seen[&9], 10);
}

#[test]
fn dropping_an_endpoint_disconnects_its_peers() {
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let mut eps = mesh.take_endpoints();
    let e1 = eps.remove(1);
    let e0 = eps.remove(0);
    // Queued messages still arrive before the disconnect is observed.
    e0.send(ProviderId(1), Bytes::from_static(b"last words"));
    drop(e0);
    let (_, payload) = e1.recv_timeout(RECV).unwrap();
    assert_eq!(&payload[..], b"last words");
    let err = loop {
        match e1.recv_timeout(RECV) {
            Ok(_) => continue,
            Err(err) => break err,
        }
    };
    assert_eq!(err, dauctioneer_net::RecvError::Disconnected);
}

#[test]
fn recv_timeout_expires_without_traffic() {
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let eps = mesh.take_endpoints();
    let err = eps[0].recv_timeout(Duration::from_millis(20)).unwrap_err();
    assert_eq!(err, dauctioneer_net::RecvError::Timeout);
}

#[test]
fn broadcast_reaches_all_peers_but_not_self() {
    let mut mesh = TcpMesh::loopback(3).unwrap();
    let eps = mesh.take_endpoints();
    eps[1].broadcast(&Bytes::from_static(b"b"));
    assert!(eps[0].recv_timeout(RECV).is_ok());
    assert!(eps[2].recv_timeout(RECV).is_ok());
    std::thread::sleep(Duration::from_millis(30));
    assert!(eps[1].try_recv().is_none());
}

#[test]
fn concurrent_threads_exchange_over_sockets() {
    let mut mesh = TcpMesh::loopback(4).unwrap();
    let eps = mesh.take_endpoints();
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                ep.broadcast(&Bytes::from_static(b"ping"));
                let mut got = 0;
                while got < 3 {
                    if ep.recv_timeout(RECV).is_ok() {
                        got += 1;
                    }
                }
                got
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 3);
    }
}

#[test]
fn nodelay_keeps_small_frame_latency_below_the_nagle_floor() {
    // The Nagle contract for the dedicated mesh, same as the mux's: a
    // lone small frame with nothing to coalesce against must cross
    // loopback promptly. Without TCP_NODELAY, Nagle + delayed ACK would
    // park exactly this pattern for tens of milliseconds.
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let eps = mesh.take_endpoints();
    let mut samples = Vec::with_capacity(40);
    for i in 0..20u64 {
        let start = std::time::Instant::now();
        eps[0].send(ProviderId(1), frame(i, b"ping"));
        eps[1].recv_timeout(RECV).expect("ping lost");
        samples.push(start.elapsed());
        let start = std::time::Instant::now();
        eps[1].send(ProviderId(0), frame(i, b"pong"));
        eps[0].recv_timeout(RECV).expect("pong lost");
        samples.push(start.elapsed());
    }
    // Median, not worst case: one scheduler stall on a loaded CI runner
    // must not flake the test, while Nagle + delayed ACK would push
    // essentially EVERY sample past the bound.
    samples.sort();
    let median = samples[samples.len() / 2];
    assert!(
        median < std::time::Duration::from_millis(20),
        "median small-frame loopback latency {median:?} smells like Nagle (NODELAY unset?)"
    );
}

#[test]
fn metrics_count_tcp_traffic() {
    let mut mesh = TcpMesh::loopback(2).unwrap();
    let metrics = mesh.metrics();
    let eps = mesh.take_endpoints();
    eps[0].send(ProviderId(1), Bytes::from_static(b"12345"));
    eps[1].recv_timeout(RECV).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.per_provider[0].sent_bytes, 5);
    assert_eq!(snap.per_provider[1].received_bytes, 5);
}
