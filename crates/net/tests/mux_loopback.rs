//! Integration tests for the multiplexed TCP mesh: lane isolation over
//! shared sockets, raw-frame transparency, coalesced flush on shutdown,
//! the `TCP_NODELAY` loopback-latency contract, and the O(1) reactor
//! I/O-thread accounting that replaces the old per-peer O(m) roster
//! (which itself replaced the mesh-per-shard O(m·shards)).

use std::time::{Duration, Instant};

use bytes::Bytes;
use dauctioneer_net::{frame, MuxMesh, RecvError};
use dauctioneer_types::ProviderId;

const RECV: Duration = Duration::from_secs(5);

#[test]
fn lanes_are_isolated_namespaces_over_one_socket() {
    let mut mesh = MuxMesh::loopback(2, 3).unwrap();
    let lanes = mesh.take_lane_endpoints();
    // Interleave traffic on all three lanes of the same provider pair.
    for round in 0..5u64 {
        for (lane, row) in lanes.iter().enumerate() {
            let body = format!("lane{lane}-r{round}");
            row[0].send(ProviderId(1), frame(100 + lane as u64, body.as_bytes()));
        }
    }
    // Each lane receives exactly its own frames, in its own FIFO order.
    for (lane, row) in lanes.iter().enumerate() {
        for round in 0..5u64 {
            let (from, payload) = row[1].recv_timeout(RECV).unwrap();
            assert_eq!(from, ProviderId(0));
            let (tag, body) = dauctioneer_net::unframe(&payload).unwrap();
            assert_eq!(tag, 100 + lane as u64, "frame crossed lanes");
            assert_eq!(std::str::from_utf8(body).unwrap(), format!("lane{lane}-r{round}"));
        }
        assert!(row[1].try_recv().is_none(), "lane {lane} got a foreign frame");
    }
}

#[test]
fn full_mesh_delivers_between_all_pairs_on_every_lane() {
    let m = 3;
    let lanes_n = 2;
    let mut mesh = MuxMesh::loopback(m, lanes_n).unwrap();
    let lanes = mesh.take_lane_endpoints();
    for (lane, row) in lanes.iter().enumerate() {
        for from in 0..m as u32 {
            for to in 0..m as u32 {
                if from == to {
                    continue;
                }
                let body = frame(7, &[lane as u8, from as u8, to as u8]);
                row[from as usize].send(ProviderId(to), body.clone());
                let (who, payload) = row[to as usize].recv_timeout(RECV).unwrap();
                assert_eq!(who, ProviderId(from));
                assert_eq!(&payload[..], &body[..]);
            }
        }
    }
}

#[test]
fn raw_payloads_cross_the_mux_verbatim() {
    // Garbage that is not a session frame (what the GarbageFrames
    // adversary emits), a payload whose leading u64 cannot fold, and an
    // empty message: all must arrive byte-identical.
    let mut mesh = MuxMesh::loopback(2, 1).unwrap();
    let lanes = mesh.take_lane_endpoints();
    let payloads: Vec<Bytes> = vec![
        Bytes::from_static(b"\xde\xad\xbe"),
        Bytes::from_static(b""),
        Bytes::copy_from_slice(&u64::MAX.to_le_bytes()),
        frame(u64::MAX, b"unfoldable tag"),
    ];
    for p in &payloads {
        lanes[0][0].send(ProviderId(1), p.clone());
    }
    for p in &payloads {
        let (_, got) = lanes[0][1].recv_timeout(RECV).unwrap();
        assert_eq!(&got[..], &p[..], "payload mangled by the mux");
    }
}

#[test]
fn io_threads_are_o_1_regardless_of_mesh_size_and_lanes() {
    // The whole point of the reactor: one I/O thread per mesh, no
    // matter how many providers or lanes — where the old design paid
    // 2m(m−1) blocking reader/writer threads per mesh. (The matching
    // OS-level /proc accounting lives in `thread_roster.rs`, which
    // needs a process of its own to count exactly.)
    for (m, lanes) in [(2, 1), (3, 4), (4, 1), (4, 4)] {
        let mesh = MuxMesh::loopback(m, lanes).unwrap();
        assert_eq!(
            mesh.io_threads(),
            1,
            "m={m} lanes={lanes}: mesh size or lane count leaked into the I/O thread roster"
        );
        // The gauge agrees through the traffic snapshot.
        assert_eq!(mesh.metrics().snapshot().io_threads, 1);
    }
    // Endpoints report the same constant.
    let mut mesh = MuxMesh::loopback(3, 2).unwrap();
    let lanes = mesh.take_lane_endpoints();
    assert_eq!(lanes[0][0].io_threads(), 1);
    assert_eq!(lanes[1][2].io_threads(), 1);
}

#[test]
fn queued_frames_flush_on_shutdown() {
    // Drop a provider's every lane endpoint with frames still queued:
    // the coalescing writers must drain and flush before the sockets
    // close, so nothing is lost (a decided engine's final sends must
    // reach the peers).
    let mut mesh = MuxMesh::loopback(2, 2).unwrap();
    let mut lanes = mesh.take_lane_endpoints();
    let receiver_l0 = lanes[0].remove(1);
    let receiver_l1 = lanes[1].remove(1);
    let sender_l0 = lanes[0].remove(0);
    let sender_l1 = lanes[1].remove(0);
    for i in 0..200u64 {
        sender_l0.send(ProviderId(1), frame(i, b"lane zero"));
        sender_l1.send(ProviderId(1), frame(i, b"lane one"));
    }
    drop(sender_l0);
    drop(sender_l1); // last endpoint: joins writers (drain + flush)
    for _ in 0..200 {
        let (_, p0) = receiver_l0.recv_timeout(RECV).expect("lane-0 frame lost in shutdown");
        let (_, p1) = receiver_l1.recv_timeout(RECV).expect("lane-1 frame lost in shutdown");
        assert_eq!(&p0[8..], b"lane zero");
        assert_eq!(&p1[8..], b"lane one");
    }
    // After the flush the peers observe a clean disconnect.
    let err = loop {
        match receiver_l0.recv_timeout(RECV) {
            Ok(_) => continue,
            Err(err) => break err,
        }
    };
    assert_eq!(err, RecvError::Disconnected);
}

#[test]
fn nodelay_keeps_small_frame_latency_below_the_nagle_floor() {
    // The Nagle contract: a lone small frame (nothing to coalesce with)
    // must cross loopback promptly. With TCP_NODELAY unset, Nagle +
    // delayed ACK would park exactly this pattern for tens of
    // milliseconds; the bound below fails loudly in that world while
    // leaving ample slack for scheduler noise.
    let mut mesh = MuxMesh::loopback(2, 1).unwrap();
    let lanes = mesh.take_lane_endpoints();
    let mut samples = Vec::with_capacity(40);
    for i in 0..20u64 {
        let start = Instant::now();
        lanes[0][0].send(ProviderId(1), frame(i, b"ping"));
        lanes[0][1].recv_timeout(RECV).expect("ping lost");
        samples.push(start.elapsed());
        // Round trips alternate direction so both streams are exercised.
        let start = Instant::now();
        lanes[0][1].send(ProviderId(0), frame(i, b"pong"));
        lanes[0][0].recv_timeout(RECV).expect("pong lost");
        samples.push(start.elapsed());
    }
    // Median, not worst case: a single scheduler stall on a loaded CI
    // runner must not flake the test, while Nagle + delayed ACK would
    // push essentially EVERY sample past the bound.
    samples.sort();
    let median = samples[samples.len() / 2];
    assert!(
        median < Duration::from_millis(20),
        "median small-frame loopback latency {median:?} smells like Nagle (NODELAY unset?)"
    );
}

#[test]
fn shared_metrics_span_all_lanes() {
    let mut mesh = MuxMesh::loopback(2, 2).unwrap();
    let metrics = mesh.metrics();
    let lanes = mesh.take_lane_endpoints();
    lanes[0][0].send(ProviderId(1), frame(1, b"abc"));
    lanes[1][0].send(ProviderId(1), frame(2, b"de"));
    lanes[0][1].recv_timeout(RECV).unwrap();
    lanes[1][1].recv_timeout(RECV).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.per_provider[0].sent_messages, 2);
    assert_eq!(snap.per_provider[1].received_messages, 2);
}

#[test]
fn dropping_one_lane_leaves_the_others_running() {
    let mut mesh = MuxMesh::loopback(2, 2).unwrap();
    let mut lanes = mesh.take_lane_endpoints();
    let dead_lane = lanes.remove(1);
    drop(dead_lane); // both endpoints of lane 1 gone
    let live = lanes.remove(0);
    // Lane 0 still works over the same (shared) sockets.
    live[0].send(ProviderId(1), frame(3, b"still here"));
    let (_, payload) = live[1].recv_timeout(RECV).unwrap();
    assert_eq!(&payload[8..], b"still here");
}
