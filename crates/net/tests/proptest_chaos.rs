//! Property tests for the chaos plane: every fault decision — and hence
//! the whole delivered stream of a wrapped transport — is a pure
//! function of `(plan, seed, link, message index)`, and the zero plan is
//! exactly transparent.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use dauctioneer_net::{ChaosTransport, FaultPlan, RecvError, Transport};
use dauctioneer_types::ProviderId;

/// A transport that replays a fixed incoming schedule: the scripted
/// harness that isolates the chaos layer from real threads and clocks.
struct ScriptTransport {
    me: ProviderId,
    m: usize,
    queue: VecDeque<(ProviderId, Bytes)>,
}

impl ScriptTransport {
    fn new(me: ProviderId, m: usize, script: &[(ProviderId, Vec<u8>)]) -> ScriptTransport {
        ScriptTransport {
            me,
            m,
            queue: script
                .iter()
                .map(|(from, payload)| (*from, Bytes::copy_from_slice(payload)))
                .collect(),
        }
    }
}

impl Transport for ScriptTransport {
    fn me(&self) -> ProviderId {
        self.me
    }

    fn num_providers(&self) -> usize {
        self.m
    }

    fn send(&mut self, _to: ProviderId, _payload: Bytes) {}

    fn recv_timeout(&mut self, _timeout: Duration) -> Result<(ProviderId, Bytes), RecvError> {
        self.queue.pop_front().ok_or(RecvError::Disconnected)
    }
}

/// Run `script` through `plan` and collect everything delivered, in
/// order, until the wrapper reports the script exhausted.
fn deliveries(plan: FaultPlan, script: &[(ProviderId, Vec<u8>)]) -> Vec<(ProviderId, Vec<u8>)> {
    let mut chaos = ChaosTransport::new(ScriptTransport::new(ProviderId(2), 3, script), plan);
    let mut out = Vec::new();
    // Bounded loop: every parked/held message has a finite due time, so
    // Disconnected eventually propagates. The bound is generous slack,
    // not load-bearing.
    for _ in 0..script.len() * 4 + 16 {
        match chaos.recv_timeout(Duration::from_millis(200)) {
            Ok((from, payload)) => out.push((from, payload.to_vec())),
            Err(RecvError::Disconnected) => break,
            Err(RecvError::Timeout) => {} // internal deadline pending
        }
    }
    out
}

/// Messages from providers 0 and 1 arriving at provider 2.
fn arb_script() -> impl Strategy<Value = Vec<(ProviderId, Vec<u8>)>> {
    proptest::collection::vec((0u32..2, proptest::collection::vec(any::<u8>(), 1..24)), 0..24)
        .prop_map(|raw| {
            raw.into_iter().map(|(from, payload)| (ProviderId(from), payload)).collect()
        })
}

/// Plans over the schedule-independent fault classes (drop, duplicate,
/// reorder, corrupt): their delivered stream is a pure function of the
/// seed, byte for byte and in order.
fn arb_content_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.0..0.5f64, 0.0..0.5f64, 0.0..0.5f64, 0.0..0.5f64).prop_map(
        |(seed, drop, dup, reorder, corrupt)| {
            let mut plan = FaultPlan::seeded(seed)
                .with_drop(drop)
                .with_duplicate(dup)
                .with_reorder(reorder)
                .with_corrupt(corrupt);
            plan.reorder_hold = Duration::from_millis(2);
            plan
        },
    )
}

/// Plans with every knob active, including delays. Delayed delivery
/// *points* race the clock, so only the delivered multiset (not the
/// interleaving) is seed-determined.
fn arb_full_plan() -> impl Strategy<Value = FaultPlan> {
    (arb_content_plan(), 0.0..0.5f64)
        .prop_map(|(plan, delay)| plan.with_delay(delay, Duration::ZERO, Duration::from_millis(2)))
}

fn sorted(mut v: Vec<(ProviderId, Vec<u8>)>) -> Vec<(ProviderId, Vec<u8>)> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn content_plans_replay_byte_identically_from_their_seed(
        plan in arb_content_plan(),
        script in arb_script(),
    ) {
        // The whole point of the chaos plane: two runs of the same plan
        // over the same per-link schedule deliver the identical byte
        // stream — drops, duplicates, swaps, corruption and all.
        let first = deliveries(plan, &script);
        let second = deliveries(plan, &script);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn delay_plans_replay_the_identical_multiset(
        plan in arb_full_plan(),
        script in arb_script(),
    ) {
        // With delays in play the *interleaving* races the clock, but
        // which messages survive, duplicate, and how each is corrupted
        // is still a pure function of the seed.
        let first = sorted(deliveries(plan, &script));
        let second = sorted(deliveries(plan, &script));
        prop_assert_eq!(first, second);
    }

    #[test]
    fn zero_probability_plan_is_exactly_transparent(
        seed in any::<u64>(),
        script in arb_script(),
    ) {
        let plan = FaultPlan::seeded(seed);
        prop_assert!(plan.is_benign());
        let got = deliveries(plan, &script);
        let want: Vec<(ProviderId, Vec<u8>)> = script.clone();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn content_faults_never_invent_or_grow_messages(
        plan in arb_full_plan(),
        script in arb_script(),
    ) {
        // Conservation: at most 2 copies of each scripted message (the
        // duplicate cap), nothing from unknown senders, and corruption
        // preserves length.
        let got = deliveries(plan, &script);
        prop_assert!(got.len() <= script.len() * 2);
        for (from, payload) in &got {
            prop_assert!(from.index() < 2);
            prop_assert!(
                script.iter().any(|(f, p)| f == from && p.len() == payload.len()),
                "delivered a message whose length matches nothing ever sent on that link"
            );
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_their_coordinates(
        seed in any::<u64>(),
        salt in any::<u64>(),
        from in 0u32..8,
        to in 0u32..8,
        index in any::<u64>(),
    ) {
        let plan = FaultPlan::seeded(seed)
            .with_drop(0.3)
            .with_duplicate(0.3)
            .with_reorder(0.3)
            .with_delay(0.3, Duration::ZERO, Duration::from_millis(2))
            .with_corrupt(0.3);
        let a = plan.decide(salt, ProviderId(from), ProviderId(to), index);
        let b = plan.decide(salt, ProviderId(from), ProviderId(to), index);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn spec_strings_round_trip(plan in arb_full_plan()) {
        let respelled: FaultPlan = plan.to_string().parse().unwrap();
        prop_assert_eq!(plan, respelled);
    }
}
