//! OS-level I/O-thread accounting for the socket transports.
//!
//! This is the regression test for the reactor's central claim: a mesh
//! of `m` providers and any number of lanes holds a **constant** number
//! of I/O threads — one reactor — where the old design spawned a
//! blocking reader and a coalescing writer per peer connection
//! (`2m(m−1)` threads per mux mesh, `2(m−1)` per dedicated-mesh
//! endpoint). It counts real OS threads via `/proc/self/task` rather
//! than trusting the API's own `io_threads()` gauge, using the
//! named-thread partition trick: every reactor thread is named with a
//! fixed prefix that survives the kernel's 15-byte `comm` truncation.
//!
//! It lives in its own integration-test binary (= its own process) so
//! the exact thread counts cannot race with other tests' meshes.

use dauctioneer_net::{MuxMesh, TcpMesh};

/// Live OS threads of this process whose name starts with the reactor
/// prefix.
fn reactor_threads() -> usize {
    let mut n = 0;
    for entry in std::fs::read_dir("/proc/self/task").expect("procfs is available on Linux") {
        let Ok(entry) = entry else { continue };
        let Ok(comm) = std::fs::read_to_string(entry.path().join("comm")) else { continue };
        if comm.trim_end().starts_with("net-reactor") {
            n += 1;
        }
    }
    n
}

/// Poll until the roster settles at `expected`, then assert it stays
/// there. A freshly spawned reactor names itself from inside the new
/// thread, so an immediate `/proc` read can race the rename; an *excess*
/// of threads never self-corrects, so only the upward direction waits.
#[track_caller]
fn assert_roster(expected: usize, context: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let n = reactor_threads();
        if n == expected {
            return;
        }
        if std::time::Instant::now() > deadline {
            assert_eq!(n, expected, "{context}");
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn os_thread_roster_is_constant_in_mesh_size_and_lanes() {
    assert_roster(0, "no meshes yet, no reactor threads");

    // Growing m and lanes never grows the per-mesh thread roster: each
    // loopback mesh costs exactly one reactor thread, total.
    let mut meshes = Vec::new();
    for (m, lanes) in [(2, 1), (3, 1), (3, 4), (4, 8)] {
        meshes.push(MuxMesh::loopback(m, lanes).unwrap());
        assert_roster(
            meshes.len(),
            &format!("mux m={m} lanes={lanes}: expected one reactor thread per mesh"),
        );
    }

    // The dedicated (plain) mesh shares the same property: one reactor
    // for all m nodes, not 2(m−1) threads per endpoint.
    let tcp = TcpMesh::loopback(4).unwrap();
    assert_roster(meshes.len() + 1, "plain mesh grew more than one I/O thread");

    // Teardown releases them: drop everything and the roster returns to
    // zero (dropping the last handle joins each reactor thread, so the
    // zero is deterministic, not eventual).
    drop(tcp);
    drop(meshes);
    assert_eq!(reactor_threads(), 0, "reactor threads leaked past mesh teardown");
}
