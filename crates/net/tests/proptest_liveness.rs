//! Property tests for the incarnation handshake and the liveness state
//! machine: a returning peer's new life must always be admitted, every
//! frame from a previous life must always be rejected, and the
//! Suspect → Down demotion must take the full configured timeout with
//! no flapping in between.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use dauctioneer_net::{Hello, LivenessConfig, LivenessTracker, PeerState, HELLO_LEN, HELLO_MAGIC};

fn arb_floors() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..64, 1..12)
}

proptest! {
    #[test]
    fn hello_roundtrips(peer in any::<u32>(), incarnation in any::<u32>()) {
        let hello = Hello { peer, incarnation };
        let decoded = Hello::decode(&hello.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded.peer, peer);
        prop_assert_eq!(decoded.incarnation, incarnation);
    }

    #[test]
    fn hello_rejects_every_wrong_magic(
        magic in any::<u32>(),
        peer in any::<u32>(),
        incarnation in any::<u32>(),
    ) {
        prop_assume!(magic != HELLO_MAGIC);
        let mut buf = [0u8; HELLO_LEN];
        buf[0..4].copy_from_slice(&magic.to_le_bytes());
        buf[4..8].copy_from_slice(&peer.to_le_bytes());
        buf[8..12].copy_from_slice(&incarnation.to_le_bytes());
        prop_assert_eq!(Hello::decode(&buf), None);
    }

    /// The core rejoin safety property: relative to any incarnation
    /// floor vector, a hello is admissible iff the peer id is in range
    /// AND its incarnation has caught up with the floor — so no frame
    /// from a previous life (incarnation below the floor the tracker
    /// advanced past) is ever admitted, and no fresh life (at or above
    /// the floor) is ever turned away.
    #[test]
    fn stale_incarnations_are_never_admissible(
        floors in arb_floors(),
        peer in 0u32..16,
        incarnation in 0u32..128,
    ) {
        let hello = Hello { peer, incarnation };
        let m = floors.len();
        let fresh = (peer as usize) < m && incarnation >= floors[peer as usize];
        prop_assert_eq!(hello.admissible(m, &floors), fresh);
    }

    /// Each rejoin bumps the incarnation, and the tracker's published
    /// floor vector always rejects every prior life while admitting the
    /// current one — across any number of kill/rejoin rounds.
    #[test]
    fn every_prior_life_is_fenced_after_rejoins(
        m in 2usize..8,
        victim_seed in any::<u32>(),
        rejoins in 1usize..12,
    ) {
        let victim = victim_seed as usize % m;
        let mut tracker = LivenessTracker::new(m, LivenessConfig::default());
        let now = Instant::now();
        let mut lives = Vec::new();
        for p in 0..m {
            lives.push(tracker.join(p, now));
        }
        for round in 0..rejoins {
            tracker.disconnect(victim);
            tracker.begin_reconnect(victim);
            let life = tracker.join(victim, now);
            prop_assert!(life > lives[victim], "round {round}: incarnation did not advance");
            lives[victim] = life;
        }
        let floors = tracker.min_incarnations();
        // Every previous life of the victim is fenced out...
        for stale in 0..lives[victim] {
            let ghost = Hello { peer: victim as u32, incarnation: stale };
            prop_assert!(
                !ghost.admissible(m, &floors),
                "stale incarnation {stale} admitted after {rejoins} rejoins"
            );
        }
        // ...while every peer's current life is admitted.
        for (p, &life) in lives.iter().enumerate() {
            let current = Hello { peer: p as u32, incarnation: life };
            prop_assert!(current.admissible(m, &floors), "live incarnation rejected");
        }
    }

    /// No flapping: a silent peer is demoted Up → Suspect → Down at
    /// exactly the configured thresholds — never earlier, never
    /// skipping Suspect, and never oscillating back without a
    /// heartbeat. Checked against arbitrary (ordered) timeout pairs by
    /// sweeping ticks across the whole timeline.
    #[test]
    fn demotion_takes_the_full_timeout_and_never_flaps(
        suspect_ms in 1u64..200,
        extra_ms in 1u64..200,
        steps in 4usize..32,
    ) {
        let config = LivenessConfig {
            suspect_after: Duration::from_millis(suspect_ms),
            down_after: Duration::from_millis(suspect_ms + extra_ms),
        };
        let down_ms = suspect_ms + extra_ms;
        let mut tracker = LivenessTracker::new(1, config);
        let start = Instant::now();
        tracker.join(0, start);
        prop_assert_eq!(tracker.state(0), PeerState::Up);

        let mut previous_rank = 0u8;
        for step in 0..=steps {
            let elapsed_ms = down_ms * 2 * step as u64 / steps as u64;
            tracker.tick(start + Duration::from_millis(elapsed_ms));
            let state = tracker.state(0);
            let expected = if elapsed_ms < suspect_ms {
                PeerState::Up
            } else if elapsed_ms < down_ms {
                PeerState::Suspect
            } else {
                PeerState::Down
            };
            prop_assert_eq!(
                state, expected,
                "at {}ms (suspect {}ms, down {}ms)", elapsed_ms, suspect_ms, down_ms
            );
            // Monotone decay: silence never promotes a peer.
            let rank = match state {
                PeerState::Up => 0u8,
                PeerState::Suspect => 1,
                PeerState::Down | PeerState::Reconnecting => 2,
            };
            prop_assert!(rank >= previous_rank, "state flapped upward without a heartbeat");
            previous_rank = rank;
        }

        // One heartbeat restores Up from Suspect, and the demotion
        // clock restarts from the heartbeat instant.
        let mut tracker = LivenessTracker::new(1, config);
        tracker.join(0, start);
        let mid_suspect = start + Duration::from_millis(suspect_ms + extra_ms / 2);
        tracker.tick(mid_suspect);
        prop_assert_eq!(tracker.state(0), PeerState::Suspect);
        tracker.heartbeat(0, mid_suspect);
        tracker.tick(mid_suspect);
        prop_assert_eq!(tracker.state(0), PeerState::Up);
        tracker.tick(mid_suspect + Duration::from_millis(suspect_ms - 1));
        prop_assert_eq!(tracker.state(0), PeerState::Up, "heartbeat did not restart the clock");
    }
}
