//! Property tests for the framing layers: the session/channel frame
//! (`frame`/`unframe`), the stream-delimiting wire frame
//! (`wire_encode`/`wire_decode`), the multiplexed tag namespace
//! (`mux_pack`/`mux_frame_into`), and the reactor's incremental
//! reassembly (`FrameAssembler`) under arbitrary byte-boundary
//! chunkings — including truncated, oversized and garbage inputs.

use bytes::BytesMut;
use proptest::prelude::*;

use dauctioneer_net::{
    frame, frame_wire_into, mux_frame_into, mux_pack, mux_unframe, mux_unpack, unframe,
    wire_decode, wire_encode, wire_encode_into, FrameAssembler, WireError, MAX_WIRE_FRAME,
    MUX_MAX_LANES, MUX_RAW_TAG,
};

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

/// Decode `stream` the reference way: whole buffer at once, repeated
/// `wire_decode`, collecting every complete frame.
fn whole_stream_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut offset = 0;
    while let Some((payload, consumed)) = wire_decode(&stream[offset..]).unwrap() {
        frames.push(payload.to_vec());
        offset += consumed;
    }
    frames
}

/// Feed `stream` to a [`FrameAssembler`] in chunks cut at `cuts`
/// (positions derived from arbitrary seeds), draining complete frames
/// after every chunk — exactly what the reactor does per socket read.
fn chunked_stream_frames(stream: &[u8], chunk_sizes: impl Iterator<Item = usize>) -> Vec<Vec<u8>> {
    let mut assembler = FrameAssembler::new();
    let mut frames = Vec::new();
    let mut offset = 0;
    for size in chunk_sizes {
        if offset >= stream.len() {
            break;
        }
        let end = (offset + size.max(1)).min(stream.len());
        assembler.extend(&stream[offset..end]);
        offset = end;
        while let Some(frame) = assembler.next_frame().unwrap() {
            frames.push(frame.to_vec());
        }
    }
    if offset < stream.len() {
        assembler.extend(&stream[offset..]);
        while let Some(frame) = assembler.next_frame().unwrap() {
            frames.push(frame.to_vec());
        }
    }
    frames
}

proptest! {
    #[test]
    fn session_frame_roundtrips(tag in any::<u64>(), payload in arb_payload()) {
        let framed = frame(tag, &payload);
        let (got_tag, got_payload) = unframe(&framed).unwrap();
        prop_assert_eq!(got_tag, tag);
        prop_assert_eq!(got_payload, &payload[..]);
    }

    #[test]
    fn unframe_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics: short inputs error, everything else splits at 8.
        match unframe(&garbage) {
            Ok((tag, rest)) => {
                prop_assert!(garbage.len() >= 8);
                prop_assert_eq!(tag, u64::from_le_bytes(garbage[..8].try_into().unwrap()));
                prop_assert_eq!(rest.len(), garbage.len() - 8);
            }
            Err(_) => prop_assert!(garbage.len() < 8),
        }
    }

    #[test]
    fn wire_frame_roundtrips(payload in arb_payload()) {
        let encoded = wire_encode(&payload);
        let (got, consumed) = wire_decode(&encoded).unwrap().expect("complete frame");
        prop_assert_eq!(got, &payload[..]);
        prop_assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn truncated_wire_frames_ask_for_more(payload in arb_payload(), cut_seed in any::<u64>()) {
        let encoded = wire_encode(&payload);
        let cut = (cut_seed as usize) % encoded.len().max(1);
        prop_assert_eq!(wire_decode(&encoded[..cut]).unwrap(), None);
    }

    #[test]
    fn wire_decode_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics, and whatever it returns is internally consistent.
        match wire_decode(&garbage) {
            Ok(Some((payload, consumed))) => {
                prop_assert_eq!(consumed, 4 + payload.len());
                prop_assert!(consumed <= garbage.len());
                prop_assert!(payload.len() <= MAX_WIRE_FRAME);
            }
            Ok(None) => {} // truncated: needs more bytes
            Err(WireError::Oversized { claimed }) => prop_assert!(claimed > MAX_WIRE_FRAME),
            Err(other) => prop_assert!(false, "wire_decode produced a non-framing error: {other}"),
        }
    }

    #[test]
    fn oversized_wire_headers_are_fatal(
        extra in 1u32..1024,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let claimed = MAX_WIRE_FRAME as u32 + extra;
        let mut stream = Vec::from(claimed.to_le_bytes());
        stream.extend_from_slice(&tail);
        prop_assert_eq!(
            wire_decode(&stream).unwrap_err(),
            WireError::Oversized { claimed: claimed as usize }
        );
    }

    #[test]
    fn hot_path_builders_match_the_layered_encoders(
        tag in any::<u64>(),
        payload in arb_payload(),
    ) {
        // The single reserved-header builds are byte-for-byte what the
        // two-layer encode chain produces.
        let mut buf = BytesMut::new();
        wire_encode_into(&payload, &mut buf);
        prop_assert_eq!(&buf[..], &wire_encode(&payload)[..]);
        let mut buf = BytesMut::new();
        frame_wire_into(tag, &payload, &mut buf);
        prop_assert_eq!(&buf[..], &wire_encode(&frame(tag, &payload))[..]);
    }

    #[test]
    fn mux_pack_is_injective_and_roundtrips(
        lane_a in 0..MUX_MAX_LANES,
        lane_b in 0..MUX_MAX_LANES,
        session_a in 0..=MUX_RAW_TAG,
        session_b in 0..=MUX_RAW_TAG,
    ) {
        // Round trip: pack∘unpack is the identity on the whole domain.
        prop_assert_eq!(mux_unpack(mux_pack(lane_a, session_a)), (lane_a, session_a));
        // Injectivity: distinct pairs never collide in the u64 namespace.
        if (lane_a, session_a) != (lane_b, session_b) {
            prop_assert_ne!(mux_pack(lane_a, session_a), mux_pack(lane_b, session_b));
        }
    }

    #[test]
    fn mux_triple_roundtrips_through_all_layers(
        shard in 0..MUX_MAX_LANES,
        session in 0..MUX_RAW_TAG,
        channel in any::<u64>(),
        body in arb_payload(),
    ) {
        // The full (shard, session, channel) triple as the engine stacks
        // it: channel frame nested in a session frame, folded onto a mux
        // lane. Every component must come back exactly.
        let payload = frame(session, &frame(channel, &body));
        let mut wire = BytesMut::new();
        mux_frame_into(shard, &payload, &mut wire);
        let (wire_frame, consumed) = wire_decode(&wire).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, wire.len());
        let (got_shard, restored) = mux_unframe(wire_frame).unwrap();
        prop_assert_eq!(got_shard, shard);
        prop_assert_eq!(&restored[..], &payload[..], "restored payload differs");
        let (got_session, inner) = unframe(&restored).unwrap();
        prop_assert_eq!(got_session, session);
        let (got_channel, got_body) = unframe(inner).unwrap();
        prop_assert_eq!(got_channel, channel);
        prop_assert_eq!(got_body, &body[..]);
    }

    #[test]
    fn mux_fold_never_alters_any_payload(
        lane in 0..MUX_MAX_LANES,
        payload in arb_payload(),
    ) {
        // Whatever the bytes — too short for a tag, reserved tag values,
        // high bits set — the mux delivers them verbatim (fold and raw
        // escape are both exact inverses).
        let mut wire = BytesMut::new();
        mux_frame_into(lane, &payload, &mut wire);
        let (wire_frame, _) = wire_decode(&wire).unwrap().expect("complete frame");
        let (got_lane, restored) = mux_unframe(wire_frame).unwrap();
        prop_assert_eq!(got_lane, lane);
        prop_assert_eq!(&restored[..], &payload[..]);
    }

    #[test]
    fn reassembly_is_chunking_invariant(
        payloads in proptest::collection::vec(arb_payload(), 0..8),
        chunks in proptest::collection::vec(1usize..64, 1..64),
    ) {
        // The reactor's per-connection assembler must deliver the exact
        // frame sequence of the whole-buffer decoder no matter where the
        // kernel cuts the reads — mid-header, mid-payload, anywhere.
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&wire_encode(payload));
        }
        let reference = whole_stream_frames(&stream);
        prop_assert_eq!(&reference, &payloads, "reference decoder disagrees with the encoder");
        let chunked = chunked_stream_frames(&stream, chunks.into_iter());
        prop_assert_eq!(chunked, reference, "chunk boundaries changed the delivered stream");
    }

    #[test]
    fn one_byte_drips_reassemble_exactly(
        payloads in proptest::collection::vec(arb_payload(), 1..5),
    ) {
        // Worst case fragmentation: every read returns a single byte, so
        // every 4-byte header straddles reads and no frame ever arrives
        // whole.
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&wire_encode(payload));
        }
        let dripped = chunked_stream_frames(&stream, std::iter::repeat(1));
        prop_assert_eq!(dripped, payloads);
    }

    #[test]
    fn header_straddling_splits_reassemble_exactly(
        first in arb_payload(),
        second in arb_payload(),
        split_in_header in 1usize..4,
    ) {
        // Cut the stream inside the second frame's length header: the
        // assembler holds the partial header across reads and still
        // yields both frames byte-identically.
        let mut stream = Vec::new();
        stream.extend_from_slice(&wire_encode(&first));
        let cut = stream.len() + split_in_header;
        stream.extend_from_slice(&wire_encode(&second));
        let chunks = [cut, stream.len() - cut];
        let got = chunked_stream_frames(&stream, chunks.into_iter());
        prop_assert_eq!(got, vec![first, second]);
    }

    #[test]
    fn assembler_surfaces_oversized_headers_mid_stream(
        good in arb_payload(),
        extra in 1u32..1024,
    ) {
        // A valid frame followed by a poisoned header: the good frame is
        // delivered, then the assembler reports the same fatal error the
        // whole-buffer decoder would.
        let mut assembler = FrameAssembler::new();
        assembler.extend(&wire_encode(&good));
        let claimed = MAX_WIRE_FRAME as u32 + extra;
        assembler.extend(&claimed.to_le_bytes());
        let frame = assembler.next_frame().unwrap().expect("good frame lost");
        prop_assert_eq!(&frame[..], &good[..]);
        prop_assert_eq!(
            assembler.next_frame().unwrap_err(),
            WireError::Oversized { claimed: claimed as usize }
        );
    }

    #[test]
    fn stacked_frames_decode_in_order(
        frames in proptest::collection::vec((any::<u64>(), arb_payload()), 1..8),
    ) {
        // What a TCP reader sees: several session-tagged frames, each
        // wire-delimited, concatenated on one byte stream.
        let mut stream = Vec::new();
        for (tag, payload) in &frames {
            stream.extend_from_slice(&wire_encode(&frame(*tag, payload)));
        }
        let mut offset = 0;
        for (tag, payload) in &frames {
            let (wire_payload, consumed) =
                wire_decode(&stream[offset..]).unwrap().expect("complete frame");
            let (got_tag, got_payload) = unframe(wire_payload).unwrap();
            prop_assert_eq!(got_tag, *tag);
            prop_assert_eq!(got_payload, &payload[..]);
            offset += consumed;
        }
        prop_assert_eq!(offset, stream.len());
    }
}
