//! Property tests for both framing layers: the session/channel frame
//! (`frame`/`unframe`) and the stream-delimiting wire frame
//! (`wire_encode`/`wire_decode`), including truncated, oversized and
//! garbage inputs.

use proptest::prelude::*;

use dauctioneer_net::{frame, unframe, wire_decode, wire_encode, WireError, MAX_WIRE_FRAME};

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

proptest! {
    #[test]
    fn session_frame_roundtrips(tag in any::<u64>(), payload in arb_payload()) {
        let framed = frame(tag, &payload);
        let (got_tag, got_payload) = unframe(&framed).unwrap();
        prop_assert_eq!(got_tag, tag);
        prop_assert_eq!(got_payload, &payload[..]);
    }

    #[test]
    fn unframe_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics: short inputs error, everything else splits at 8.
        match unframe(&garbage) {
            Ok((tag, rest)) => {
                prop_assert!(garbage.len() >= 8);
                prop_assert_eq!(tag, u64::from_le_bytes(garbage[..8].try_into().unwrap()));
                prop_assert_eq!(rest.len(), garbage.len() - 8);
            }
            Err(_) => prop_assert!(garbage.len() < 8),
        }
    }

    #[test]
    fn wire_frame_roundtrips(payload in arb_payload()) {
        let encoded = wire_encode(&payload);
        let (got, consumed) = wire_decode(&encoded).unwrap().expect("complete frame");
        prop_assert_eq!(got, &payload[..]);
        prop_assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn truncated_wire_frames_ask_for_more(payload in arb_payload(), cut_seed in any::<u64>()) {
        let encoded = wire_encode(&payload);
        let cut = (cut_seed as usize) % encoded.len().max(1);
        prop_assert_eq!(wire_decode(&encoded[..cut]).unwrap(), None);
    }

    #[test]
    fn wire_decode_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics, and whatever it returns is internally consistent.
        match wire_decode(&garbage) {
            Ok(Some((payload, consumed))) => {
                prop_assert_eq!(consumed, 4 + payload.len());
                prop_assert!(consumed <= garbage.len());
                prop_assert!(payload.len() <= MAX_WIRE_FRAME);
            }
            Ok(None) => {} // truncated: needs more bytes
            Err(WireError::Oversized { claimed }) => prop_assert!(claimed > MAX_WIRE_FRAME),
        }
    }

    #[test]
    fn oversized_wire_headers_are_fatal(
        extra in 1u32..1024,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let claimed = MAX_WIRE_FRAME as u32 + extra;
        let mut stream = Vec::from(claimed.to_le_bytes());
        stream.extend_from_slice(&tail);
        prop_assert_eq!(
            wire_decode(&stream).unwrap_err(),
            WireError::Oversized { claimed: claimed as usize }
        );
    }

    #[test]
    fn stacked_frames_decode_in_order(
        frames in proptest::collection::vec((any::<u64>(), arb_payload()), 1..8),
    ) {
        // What a TCP reader sees: several session-tagged frames, each
        // wire-delimited, concatenated on one byte stream.
        let mut stream = Vec::new();
        for (tag, payload) in &frames {
            stream.extend_from_slice(&wire_encode(&frame(*tag, payload)));
        }
        let mut offset = 0;
        for (tag, payload) in &frames {
            let (wire_payload, consumed) =
                wire_decode(&stream[offset..]).unwrap().expect("complete frame");
            let (got_tag, got_payload) = unframe(wire_payload).unwrap();
            prop_assert_eq!(got_tag, *tag);
            prop_assert_eq!(got_payload, &payload[..]);
            offset += consumed;
        }
        prop_assert_eq!(offset, stream.len());
    }
}
