//! Property tests for the framing layers: the session/channel frame
//! (`frame`/`unframe`), the stream-delimiting wire frame
//! (`wire_encode`/`wire_decode`) and the multiplexed tag namespace
//! (`mux_pack`/`mux_frame_into`), including truncated, oversized and
//! garbage inputs.

use bytes::BytesMut;
use proptest::prelude::*;

use dauctioneer_net::{
    frame, frame_wire_into, mux_frame_into, mux_pack, mux_unframe, mux_unpack, unframe,
    wire_decode, wire_encode, wire_encode_into, WireError, MAX_WIRE_FRAME, MUX_MAX_LANES,
    MUX_RAW_TAG,
};

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..300)
}

proptest! {
    #[test]
    fn session_frame_roundtrips(tag in any::<u64>(), payload in arb_payload()) {
        let framed = frame(tag, &payload);
        let (got_tag, got_payload) = unframe(&framed).unwrap();
        prop_assert_eq!(got_tag, tag);
        prop_assert_eq!(got_payload, &payload[..]);
    }

    #[test]
    fn unframe_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics: short inputs error, everything else splits at 8.
        match unframe(&garbage) {
            Ok((tag, rest)) => {
                prop_assert!(garbage.len() >= 8);
                prop_assert_eq!(tag, u64::from_le_bytes(garbage[..8].try_into().unwrap()));
                prop_assert_eq!(rest.len(), garbage.len() - 8);
            }
            Err(_) => prop_assert!(garbage.len() < 8),
        }
    }

    #[test]
    fn wire_frame_roundtrips(payload in arb_payload()) {
        let encoded = wire_encode(&payload);
        let (got, consumed) = wire_decode(&encoded).unwrap().expect("complete frame");
        prop_assert_eq!(got, &payload[..]);
        prop_assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn truncated_wire_frames_ask_for_more(payload in arb_payload(), cut_seed in any::<u64>()) {
        let encoded = wire_encode(&payload);
        let cut = (cut_seed as usize) % encoded.len().max(1);
        prop_assert_eq!(wire_decode(&encoded[..cut]).unwrap(), None);
    }

    #[test]
    fn wire_decode_is_total_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Never panics, and whatever it returns is internally consistent.
        match wire_decode(&garbage) {
            Ok(Some((payload, consumed))) => {
                prop_assert_eq!(consumed, 4 + payload.len());
                prop_assert!(consumed <= garbage.len());
                prop_assert!(payload.len() <= MAX_WIRE_FRAME);
            }
            Ok(None) => {} // truncated: needs more bytes
            Err(WireError::Oversized { claimed }) => prop_assert!(claimed > MAX_WIRE_FRAME),
        }
    }

    #[test]
    fn oversized_wire_headers_are_fatal(
        extra in 1u32..1024,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let claimed = MAX_WIRE_FRAME as u32 + extra;
        let mut stream = Vec::from(claimed.to_le_bytes());
        stream.extend_from_slice(&tail);
        prop_assert_eq!(
            wire_decode(&stream).unwrap_err(),
            WireError::Oversized { claimed: claimed as usize }
        );
    }

    #[test]
    fn hot_path_builders_match_the_layered_encoders(
        tag in any::<u64>(),
        payload in arb_payload(),
    ) {
        // The single reserved-header builds are byte-for-byte what the
        // two-layer encode chain produces.
        let mut buf = BytesMut::new();
        wire_encode_into(&payload, &mut buf);
        prop_assert_eq!(&buf[..], &wire_encode(&payload)[..]);
        let mut buf = BytesMut::new();
        frame_wire_into(tag, &payload, &mut buf);
        prop_assert_eq!(&buf[..], &wire_encode(&frame(tag, &payload))[..]);
    }

    #[test]
    fn mux_pack_is_injective_and_roundtrips(
        lane_a in 0..MUX_MAX_LANES,
        lane_b in 0..MUX_MAX_LANES,
        session_a in 0..=MUX_RAW_TAG,
        session_b in 0..=MUX_RAW_TAG,
    ) {
        // Round trip: pack∘unpack is the identity on the whole domain.
        prop_assert_eq!(mux_unpack(mux_pack(lane_a, session_a)), (lane_a, session_a));
        // Injectivity: distinct pairs never collide in the u64 namespace.
        if (lane_a, session_a) != (lane_b, session_b) {
            prop_assert_ne!(mux_pack(lane_a, session_a), mux_pack(lane_b, session_b));
        }
    }

    #[test]
    fn mux_triple_roundtrips_through_all_layers(
        shard in 0..MUX_MAX_LANES,
        session in 0..MUX_RAW_TAG,
        channel in any::<u64>(),
        body in arb_payload(),
    ) {
        // The full (shard, session, channel) triple as the engine stacks
        // it: channel frame nested in a session frame, folded onto a mux
        // lane. Every component must come back exactly.
        let payload = frame(session, &frame(channel, &body));
        let mut wire = BytesMut::new();
        mux_frame_into(shard, &payload, &mut wire);
        let (wire_frame, consumed) = wire_decode(&wire).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, wire.len());
        let (got_shard, restored) = mux_unframe(wire_frame).unwrap();
        prop_assert_eq!(got_shard, shard);
        prop_assert_eq!(&restored[..], &payload[..], "restored payload differs");
        let (got_session, inner) = unframe(&restored).unwrap();
        prop_assert_eq!(got_session, session);
        let (got_channel, got_body) = unframe(inner).unwrap();
        prop_assert_eq!(got_channel, channel);
        prop_assert_eq!(got_body, &body[..]);
    }

    #[test]
    fn mux_fold_never_alters_any_payload(
        lane in 0..MUX_MAX_LANES,
        payload in arb_payload(),
    ) {
        // Whatever the bytes — too short for a tag, reserved tag values,
        // high bits set — the mux delivers them verbatim (fold and raw
        // escape are both exact inverses).
        let mut wire = BytesMut::new();
        mux_frame_into(lane, &payload, &mut wire);
        let (wire_frame, _) = wire_decode(&wire).unwrap().expect("complete frame");
        let (got_lane, restored) = mux_unframe(wire_frame).unwrap();
        prop_assert_eq!(got_lane, lane);
        prop_assert_eq!(&restored[..], &payload[..]);
    }

    #[test]
    fn stacked_frames_decode_in_order(
        frames in proptest::collection::vec((any::<u64>(), arb_payload()), 1..8),
    ) {
        // What a TCP reader sees: several session-tagged frames, each
        // wire-delimited, concatenated on one byte stream.
        let mut stream = Vec::new();
        for (tag, payload) in &frames {
            stream.extend_from_slice(&wire_encode(&frame(*tag, payload)));
        }
        let mut offset = 0;
        for (tag, payload) in &frames {
            let (wire_payload, consumed) =
                wire_decode(&stream[offset..]).unwrap().expect("complete frame");
            let (got_tag, got_payload) = unframe(wire_payload).unwrap();
            prop_assert_eq!(got_tag, *tag);
            prop_assert_eq!(got_payload, &payload[..]);
            offset += consumed;
        }
        prop_assert_eq!(offset, stream.len());
    }
}
