//! Discrete-event simulation with virtual provider clocks.
//!
//! The paper's testbed gives every provider its own CPU (§6.1: VMs pinned
//! to distinct cores across Guifi nodes). A host with fewer cores than
//! providers cannot reproduce that with real threads, so the benchmark
//! harness uses this simulator instead: the protocol blocks execute for
//! real (the CPU cost of every event is *measured*), but each provider
//! owns a **virtual clock**, and message delivery advances clocks the way
//! a real deployment would:
//!
//! * an event (start or message delivery) begins at
//!   `max(receiver_clock, arrival_time)` and ends after its measured CPU
//!   time — providers compute in parallel on their own clocks;
//! * a message sent at the end of an event arrives after a link delay of
//!   `propagation + bytes / bandwidth` drawn from the [`LinkModel`];
//! * the session's *span* is the latest decision time across providers —
//!   exactly the paper's client-observed completion time.
//!
//! Outcomes are bit-identical to the other runtimes (the protocol cannot
//! observe the clock); only the reported times depend on the model. Like
//! the other runtimes, the per-provider loop is the shared
//! [`SessionEngine`] — this module only owns the virtual-time event heap.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dauctioneer_core::engine::{unanimous, SessionEngine};
use dauctioneer_core::{AllocatorProgram, Block, FrameworkConfig, OutboxCtx};
use dauctioneer_net::LatencyModel;
use dauctioneer_types::{BidVector, Outcome, ProviderId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Link timing model: propagation latency plus optional serialisation
/// (bandwidth) delay.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Propagation delay distribution.
    pub latency: LatencyModel,
    /// Link bandwidth in bytes/second (`None` = infinite).
    pub bytes_per_sec: Option<u64>,
}

impl LinkModel {
    /// No delay at all (pure-computation studies).
    pub fn instant() -> LinkModel {
        LinkModel { latency: LatencyModel::Zero, bytes_per_sec: None }
    }

    /// The community-network profile used by the figure benches:
    /// 1.5–6 ms one-way propagation and a 25 Mbit/s access link — the
    /// regime of wireless community-network backhaul like the paper's
    /// Guifi testbed.
    pub fn community_net() -> LinkModel {
        LinkModel { latency: LatencyModel::CommunityNet, bytes_per_sec: Some(3_125_000) }
    }

    /// Delay for one message of `bytes` payload bytes.
    pub fn delay(&self, bytes: usize, rng: &mut StdRng) -> Duration {
        let propagation = self.latency.sample(rng);
        let serialisation = match self.bytes_per_sec {
            Some(bps) if bps > 0 => Duration::from_secs_f64(bytes as f64 / bps as f64),
            _ => Duration::ZERO,
        };
        propagation + serialisation
    }
}

/// An in-flight message with its virtual arrival time.
struct TimedMsg {
    arrival: Duration,
    seq: u64,
    from: ProviderId,
    to: ProviderId,
    payload: Bytes,
}

impl PartialEq for TimedMsg {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl Eq for TimedMsg {}
impl PartialOrd for TimedMsg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedMsg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arrival.cmp(&other.arrival).then(self.seq.cmp(&other.seq))
    }
}

/// Result of a timed session.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// Outcome at each provider (`None` = never decided).
    pub outcomes: Vec<Option<Outcome>>,
    /// Virtual time at which each provider decided.
    pub decision_times: Vec<Option<Duration>>,
    /// Latest decision time — the session's completion time as a client
    /// would observe it. `None` if some provider never decided.
    pub span: Option<Duration>,
    /// Total messages delivered.
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl TimedReport {
    /// The unanimous outcome per Definition 1 (pair iff all providers
    /// agree, else ⊥).
    pub fn unanimous(&self) -> Outcome {
        unanimous(self.outcomes.iter().map(|o| o.as_ref()))
    }
}

/// Run a full auction session under virtual time.
///
/// The blocks' CPU cost is measured on the host; clocks compose it as if
/// each provider had a dedicated CPU, which is the paper's deployment
/// assumption.
pub fn run_timed_auction<P: AllocatorProgram + 'static>(
    cfg: &FrameworkConfig,
    program: Arc<P>,
    collected: Vec<BidVector>,
    link: LinkModel,
    seed: u64,
) -> TimedReport {
    let m = cfg.m;
    let mut agents: Vec<SessionEngine<P>> = SessionEngine::roster(cfg, &program, collected, seed);

    let mut link_rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut clocks: Vec<Duration> = vec![Duration::ZERO; m];
    let mut decision_times: Vec<Option<Duration>> = vec![None; m];
    let mut heap: BinaryHeap<Reverse<TimedMsg>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut messages = 0u64;
    let mut bytes = 0u64;

    let enqueue = |heap: &mut BinaryHeap<Reverse<TimedMsg>>,
                   link_rng: &mut StdRng,
                   seq: &mut u64,
                   at: Duration,
                   from: ProviderId,
                   sends: Vec<(ProviderId, Bytes)>| {
        for (to, payload) in sends {
            if to.index() >= m || to == from {
                continue;
            }
            let arrival = at + link.delay(payload.len(), link_rng);
            heap.push(Reverse(TimedMsg { arrival, seq: *seq, from, to, payload }));
            *seq += 1;
        }
    };

    // Start events: all providers begin at t = 0 on their own clock.
    for j in 0..m {
        let mut ctx = OutboxCtx::new(ProviderId(j as u32), m);
        let cpu_start = Instant::now();
        agents[j].start(&mut ctx);
        clocks[j] = cpu_start.elapsed();
        if agents[j].result().is_some() && decision_times[j].is_none() {
            decision_times[j] = Some(clocks[j]);
        }
        enqueue(&mut heap, &mut link_rng, &mut seq, clocks[j], ProviderId(j as u32), ctx.drain());
    }

    while let Some(Reverse(msg)) = heap.pop() {
        let j = msg.to.index();
        messages += 1;
        bytes += msg.payload.len() as u64;
        let begin = clocks[j].max(msg.arrival);
        let mut ctx = OutboxCtx::new(msg.to, m);
        let cpu_start = Instant::now();
        agents[j].on_message(msg.from, &msg.payload, &mut ctx);
        clocks[j] = begin + cpu_start.elapsed();
        if agents[j].result().is_some() && decision_times[j].is_none() {
            decision_times[j] = Some(clocks[j]);
        }
        enqueue(&mut heap, &mut link_rng, &mut seq, clocks[j], msg.to, ctx.drain());
        if decision_times.iter().all(Option::is_some) {
            break;
        }
    }

    let outcomes: Vec<Option<Outcome>> = agents.iter().map(|a| a.outcome()).collect();
    let span = decision_times
        .iter()
        .copied()
        .collect::<Option<Vec<_>>>()
        .map(|v| v.into_iter().max().unwrap_or(Duration::ZERO));
    TimedReport { outcomes, decision_times, span, messages, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dauctioneer_core::DoubleAuctionProgram;
    use dauctioneer_types::{Bw, Money, ProviderAsk, UserBid};

    fn bids() -> BidVector {
        BidVector::builder(2, 1)
            .user_bid(0, UserBid::new(Money::from_f64(1.2), Bw::from_f64(0.5)))
            .user_bid(1, UserBid::new(Money::from_f64(0.9), Bw::from_f64(0.5)))
            .provider_ask(0, ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.0)))
            .build()
    }

    #[test]
    fn timed_session_agrees_and_reports_span() {
        let cfg = FrameworkConfig::new(3, 1, 2, 1);
        let report = run_timed_auction(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            LinkModel::instant(),
            5,
        );
        assert!(!report.unanimous().is_abort());
        assert!(report.span.is_some());
        assert!(report.messages > 0);
        assert!(report.bytes > 0);
    }

    #[test]
    fn latency_dominates_span_for_cheap_computation() {
        let cfg = FrameworkConfig::new(3, 1, 2, 1);
        let fast = run_timed_auction(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            LinkModel::instant(),
            5,
        );
        let slow = run_timed_auction(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            LinkModel { latency: LatencyModel::ConstantMicros(5_000), bytes_per_sec: None },
            5,
        );
        // Identical outcome, very different virtual span.
        assert_eq!(fast.unanimous(), slow.unanimous());
        let fast_span = fast.span.unwrap();
        let slow_span = slow.span.unwrap();
        // At least 3 protocol round trips of 5 ms each.
        assert!(
            slow_span > fast_span + Duration::from_millis(10),
            "latency must widen the span: fast {fast_span:?} slow {slow_span:?}"
        );
    }

    #[test]
    fn bandwidth_delay_scales_with_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = LinkModel { latency: LatencyModel::Zero, bytes_per_sec: Some(1_000_000) };
        let d_small = link.delay(1_000, &mut rng);
        let d_large = link.delay(100_000, &mut rng);
        assert_eq!(d_small, Duration::from_millis(1));
        assert_eq!(d_large, Duration::from_millis(100));
    }

    #[test]
    fn outcome_matches_untimed_simulation() {
        use crate::runner::run_auction_sim;
        use crate::schedule::SchedulePolicy;
        let cfg = FrameworkConfig::new(3, 1, 2, 1);
        let timed = run_timed_auction(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            LinkModel::community_net(),
            9,
        );
        let untimed = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            vec![None, None, None],
            SchedulePolicy::Fifo,
            9,
        );
        assert_eq!(timed.unanimous(), untimed.unanimous());
    }
}
