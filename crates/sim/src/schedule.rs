//! Delivery schedules: the adversary's lever in the asynchronous model.
//!
//! A schedule decides, at every turn, which in-flight message is delivered
//! next (§3.3 of the paper). Because the simulator runs until no message
//! is pending, every policy here is *fair* — each sent message is
//! eventually delivered — but they explore very different interleavings,
//! which is what "k-resilient **ex post** equilibrium" quantifies over.

use dauctioneer_types::ProviderId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the simulator picks the next message to deliver.
#[derive(Debug, Clone)]
pub enum SchedulePolicy {
    /// Deliver in send order (the most synchronous-looking interleaving).
    Fifo,
    /// Deliver a uniformly random pending message, deterministically from
    /// the seed.
    SeededRandom(u64),
    /// Starve one provider: messages *to* the victim are delivered only
    /// when nothing else is pending — the most adversarial fair schedule
    /// against a single node.
    DelayProvider {
        /// The starved provider.
        victim: ProviderId,
        /// Seed ordering the non-victim traffic.
        seed: u64,
    },
}

/// Instantiated schedule state.
pub(crate) struct ScheduleState {
    policy: SchedulePolicy,
    rng: StdRng,
}

impl ScheduleState {
    pub(crate) fn new(policy: SchedulePolicy) -> ScheduleState {
        let seed = match &policy {
            SchedulePolicy::Fifo => 0,
            SchedulePolicy::SeededRandom(s) => *s,
            SchedulePolicy::DelayProvider { seed, .. } => *seed,
        };
        ScheduleState { policy, rng: StdRng::seed_from_u64(seed) }
    }

    /// Pick the index of the next message to deliver from the pending
    /// list. `to_of(i)` exposes each pending message's destination.
    pub(crate) fn pick(
        &mut self,
        pending_len: usize,
        to_of: impl Fn(usize) -> ProviderId,
    ) -> usize {
        debug_assert!(pending_len > 0);
        match &self.policy {
            SchedulePolicy::Fifo => 0,
            SchedulePolicy::SeededRandom(_) => self.rng.gen_range(0..pending_len),
            SchedulePolicy::DelayProvider { victim, .. } => {
                let non_victim: Vec<usize> =
                    (0..pending_len).filter(|&i| to_of(i) != *victim).collect();
                if non_victim.is_empty() {
                    self.rng.gen_range(0..pending_len)
                } else {
                    non_victim[self.rng.gen_range(0..non_victim.len())]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_always_picks_first() {
        let mut s = ScheduleState::new(SchedulePolicy::Fifo);
        for len in 1..5 {
            assert_eq!(s.pick(len, |_| ProviderId(0)), 0);
        }
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let picks = |seed| {
            let mut s = ScheduleState::new(SchedulePolicy::SeededRandom(seed));
            (0..20).map(|_| s.pick(10, |_| ProviderId(0))).collect::<Vec<_>>()
        };
        assert_eq!(picks(5), picks(5));
        assert_ne!(picks(5), picks(6));
    }

    #[test]
    fn delay_provider_starves_victim_while_alternatives_exist() {
        let mut s =
            ScheduleState::new(SchedulePolicy::DelayProvider { victim: ProviderId(0), seed: 1 });
        // Messages 0 and 2 go to the victim; only 1 and 3 are eligible.
        let to = |i: usize| if i.is_multiple_of(2) { ProviderId(0) } else { ProviderId(1) };
        for _ in 0..20 {
            let i = s.pick(4, to);
            assert!(i == 1 || i == 3);
        }
        // With only victim-bound messages pending, fairness forces one.
        let i = s.pick(2, |_| ProviderId(0));
        assert!(i < 2);
    }
}
