//! Game-theoretic execution harness for the distributed auctioneer.
//!
//! The paper analyses its protocols in the extensive-form game model of
//! Abraham, Dolev and Halpern: time is divided into **turns**, a
//! **schedule** decides which message is delivered next, channels are
//! reliable, and every fair schedule must let every provider move
//! infinitely often (§3.3). This crate implements that model as a
//! deterministic single-threaded simulator so the equilibrium claims can
//! be *tested*:
//!
//! * [`SimRunner`] — drives any set of protocol [`Block`]s to quiescence
//!   under a chosen [`SchedulePolicy`] (FIFO, seeded-random, or
//!   adversarial delay), deterministically.
//! * [`Behavior`] — message-level deviation injection: equivocation,
//!   corruption, muting (crash), selective drops. Wrapping a provider's
//!   outgoing traffic lets tests check *k-resilience*: a deviating
//!   coalition never improves its utility — every detectable deviation
//!   collapses the outcome to ⊥ (utility 0), and no deviation can steer
//!   the outcome to a different accepted pair (*resilience to collusive
//!   influence*).
//! * [`utility`] — the §3.3 utility functions: 0 on ⊥, value − payment
//!   for users, payment − cost for providers.
//!
//! [`Block`]: dauctioneer_core::Block

pub mod behavior;
pub mod des;
pub mod runner;
pub mod schedule;
pub mod utility;

pub use behavior::{Behavior, CorruptPayloads, DropTo, Equivocate, Honest, Mute, Replay};
pub use des::{run_timed_auction, LinkModel, TimedReport};
pub use runner::{run_auction_sim, AuctionSimReport, SimRunner};
pub use schedule::SchedulePolicy;
