//! The deterministic turn-based simulator.
//!
//! [`SimRunner`] is a generic message pump for any set of protocol
//! [`Block`]s; full auction sessions ([`run_auction_sim`]) drive
//! [`SessionEngine`]s, so session framing, dispatch and seeding are the
//! shared `dauctioneer-core::engine` code — the same loop the threaded
//! runtime and the virtual-clock DES run.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use dauctioneer_core::engine::{unanimous, SessionEngine};
use dauctioneer_core::{AllocatorProgram, Block, BlockResult, FrameworkConfig, OutboxCtx};
use dauctioneer_types::{BidVector, Outcome, ProviderId};

use crate::behavior::{Behavior, Honest};
use crate::schedule::{SchedulePolicy, ScheduleState};

/// One in-flight message.
#[derive(Debug, Clone)]
struct InFlight {
    from: ProviderId,
    to: ProviderId,
    payload: Bytes,
}

/// Drives a set of protocol blocks (one per provider) under a schedule,
/// with optional deviation behaviors, until every block decided, no
/// message is pending, or the step budget is exhausted.
///
/// Everything is deterministic: same blocks + same policy ⇒ same
/// execution, which is what lets the deviation tests make exact claims.
pub struct SimRunner<B: Block> {
    agents: Vec<B>,
    behaviors: Vec<Box<dyn Behavior>>,
    pending: VecDeque<InFlight>,
    schedule: ScheduleState,
    delivered: u64,
    started: bool,
}

impl<B: Block> SimRunner<B> {
    /// Create a runner over `agents` (index = provider id), all honest.
    pub fn new(agents: Vec<B>, policy: SchedulePolicy) -> SimRunner<B> {
        let m = agents.len();
        SimRunner {
            agents,
            behaviors: (0..m).map(|_| Box::new(Honest) as Box<dyn Behavior>).collect(),
            pending: VecDeque::new(),
            schedule: ScheduleState::new(policy),
            delivered: 0,
            started: false,
        }
    }

    /// Replace provider `i`'s behavior (deviation injection).
    pub fn set_behavior(&mut self, i: usize, behavior: Box<dyn Behavior>) {
        self.behaviors[i] = behavior;
    }

    /// Number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn m(&self) -> usize {
        self.agents.len()
    }

    fn collect_sends(&mut self, from: usize, ctx: &mut OutboxCtx) {
        for (to, payload) in ctx.drain() {
            for (to, payload) in self.behaviors[from].on_send(to, payload) {
                if to.index() < self.m() && to.index() != from {
                    self.pending.push_back(InFlight { from: ProviderId(from as u32), to, payload });
                }
            }
        }
    }

    /// Run until quiescence (or `max_steps` deliveries). Returns `true`
    /// if the run quiesced (no pending messages or all agents decided).
    pub fn run(&mut self, max_steps: u64) -> bool {
        let m = self.m();
        if !self.started {
            self.started = true;
            for i in 0..m {
                let mut ctx = OutboxCtx::new(ProviderId(i as u32), m);
                self.agents[i].start(&mut ctx);
                self.collect_sends(i, &mut ctx);
            }
        }
        while self.delivered < max_steps {
            if self.pending.is_empty() {
                return true;
            }
            if self.agents.iter().all(|a| a.result().is_some()) {
                return true;
            }
            let pending = &self.pending;
            let idx = self.schedule.pick(pending.len(), |i| pending[i].to);
            let msg = self.pending.remove(idx).expect("index in range");
            self.delivered += 1;
            let to = msg.to.index();
            let mut ctx = OutboxCtx::new(msg.to, m);
            self.agents[to].on_message(msg.from, &msg.payload, &mut ctx);
            self.collect_sends(to, &mut ctx);
        }
        self.pending.is_empty()
    }

    /// Per-agent results (None = undecided).
    pub fn results(&self) -> Vec<Option<&BlockResult<B::Output>>> {
        self.agents.iter().map(|a| a.result()).collect()
    }

    /// Access an agent.
    pub fn agent(&self, i: usize) -> &B {
        &self.agents[i]
    }
}

/// Report of a simulated auction session.
#[derive(Debug, Clone)]
pub struct AuctionSimReport {
    /// Outcome at each provider; `None` means the provider never decided
    /// (possible only under deviations that withhold messages — the
    /// external mechanism of §3.2 treats it as ⊥).
    pub outcomes: Vec<Option<Outcome>>,
    /// Messages delivered before quiescence.
    pub delivered: u64,
}

impl AuctionSimReport {
    /// The session outcome per Definition 1: the pair if *every* provider
    /// decided on the same pair, otherwise ⊥.
    pub fn unanimous(&self) -> Outcome {
        unanimous(self.outcomes.iter().map(|o| o.as_ref()))
    }

    /// Outcomes of the providers *not* in `coalition` — what the honest
    /// majority observed.
    pub fn honest_unanimous(&self, coalition: &[usize]) -> Outcome {
        let honest: Vec<Option<Outcome>> = self
            .outcomes
            .iter()
            .enumerate()
            .filter(|(i, _)| !coalition.contains(i))
            .map(|(_, o)| o.clone())
            .collect();
        AuctionSimReport { outcomes: honest, delivered: self.delivered }.unanimous()
    }
}

/// Convenience: run a full auction session in the simulator.
///
/// `collected[j]` is provider `j`'s view of the bids; `behaviors[j]`
/// (when provided) replaces provider `j`'s honest message behavior; the
/// session's [`SessionEngine`]s come from [`SessionEngine::roster`], so
/// seeding and session framing are identical to the other runtimes.
pub fn run_auction_sim<P: AllocatorProgram + 'static>(
    cfg: &FrameworkConfig,
    program: Arc<P>,
    collected: Vec<BidVector>,
    behaviors: Vec<Option<Box<dyn Behavior>>>,
    policy: SchedulePolicy,
    seed: u64,
) -> AuctionSimReport {
    let agents: Vec<SessionEngine<P>> = SessionEngine::roster(cfg, &program, collected, seed);
    let mut runner = SimRunner::new(agents, policy);
    for (j, behavior) in behaviors.into_iter().enumerate() {
        if let Some(b) = behavior {
            runner.set_behavior(j, b);
        }
    }
    // Generous budget; protocol rounds are O(m² · blocks).
    let quiesced = runner.run(10_000_000);
    debug_assert!(quiesced, "step budget too small");
    let outcomes = (0..runner.m()).map(|i| runner.agent(i).outcome()).collect();
    AuctionSimReport { outcomes, delivered: runner.delivered() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{CorruptPayloads, Equivocate, Mute};
    use dauctioneer_core::DoubleAuctionProgram;
    use dauctioneer_types::{Bw, Money, ProviderAsk, UserBid};

    fn cfg(m: usize, k: usize) -> FrameworkConfig {
        FrameworkConfig::new(m, k, 3, 2)
    }

    fn bids() -> BidVector {
        BidVector::builder(3, 2)
            .user_bid(0, UserBid::new(Money::from_f64(1.2), Bw::from_f64(0.5)))
            .user_bid(1, UserBid::new(Money::from_f64(1.0), Bw::from_f64(0.5)))
            .user_bid(2, UserBid::new(Money::from_f64(0.8), Bw::from_f64(0.5)))
            .provider_ask(0, ProviderAsk::new(Money::from_f64(0.1), Bw::from_f64(1.0)))
            .provider_ask(1, ProviderAsk::new(Money::from_f64(0.5), Bw::from_f64(1.0)))
            .build()
    }

    #[test]
    fn honest_simulation_agrees() {
        let cfg = cfg(3, 1);
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            vec![None, None, None],
            SchedulePolicy::Fifo,
            1,
        );
        let outcome = report.unanimous();
        assert!(!outcome.is_abort());
        assert!(report.delivered > 0);
    }

    #[test]
    fn outcome_is_schedule_independent() {
        // Ex post: the decided pair must be identical under every fair
        // schedule (the coin material depends only on the providers'
        // committed randomness, not on delivery order).
        let cfg = cfg(3, 1);
        let run = |policy| {
            run_auction_sim(
                &cfg,
                Arc::new(DoubleAuctionProgram::new()),
                vec![bids(); 3],
                vec![None, None, None],
                policy,
                7,
            )
            .unanimous()
        };
        let fifo = run(SchedulePolicy::Fifo);
        assert!(!fifo.is_abort());
        for seed in 0..5 {
            assert_eq!(run(SchedulePolicy::SeededRandom(seed)), fifo);
        }
        assert_eq!(run(SchedulePolicy::DelayProvider { victim: ProviderId(2), seed: 3 }), fifo);
    }

    #[test]
    fn equivocating_provider_forces_abort_not_divergence() {
        let cfg = cfg(3, 1);
        let mut behaviors: Vec<Option<Box<dyn Behavior>>> = vec![None, None, None];
        behaviors[0] = Some(Box::new(Equivocate { victim: ProviderId(1) }));
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            behaviors,
            SchedulePolicy::Fifo,
            1,
        );
        // Resilience to collusive influence: honest providers output the
        // honest pair or ⊥ — never a *different* accepted pair.
        let honest_outcome = report.honest_unanimous(&[0]);
        assert!(honest_outcome.is_abort(), "equivocation must not produce an accepted outcome");
    }

    #[test]
    fn corrupting_provider_forces_abort() {
        let cfg = cfg(3, 1);
        let mut behaviors: Vec<Option<Box<dyn Behavior>>> = vec![None, None, None];
        behaviors[2] = Some(Box::new(CorruptPayloads::default()));
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            behaviors,
            SchedulePolicy::SeededRandom(4),
            2,
        );
        assert!(report.unanimous().is_abort());
    }

    #[test]
    fn replaying_provider_forces_abort() {
        use crate::behavior::Replay;
        let cfg = cfg(3, 1);
        let mut behaviors: Vec<Option<Box<dyn Behavior>>> = vec![None, None, None];
        behaviors[1] = Some(Box::new(Replay));
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            behaviors,
            SchedulePolicy::Fifo,
            6,
        );
        // Duplicate round messages are a detectable protocol violation.
        assert!(report.unanimous().is_abort());
    }

    #[test]
    fn full_paper_configuration_m8_k3() {
        // The largest configuration of §6: eight providers tolerating a
        // three-member coalition.
        let cfg = FrameworkConfig::new(8, 3, 3, 2);
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 8],
            (0..8).map(|_| None).collect(),
            SchedulePolicy::SeededRandom(4),
            12,
        );
        assert!(!report.unanimous().is_abort());
        assert_eq!(report.outcomes.len(), 8);
    }

    #[test]
    fn muted_provider_stalls_but_never_diverges() {
        let cfg = cfg(3, 1);
        let mut behaviors: Vec<Option<Box<dyn Behavior>>> = vec![None, None, None];
        behaviors[1] = Some(Box::new(Mute::new(0)));
        let report = run_auction_sim(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![bids(); 3],
            behaviors,
            SchedulePolicy::Fifo,
            3,
        );
        // Nobody can decide a pair without the mute provider's messages;
        // per §3.2 the external mechanism aborts. No provider may hold an
        // accepted pair.
        for o in &report.outcomes {
            assert!(
                !matches!(o, Some(Outcome::Agreed(_))),
                "an accepted pair leaked through a muted run: {o:?}"
            );
        }
        assert!(report.unanimous().is_abort());
    }
}
