//! The utility functions of the game model (§3.3 of the paper).
//!
//! Utilities are defined over the *outcome* of the simulation: if the
//! outcome is ⊥ every participant's utility is zero; otherwise a user's
//! utility is the value of its allocation (at its **true** valuation)
//! minus its payment, and a provider's utility is the payment received
//! minus the true cost of what it served. The deviation tests compare a
//! deviator's utility against its utility under honesty — k-resilience
//! predicts the former never exceeds the latter.

use dauctioneer_mechanisms::props;
use dauctioneer_types::{Money, Outcome, ProviderId, UserId};

/// Utility of `user` with true per-unit valuation `true_value` under
/// `outcome`; zero on ⊥.
///
/// # Example
///
/// ```
/// use dauctioneer_sim::utility::user_utility;
/// use dauctioneer_types::{Money, Outcome, UserId};
///
/// assert_eq!(
///     user_utility(UserId(0), Money::from_f64(1.0), &Outcome::Abort),
///     Money::ZERO
/// );
/// ```
pub fn user_utility(user: UserId, true_value: Money, outcome: &Outcome) -> Money {
    match outcome.as_result() {
        None => Money::ZERO,
        Some(result) => props::user_utility(user, true_value, result),
    }
}

/// Utility of `provider` with true per-unit cost `true_cost` under
/// `outcome`; zero on ⊥.
pub fn provider_utility(provider: ProviderId, true_cost: Money, outcome: &Outcome) -> Money {
    match outcome.as_result() {
        None => Money::ZERO,
        Some(result) => props::provider_utility(provider, true_cost, result),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dauctioneer_types::{Allocation, AuctionResult, Bw, Payments};

    fn outcome_with(user_pay: f64, provider_rev: f64) -> Outcome {
        let mut alloc = Allocation::new(1, 1);
        alloc.add(UserId(0), ProviderId(0), Bw::from_f64(1.0));
        let mut pay = Payments::zero(1, 1);
        pay.set_user_payment(UserId(0), Money::from_f64(user_pay));
        pay.set_provider_revenue(ProviderId(0), Money::from_f64(provider_rev));
        Outcome::Agreed(AuctionResult::new(alloc, pay))
    }

    #[test]
    fn abort_gives_zero_to_everyone() {
        assert_eq!(user_utility(UserId(0), Money::from_f64(5.0), &Outcome::Abort), Money::ZERO);
        assert_eq!(
            provider_utility(ProviderId(0), Money::from_f64(0.1), &Outcome::Abort),
            Money::ZERO
        );
    }

    #[test]
    fn agreed_outcome_gives_value_minus_payment() {
        let o = outcome_with(0.4, 0.4);
        assert_eq!(user_utility(UserId(0), Money::from_f64(1.0), &o), Money::from_f64(0.6));
        assert_eq!(provider_utility(ProviderId(0), Money::from_f64(0.1), &o), Money::from_f64(0.3));
    }

    #[test]
    fn utilities_can_be_negative_for_overpayment() {
        let o = outcome_with(2.0, 0.0);
        assert_eq!(user_utility(UserId(0), Money::from_f64(1.0), &o), Money::from_f64(-1.0));
    }
}
