//! Message-level deviation injection.
//!
//! A [`Behavior`] sits between a provider's protocol block and the
//! network, transforming its outgoing messages. The honest behavior
//! passes everything through; the deviant ones model the strategies the
//! paper's k-resilience argument must defeat: equivocation (different
//! messages to different peers), corruption (wrong computation results),
//! muting (crashing / withholding), and selective drops.
//!
//! Deviations at this layer compose with *input*-level deviations (a
//! provider lying about the bids it collected), which tests inject by
//! simply constructing the deviator's block with a doctored input.

use bytes::Bytes;
use dauctioneer_types::ProviderId;

/// Transforms a provider's outgoing messages.
pub trait Behavior {
    /// Given an outgoing `(to, payload)`, return the messages actually
    /// sent (possibly none, possibly altered).
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)>;
}

/// The protocol-following behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct Honest;

impl Behavior for Honest {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        vec![(to, payload)]
    }
}

/// Equivocation: messages to the victim get their last byte flipped, so
/// the victim's view of this provider diverges from everyone else's.
#[derive(Debug, Clone, Copy)]
pub struct Equivocate {
    /// The peer that receives the altered copies.
    pub victim: ProviderId,
}

impl Behavior for Equivocate {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        if to == self.victim && !payload.is_empty() {
            let mut altered = payload.to_vec();
            let last = altered.len() - 1;
            altered[last] ^= 0xFF;
            vec![(to, Bytes::from(altered))]
        } else {
            vec![(to, payload)]
        }
    }
}

/// Corruption: every outgoing payload has a byte flipped — the shape a
/// wrong (or dishonest) task computation takes on the wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorruptPayloads {
    sent: usize,
}

impl Behavior for CorruptPayloads {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        self.sent += 1;
        if payload.is_empty() {
            return vec![(to, payload)];
        }
        let mut altered = payload.to_vec();
        let last = altered.len() - 1;
        altered[last] ^= 0x55;
        vec![(to, Bytes::from(altered))]
    }
}

/// Muting: stop sending after the first `after` messages (0 = crash from
/// the start). Models withholding; under the paper's assumptions rational
/// providers never do this (the outcome becomes ⊥ and their utility 0),
/// and the tests verify exactly that consequence.
#[derive(Debug, Clone, Copy)]
pub struct Mute {
    /// Messages allowed out before going silent.
    pub after: usize,
    sent: usize,
}

impl Mute {
    /// Mute after `after` messages.
    pub fn new(after: usize) -> Mute {
        Mute { after, sent: 0 }
    }
}

impl Behavior for Mute {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        if self.sent >= self.after {
            return Vec::new();
        }
        self.sent += 1;
        vec![(to, payload)]
    }
}

/// Selective withholding: never deliver anything to one peer.
#[derive(Debug, Clone, Copy)]
pub struct DropTo {
    /// The starved peer.
    pub victim: ProviderId,
}

impl Behavior for DropTo {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        if to == self.victim {
            Vec::new()
        } else {
            vec![(to, payload)]
        }
    }
}

/// Replay: every message is sent twice. The channels of the model deliver
/// exactly once, so a duplicate can only come from a deviating sender —
/// blocks detect it as a protocol violation and abort.
#[derive(Debug, Clone, Copy, Default)]
pub struct Replay;

impl Behavior for Replay {
    fn on_send(&mut self, to: ProviderId, payload: Bytes) -> Vec<(ProviderId, Bytes)> {
        vec![(to, payload.clone()), (to, payload)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Bytes {
        Bytes::from_static(b"payload")
    }

    #[test]
    fn honest_passes_through() {
        let out = Honest.on_send(ProviderId(1), msg());
        assert_eq!(out, vec![(ProviderId(1), msg())]);
    }

    #[test]
    fn equivocate_alters_only_victim_copies() {
        let mut b = Equivocate { victim: ProviderId(2) };
        let clean = b.on_send(ProviderId(1), msg());
        assert_eq!(clean[0].1, msg());
        let dirty = b.on_send(ProviderId(2), msg());
        assert_ne!(dirty[0].1, msg());
        assert_eq!(dirty[0].1.len(), msg().len());
    }

    #[test]
    fn corrupt_alters_everything() {
        let mut b = CorruptPayloads::default();
        let out = b.on_send(ProviderId(1), msg());
        assert_ne!(out[0].1, msg());
    }

    #[test]
    fn mute_stops_after_budget() {
        let mut b = Mute::new(2);
        assert_eq!(b.on_send(ProviderId(1), msg()).len(), 1);
        assert_eq!(b.on_send(ProviderId(1), msg()).len(), 1);
        assert_eq!(b.on_send(ProviderId(1), msg()).len(), 0);
        assert_eq!(b.on_send(ProviderId(1), msg()).len(), 0);
    }

    #[test]
    fn drop_to_starves_victim_only() {
        let mut b = DropTo { victim: ProviderId(0) };
        assert!(b.on_send(ProviderId(0), msg()).is_empty());
        assert_eq!(b.on_send(ProviderId(1), msg()).len(), 1);
    }

    #[test]
    fn replay_duplicates_every_message() {
        let out = Replay.on_send(ProviderId(1), msg());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
    }
}
