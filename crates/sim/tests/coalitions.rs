//! Coalition experiments: coordinated deviations by up to k providers
//! with m = 5, k = 2 — the paper's middle configuration (§6.2).
//!
//! The k-resilience claim covers *joint* protocols: colluding providers
//! may coordinate arbitrarily. These tests wire coordinated message-level
//! deviations into two members at once and verify the honest majority is
//! unmoved: it accepts the honest outcome or ⊥, never a steered pair.

use std::sync::Arc;

use dauctioneer_core::{DoubleAuctionProgram, FrameworkConfig};
use dauctioneer_sim::utility::provider_utility;
use dauctioneer_sim::{
    run_auction_sim, Behavior, CorruptPayloads, DropTo, Equivocate, Mute, SchedulePolicy,
};
use dauctioneer_types::{BidVector, Outcome, ProviderId};
use dauctioneer_workload::DoubleAuctionWorkload;

const M: usize = 5;
const K: usize = 2;
const N: usize = 10;

fn cfg() -> FrameworkConfig {
    FrameworkConfig::new(M, K, N, M)
}

fn bids(seed: u64) -> BidVector {
    DoubleAuctionWorkload::new(N, M, seed).generate()
}

fn honest(seed: u64) -> Outcome {
    run_auction_sim(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids(seed); M],
        (0..M).map(|_| None).collect(),
        SchedulePolicy::SeededRandom(seed),
        seed,
    )
    .unanimous()
}

fn with_coalition(
    seed: u64,
    coalition: &[usize],
    make: impl Fn(usize) -> Box<dyn Behavior>,
) -> Outcome {
    let mut behaviors: Vec<Option<Box<dyn Behavior>>> = (0..M).map(|_| None).collect();
    for &member in coalition {
        behaviors[member] = Some(make(member));
    }
    let report = run_auction_sim(
        &cfg(),
        Arc::new(DoubleAuctionProgram::new()),
        vec![bids(seed); M],
        behaviors,
        SchedulePolicy::SeededRandom(seed),
        seed,
    );
    report.honest_unanimous(coalition)
}

#[test]
fn baseline_succeeds_at_k2() {
    for seed in 0..3 {
        assert!(!honest(seed).is_abort(), "m=5, k=2 honest run must succeed");
    }
}

#[test]
fn two_equivocators_cannot_steer() {
    for seed in 0..3u64 {
        let baseline = honest(seed);
        let outcome = with_coalition(seed, &[0, 1], |member| {
            // Coordinated: each member equivocates toward a different
            // honest victim.
            Box::new(Equivocate { victim: ProviderId((member as u32 + 2) % M as u32) })
        });
        assert!(
            outcome.is_abort() || outcome == baseline,
            "coalition steered the outcome (seed {seed})"
        );
    }
}

#[test]
fn mixed_strategy_coalition_cannot_steer() {
    for seed in 0..3u64 {
        let baseline = honest(seed);
        let outcome = with_coalition(seed, &[1, 3], |member| -> Box<dyn Behavior> {
            if member == 1 {
                Box::new(CorruptPayloads::default())
            } else {
                Box::new(DropTo { victim: ProviderId(0) })
            }
        });
        assert!(
            outcome.is_abort() || outcome == baseline,
            "mixed coalition steered the outcome (seed {seed})"
        );
    }
}

#[test]
fn silent_coalition_only_stalls() {
    for seed in 0..2u64 {
        let outcome = with_coalition(seed, &[2, 4], |_| Box::new(Mute::new(0)));
        // Withholding can deny progress (⊥ via the external abort), but
        // never forges an accepted pair.
        assert!(outcome.is_abort());
    }
}

#[test]
fn coalition_members_never_profit() {
    for seed in 0..3u64 {
        let b = bids(seed);
        let baseline = honest(seed);
        let coalition = [0usize, 1usize];
        let outcome = with_coalition(seed, &coalition, |member| {
            Box::new(Equivocate { victim: ProviderId((member as u32 + 3) % M as u32) })
        });
        for &member in &coalition {
            let true_cost = b.provider_ask(ProviderId(member as u32)).unit_cost();
            let honest_u = provider_utility(ProviderId(member as u32), true_cost, &baseline);
            let deviant_u = provider_utility(ProviderId(member as u32), true_cost, &outcome);
            assert!(
                deviant_u <= honest_u,
                "coalition member {member} profited (seed {seed}): {deviant_u} > {honest_u}"
            );
        }
    }
}

#[test]
fn larger_coalition_than_k_can_force_abort_but_not_forge() {
    // With 3 > k colluders out of 5, the guarantee weakens to: honest
    // providers may be denied a solution, but with only 2 honest replicas
    // per group remaining, forging still requires agreement of *all*
    // senders a receiver hears — corruption by distinct members yields
    // conflicting copies, hence ⊥, not acceptance.
    for seed in 0..2u64 {
        let baseline = honest(seed);
        let outcome = with_coalition(seed, &[0, 1, 2], |member| {
            Box::new(Equivocate { victim: ProviderId(((member + 1) % M) as u32) })
        });
        assert!(
            outcome.is_abort() || outcome == baseline,
            "even an oversized coalition of equivocators must not forge (seed {seed})"
        );
    }
}
