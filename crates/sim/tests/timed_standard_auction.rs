//! DES runs of the parallelised standard auction: outcome correctness and
//! the structural timing claims that are safe to assert (no absolute
//! wall-clock comparisons — those belong to the benches).

use std::sync::Arc;

use dauctioneer_core::{FrameworkConfig, StandardAuctionProgram};
use dauctioneer_mechanisms::baselines::standard_welfare;
use dauctioneer_mechanisms::props::{feasibility_violations, rationality_violations};
use dauctioneer_mechanisms::solver::{solve_exhaustive, Instance};
use dauctioneer_mechanisms::{StandardAuction, StandardAuctionConfig};
use dauctioneer_sim::{run_timed_auction, LinkModel};
use dauctioneer_workload::StandardAuctionWorkload;

#[test]
fn timed_standard_auction_agrees_at_p2() {
    let (bids, capacities) = StandardAuctionWorkload::new(8, 2, 4).generate();
    let auction = StandardAuction::new(StandardAuctionConfig::exact(capacities.clone()));
    let cfg = FrameworkConfig::new(4, 1, 8, 0);
    let report = run_timed_auction(
        &cfg,
        Arc::new(StandardAuctionProgram::new(auction)),
        vec![bids.clone(); 4],
        LinkModel::community_net(),
        11,
    );
    let outcome = report.unanimous();
    let result = outcome.as_result().expect("honest timed run agrees");
    // Correct simulation: the welfare equals the exhaustive optimum.
    let optimum = solve_exhaustive(&Instance::from_bids(&bids, &capacities)).welfare;
    assert_eq!(standard_welfare(&bids, &result.allocation), optimum);
    assert!(feasibility_violations(&bids, result, Some(&capacities)).is_empty());
    assert!(rationality_violations(&bids, result).is_empty());
    // Every provider decided, and the span is the max decision time.
    let max_decision = report.decision_times.iter().flatten().max().copied();
    assert_eq!(report.span, max_decision);
}

#[test]
fn timed_outcome_equals_untimed_outcome() {
    use dauctioneer_sim::{run_auction_sim, SchedulePolicy};
    let (bids, capacities) = StandardAuctionWorkload::new(6, 2, 2).generate();
    let auction = StandardAuction::new(StandardAuctionConfig::exact(capacities));
    let program = Arc::new(StandardAuctionProgram::new(auction));
    let cfg = FrameworkConfig::new(3, 1, 6, 0);

    let timed = run_timed_auction(
        &cfg,
        Arc::clone(&program),
        vec![bids.clone(); 3],
        LinkModel::community_net(),
        21,
    );
    let untimed = run_auction_sim(
        &cfg,
        program,
        vec![bids; 3],
        vec![None, None, None],
        SchedulePolicy::SeededRandom(5),
        21,
    );
    // The virtual clock must not influence what is decided.
    assert_eq!(timed.unanimous(), untimed.unanimous());
}

#[test]
fn traffic_accounting_is_consistent() {
    let (bids, capacities) = StandardAuctionWorkload::new(5, 2, 7).generate();
    let auction = StandardAuction::new(StandardAuctionConfig::exact(capacities));
    let cfg = FrameworkConfig::new(3, 1, 5, 0);
    let report = run_timed_auction(
        &cfg,
        Arc::new(StandardAuctionProgram::new(auction)),
        vec![bids; 3],
        LinkModel::instant(),
        3,
    );
    assert!(!report.unanimous().is_abort());
    assert!(report.messages > 0);
    assert!(report.bytes > report.messages, "messages carry payloads");
}
