//! Telemetry-plane acceptance for the continuous market: every aborted
//! epoch carries a classified (non-unknown) [`AbortReason`], the
//! per-reason breakdown accounts for every abort, chaos fault counters
//! surface in [`MarketStats`], the metrics registry exports the full
//! family set, the flight recorder stays bounded, and epoch traces are
//! a deterministic function of the market seed.

use std::sync::Arc;
use std::time::Duration;

use dauctioneer_core::{AdversaryKind, DoubleAuctionProgram, TransportKind};
use dauctioneer_market::{
    register_liveness_metrics, register_market_metrics, AbortReason, EpochPolicy, MarketConfig,
    MarketService,
};
use dauctioneer_net::{FaultPlan, LivenessConfig, LivenessTracker};
use dauctioneer_telemetry::{EpochTrace, FlightDump, Registry};
use dauctioneer_types::{Bw, Money, ProviderAsk, ProviderId, UserBid, UserId};

const M: usize = 3;
const N_USERS: usize = 4;

fn config() -> MarketConfig {
    let mut config = MarketConfig::new(M, 1, N_USERS, 1)
        .with_epoch(EpochPolicy::ByCount(2))
        .with_asks(vec![ProviderAsk::new(Money::from_f64(0.10), Bw::from_f64(4.0))])
        .with_transport(TransportKind::InProc, 1);
    config.seed = 4_040;
    config
}

/// Submit `epochs` epochs of 2 valid bids each and wait for each close.
fn drive(market: &mut MarketService, epochs: u64) {
    let outcomes = market.take_outcomes().expect("subscription");
    let handle = market.handle();
    for epoch in 0..epochs {
        for u in 0..2u32 {
            let bid = UserBid::new(
                Money::from_f64(0.9 + 0.05 * u as f64 + 0.01 * epoch as f64),
                Bw::from_f64(0.5),
            );
            handle.submit_bid(UserId(u), bid).expect("market accepts while open");
        }
        outcomes.recv_timeout(Duration::from_secs(30)).expect("epoch closes");
    }
}

#[test]
fn healthy_epochs_carry_no_abort_reason_and_full_span_trees() {
    let mut market =
        MarketService::start(config(), Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 2);
    let watch = market.watch();
    let traces = watch.recent_traces();
    let stats = market.shutdown();

    assert_eq!(stats.epochs_aborted, 0);
    assert_eq!(stats.epochs_aborted_by_reason.total(), 0, "no abort, no reason");
    assert_eq!(traces.len(), 2, "one finished trace per closed epoch");
    for trace in &traces {
        assert_eq!(trace.abort, None, "a cleared epoch records no abort reason");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for pipeline_stage in ["ingress", "collect", "dispatch", "seal", "epoch"] {
            assert!(names.contains(&pipeline_stage), "missing span {pipeline_stage}: {names:?}");
        }
        // One session block per provider, hanging under the dispatch span.
        let dispatch = trace.spans.iter().find(|s| s.name == "dispatch").unwrap();
        for j in 0..M {
            let block = trace
                .spans
                .iter()
                .find(|s| s.name == format!("session[{j}]"))
                .unwrap_or_else(|| panic!("missing session[{j}]"));
            assert_eq!(block.parent, Some(dispatch.id), "session blocks nest under dispatch");
        }
        // The root span closes the tree and spans the whole epoch.
        let root = trace.spans.iter().find(|s| s.name == "epoch").unwrap();
        assert_eq!(root.id, trace.root);
        assert_eq!(root.parent, None);
        assert!(root.duration >= dispatch.duration);
    }
}

#[test]
fn chaos_aborts_classify_as_chaos_fault_and_surface_fault_counters() {
    let mut config = config().with_chaos(FaultPlan::seeded(7).with_drop(1.0));
    config.session_deadline = Duration::from_millis(300);
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 2);
    let stats = market.shutdown();

    assert_eq!(stats.epochs_aborted, 2, "a fully lossy mesh aborts every epoch");
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::ChaosFault), 2);
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::Unknown), 0);
    assert_eq!(stats.epochs_aborted_by_reason.total(), stats.epochs_aborted);
    assert!(stats.chaos.dropped > 0, "chaos counters surface in MarketStats");
}

#[test]
fn adversary_aborts_classify_as_adversary() {
    let mut config = config().with_adversary(ProviderId(2), AdversaryKind::Silent { after: 0 });
    config.session_deadline = Duration::from_millis(300);
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 2);
    let watch = market.watch();
    let traces = watch.recent_traces();
    let stats = market.shutdown();

    assert_eq!(stats.epochs_aborted, 2, "a crashed provider ⊥s every epoch (m=3, k=1)");
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::Adversary), 2);
    assert_eq!(stats.epochs_aborted_by_reason.total(), stats.epochs_aborted);
    assert!(
        traces.iter().all(|t| t.abort == Some(AbortReason::Adversary)),
        "the abort reason rides the epoch trace too"
    );
}

#[test]
fn deadline_aborts_classify_as_deadline() {
    // No chaos, no adversary — just a deadline no session can meet.
    let mut config = config();
    config.session_deadline = Duration::from_nanos(1);
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 1);
    let stats = market.shutdown();

    assert_eq!(stats.epochs_aborted, 1);
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::Deadline), 1);
    assert_eq!(stats.epochs_aborted_by_reason.get(AbortReason::Unknown), 0);
}

#[test]
fn registry_exports_every_market_family() {
    let mut market =
        MarketService::start(config(), Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 1);

    let registry = Registry::new();
    register_market_metrics(&registry, market.watch());

    // The deployment roles register the liveness families next to the
    // market ones; a mid-outage scrape shows the dip and the rejoin.
    let mut tracker = LivenessTracker::new(M, LivenessConfig::default());
    register_liveness_metrics(&registry, tracker.metrics());
    let now = std::time::Instant::now();
    for p in 0..M {
        tracker.join(p, now);
    }
    tracker.disconnect(2);
    tracker.begin_reconnect(2);
    tracker.join(2, now); // one kill/rejoin cycle: reconnects_total = 1

    let text = registry.render();
    market.shutdown();

    for family in [
        "# TYPE market_epochs_cleared_total counter",
        "# TYPE market_epochs_aborted_total counter",
        "# TYPE market_bids_total counter",
        "# TYPE market_epoch_close_latency_seconds summary",
        "# TYPE market_epoch_close_latency_us histogram",
        "# TYPE market_journal_bytes_total counter",
        "# TYPE chaos_faults_injected_total counter",
        "# TYPE net_messages_total counter",
        "# TYPE net_io_threads gauge",
        "# TYPE net_peers_up gauge",
        "# TYPE net_peer_reconnects_total counter",
        "# TYPE flight_events_recorded_total counter",
    ] {
        assert!(text.contains(family), "scrape output missing {family:?}:\n{text}");
    }
    assert!(
        text.contains("market_epochs_cleared_total{mechanism=\"double-auction\"} 1"),
        "live value must flow through the collector, labelled with its mechanism"
    );
    assert!(text.contains("market_bids_total{verdict=\"accepted\"} 2"));
    assert!(text.contains("market_epochs_aborted_total{reason=\"deadline\"} 0"));
    assert!(
        text.contains("market_epochs_aborted_total{reason=\"peer_down\"} 0"),
        "the peer_down abort reason must be a first-class breakdown row"
    );
    assert!(
        text.contains("chaos_faults_injected_total{kind=\"partitioned\"} 0"),
        "partition faults must be a first-class chaos counter row"
    );
    assert!(text.contains("net_peers_up 3"), "all three peers are up after the rejoin:\n{text}");
    assert!(
        text.contains("net_peer_reconnects_total 1"),
        "the kill/rejoin cycle counts exactly one reconnect:\n{text}"
    );
    assert!(text.contains("market_epoch_close_latency_us_bucket{le=\"+Inf\"} 1"));
}

#[test]
fn flight_recorder_stays_bounded_and_dumps_parseable_json() {
    let mut config = config();
    config.telemetry.flight_capacity = 4;
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("start");
    drive(&mut market, 8); // 8 epoch_cleared events through a 4-slot ring
    let watch = market.watch();
    let dump = FlightDump::parse(&watch.flight_dump_json()).expect("dump parses");
    market.shutdown();

    assert_eq!(dump.capacity, 4);
    assert!(dump.recorded >= 8, "every event counted even after eviction");
    assert_eq!(dump.events.len(), 4, "the ring retains exactly its capacity");
    // The survivors are the most recent events, in order.
    let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
    let newest = *seqs.iter().max().unwrap();
    assert_eq!(seqs, (newest - 3..=newest).collect::<Vec<u64>>());
    assert!(dump.events.iter().all(|e| e.kind == "epoch_cleared"));
}

#[test]
fn epoch_traces_replay_deterministically_from_the_market_seed() {
    let run = || -> Vec<EpochTrace> {
        let mut market =
            MarketService::start(config(), Arc::new(DoubleAuctionProgram::new())).expect("start");
        drive(&mut market, 2);
        let traces = market.watch().recent_traces();
        market.shutdown();
        traces
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.session, y.session);
        assert_eq!(x.seed, y.seed, "epoch seeds derive from the config seed");
        assert_eq!(x.root, y.root);
        // Same structure with identical span IDs — only durations are
        // wall-clock-dependent.
        let shape = |t: &EpochTrace| {
            t.spans.iter().map(|s| (s.id, s.parent, s.name.clone())).collect::<Vec<_>>()
        };
        assert_eq!(shape(x), shape(y), "epoch {}: span tree must replay", x.epoch);
    }
    // Distinct epochs never share span IDs (the per-epoch seed differs).
    assert_ne!(a[0].root, a[1].root);
}
