//! The continuous-market acceptance suite: many consecutive epochs over
//! ONE persistent mesh, each equivalent to a one-shot session, with no
//! per-epoch thread/transport churn and a lossless drain-then-shutdown —
//! plus journal replay-equivalence: a recovered market re-clears
//! unsealed epochs to **byte-identical** outcomes.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use dauctioneer_core::{
    run_session, DoubleAuctionProgram, FrameworkConfig, RunOptions, TransportKind,
};
use dauctioneer_market::{
    crc32, scan, verify_log, Backpressure, EpochOutcome, EpochPolicy, FsyncPolicy, JournalConfig,
    MarketConfig, MarketError, MarketService, MechanismSpec, SubmitError,
};
use dauctioneer_net::{wire_encode, FaultPlan};
use dauctioneer_types::{Bw, Encode, JournalRecord, Money, ProviderAsk, UserBid, UserId};

/// Distinct, valid §6.2-style bids: user `u` of round `round`.
fn bid(round: u64, u: u32) -> UserBid {
    UserBid::new(Money::from_f64(0.8 + 0.05 * u as f64 + 0.01 * round as f64), Bw::from_f64(0.5))
}

fn asks() -> Vec<ProviderAsk> {
    vec![
        ProviderAsk::new(Money::from_f64(0.10), Bw::from_f64(1.0)),
        ProviderAsk::new(Money::from_f64(0.20), Bw::from_f64(1.0)),
        ProviderAsk::new(Money::from_f64(0.30), Bw::from_f64(1.0)),
    ]
}

fn market_config(transport: TransportKind, shards: usize) -> MarketConfig {
    let mut config = MarketConfig::new(3, 1, 8, 3)
        .with_epoch(EpochPolicy::ByCount(4))
        .with_asks(asks())
        .with_transport(transport, shards);
    config.seed = 77;
    config
}

/// Drive `rounds` epochs of 4 distinct bids each through a running
/// market, collecting the outcome of every closed epoch.
fn drive_epochs(market: &mut MarketService, rounds: u64) -> Vec<EpochOutcome> {
    let outcomes = market.take_outcomes().expect("first subscription take");
    let handle = market.handle();
    let mut closed = Vec::new();
    for round in 0..rounds {
        for u in 0..4u32 {
            handle.submit_bid(UserId(u), bid(round, u)).expect("market accepts while open");
        }
        let epoch = outcomes.recv_timeout(Duration::from_secs(30)).expect("epoch closes");
        closed.push(epoch);
    }
    closed
}

/// The headline acceptance test: ≥3 consecutive epochs over one
/// persistent mesh, no per-epoch thread/transport churn (thread roster +
/// monotone traffic on the same counters), every epoch unanimous non-⊥
/// and **identical to a one-shot `run_session` over the same collected
/// bids**.
#[test]
fn three_epochs_one_mesh_match_one_shot_sessions() {
    let mut market = MarketService::start(
        market_config(TransportKind::InProc, 2),
        Arc::new(DoubleAuctionProgram::new()),
    )
    .expect("valid config");

    // Thread accounting: the full worker roster exists before the first
    // epoch and never changes. (The pool additionally asserts, on every
    // epoch reply, that the replying thread IS the spawned one.)
    let roster: Vec<_> = market.worker_ids().to_vec();
    assert_eq!(roster.iter().map(Vec::len).sum::<usize>(), 3 * 2, "m×shards workers at startup");
    assert_eq!(market.stats().worker_threads, 6);

    let mut traffic_points = vec![market.traffic()];
    let outcomes = market.take_outcomes().expect("subscription");
    let handle = market.handle();

    let mut closed: Vec<EpochOutcome> = Vec::new();
    for round in 0..3u64 {
        for u in 0..4u32 {
            handle.submit_bid(UserId(u), bid(round, u)).expect("accepted while open");
        }
        let epoch = outcomes.recv_timeout(Duration::from_secs(30)).expect("epoch closes");
        // Same mesh, same counters: traffic strictly grows every epoch.
        let now = market.traffic();
        let prev = traffic_points.last().unwrap();
        assert!(
            now.total_messages() > prev.total_messages(),
            "epoch {round}: traffic must accumulate on the persistent mesh"
        );
        assert_eq!(now.per_provider.len(), 3, "same m counters across the whole run");
        traffic_points.push(now);
        // No churn: the roster is byte-for-byte the startup roster.
        assert_eq!(market.worker_ids(), roster.as_slice(), "epoch {round}: worker churn");
        closed.push(epoch);
    }

    assert_eq!(closed.len(), 3);
    for (round, epoch) in closed.iter().enumerate() {
        assert_eq!(epoch.epoch, round as u64);
        assert_eq!(epoch.accepted_bids, 4);
        let unanimous = &epoch.outcome;
        assert!(!unanimous.is_abort(), "epoch {round} must clear");
        let result = unanimous.as_result().expect("agreed");
        assert!(!result.allocation.winners().is_empty(), "epoch {round} trades");

        // Equivalence with the one-shot paper pipeline: replay the
        // epoch's collected bids as a plain run_session with the same
        // session id and seed — outcomes must be identical.
        let cfg = FrameworkConfig::new(3, 1, 8, 3).with_session(epoch.session);
        let replay = run_session(
            &cfg,
            Arc::new(DoubleAuctionProgram::new()),
            vec![epoch.bids.clone(); 3],
            &RunOptions { seed: epoch.seed, ..RunOptions::default() },
        );
        assert_eq!(
            replay.unanimous(),
            *unanimous,
            "epoch {round} diverged from its one-shot replay"
        );
    }

    let stats = market.shutdown();
    assert_eq!(stats.epochs_closed, 3);
    assert_eq!(stats.bids_accepted, 12);
    assert_eq!(stats.worker_threads, 6, "shutdown reports the same constant roster");
}

/// The same three epochs over a persistent loopback-TCP mesh: identical
/// outcomes to the in-process transport, proving the market daemon is
/// transport-independent like everything below it.
#[test]
fn tcp_market_epochs_match_inproc() {
    let mut inproc = MarketService::start(
        market_config(TransportKind::InProc, 1),
        Arc::new(DoubleAuctionProgram::new()),
    )
    .expect("inproc market");
    let mut tcp = MarketService::start(
        market_config(TransportKind::Tcp, 1),
        Arc::new(DoubleAuctionProgram::new()),
    )
    .expect("tcp market");

    let a = drive_epochs(&mut inproc, 3);
    let b = drive_epochs(&mut tcp, 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.session, y.session);
        assert!(!x.outcome.is_abort());
        assert_eq!(x.outcome, y.outcome, "transport changed epoch {}", x.epoch);
    }
    let tcp_traffic = tcp.traffic();
    assert!(tcp_traffic.total_messages() > 0, "frames really crossed the sockets");
    inproc.shutdown();
    tcp.shutdown();
}

/// Drain-then-shutdown: submissions queued when shutdown begins — even
/// a partial epoch far short of its count target — are folded into a
/// final epoch and cleared. No accepted bid is lost.
#[test]
fn drain_then_shutdown_loses_no_accepted_bid() {
    let mut market = MarketService::start(
        market_config(TransportKind::InProc, 1),
        Arc::new(DoubleAuctionProgram::new()),
    )
    .expect("valid config");
    let outcomes = market.take_outcomes().expect("subscription");
    let handle = market.handle();

    // One full epoch (4 bids) plus a partial one (2 bids, target is 4).
    for u in 0..4u32 {
        handle.submit_bid(UserId(u), bid(0, u)).unwrap();
    }
    let first = outcomes.recv_timeout(Duration::from_secs(30)).expect("first epoch");
    assert_eq!(first.accepted_bids, 4);
    for u in 0..2u32 {
        handle.submit_bid(UserId(u), bid(1, u)).unwrap();
    }

    let stats = market.shutdown();
    // The partial epoch was flushed on drain…
    assert_eq!(stats.epochs_closed, 2, "partial epoch must be flushed at shutdown");
    assert_eq!(stats.bids_accepted, 6, "no accepted bid lost");
    let flushed = outcomes.recv_timeout(Duration::from_secs(1)).expect("flushed epoch");
    assert_eq!(flushed.accepted_bids, 2);
    assert!(!flushed.outcome.is_abort(), "the flushed epoch still clears properly");
    // …and per-epoch accepted counts account for every accepted bid.
    assert_eq!(first.accepted_bids + flushed.accepted_bids, 6);

    // After shutdown every handle is closed.
    assert_eq!(handle.submit_bid(UserId(0), bid(2, 0)), Err(SubmitError::Closed));
}

/// The collector rules act per epoch: a duplicate within an epoch is
/// rejected, but the same user bids afresh in the next epoch.
#[test]
fn duplicate_rules_reset_across_epochs() {
    let mut config = market_config(TransportKind::InProc, 1);
    config.epoch = EpochPolicy::ByCount(2);
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("valid");
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();

    // Epoch 0: user 0 twice (second rejected), user 1 once.
    handle.submit_bid(UserId(0), bid(0, 0)).unwrap();
    handle.submit_bid(UserId(0), bid(0, 1)).unwrap(); // duplicate
    handle.submit_bid(UserId(1), bid(0, 1)).unwrap();
    let e0 = outcomes.recv_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(e0.accepted_bids, 2);
    // Epoch 1: user 0 again — accepted, the collector state was fresh.
    handle.submit_bid(UserId(0), bid(1, 0)).unwrap();
    handle.submit_bid(UserId(1), bid(1, 1)).unwrap();
    let e1 = outcomes.recv_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(e1.accepted_bids, 2);

    let stats = market.shutdown();
    assert_eq!(stats.bids_accepted, 4);
    assert_eq!(stats.bids_rejected_duplicate, 1);
}

/// Streamed asks overwrite the configured defaults for the open epoch
/// only; out-of-range slots are counted, not applied.
#[test]
fn streamed_asks_apply_to_the_open_epoch() {
    let mut config = market_config(TransportKind::InProc, 1);
    config.epoch = EpochPolicy::ByCount(2);
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("valid");
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();

    // Provider 0 floods the epoch with cheap capacity.
    let cheap = ProviderAsk::new(Money::from_f64(0.01), Bw::from_f64(5.0));
    handle.submit_ask(0, cheap).unwrap();
    handle.submit_ask(99, cheap).unwrap(); // out of range: counted, dropped
    handle.submit_bid(UserId(0), bid(0, 0)).unwrap();
    handle.submit_bid(UserId(1), bid(0, 1)).unwrap();
    let e0 = outcomes.recv_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(e0.bids.asks()[0], cheap, "streamed ask visible in the closed vector");

    // Next epoch reverts to the configured defaults.
    handle.submit_bid(UserId(0), bid(1, 0)).unwrap();
    handle.submit_bid(UserId(1), bid(1, 1)).unwrap();
    let e1 = outcomes.recv_timeout(Duration::from_secs(30)).unwrap();
    assert_eq!(e1.bids.asks()[0], asks()[0], "defaults restored after the epoch closed");

    let stats = market.shutdown();
    assert_eq!(stats.asks_set, 1);
    assert_eq!(stats.asks_rejected, 1, "out-of-range ask counted as ask, not bid");
    assert_eq!(stats.bids_rejected_unknown, 0, "ask rejections never inflate bid counters");
    assert_eq!(stats.bids_seen(), stats.bids_accepted, "only bids in bids_seen");
}

/// A time-policy market closes epochs without ever reaching a count.
#[test]
fn by_time_epochs_close_on_the_clock() {
    let mut config = market_config(TransportKind::InProc, 1);
    config.epoch = EpochPolicy::ByTime(Duration::from_millis(50));
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("valid");
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();

    handle.submit_bid(UserId(0), bid(0, 0)).unwrap();
    handle.submit_bid(UserId(1), bid(0, 1)).unwrap();
    let epoch = outcomes.recv_timeout(Duration::from_secs(30)).expect("clock closes the epoch");
    assert_eq!(epoch.accepted_bids, 2);
    assert!(!epoch.outcome.is_abort());
    market.shutdown();
}

/// Backpressure end-to-end: a blocked submitter finishes once the
/// scheduler drains, and nothing is shed under the block policy.
#[test]
fn block_backpressure_never_sheds() {
    let mut config = market_config(TransportKind::InProc, 1);
    config.epoch = EpochPolicy::ByCount(4);
    config.ingress_capacity = 2;
    config.backpressure = Backpressure::Block;
    let mut market =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("valid");
    let outcomes = market.take_outcomes().unwrap();
    let handle = market.handle();

    // 8 bids through a 2-deep queue: pushes block until drained.
    for round in 0..2u64 {
        for u in 0..4u32 {
            handle.submit_bid(UserId(u), bid(round, u)).expect("block, never shed");
        }
    }
    for _ in 0..2 {
        let epoch = outcomes.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(epoch.accepted_bids, 4);
    }
    let stats = market.shutdown();
    assert_eq!(stats.bids_shed, 0);
    assert_eq!(stats.bids_accepted, 8);
}

// ---------------------------------------------------------------------------
// Journal replay equivalence
// ---------------------------------------------------------------------------

fn temp_journal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dauction-replay-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Rewrite the journal at `path` without the seals of `epochs` — the
/// on-disk state of a process killed after accepting those epochs' bids
/// but before (durably) sealing their outcomes.
fn strip_seals(path: &Path, epochs: &[u64]) {
    let records = scan(&std::fs::read(path).unwrap()).records;
    let mut stream = Vec::new();
    for record in &records {
        if let JournalRecord::Sealed(seal) = record {
            if epochs.contains(&seal.epoch) {
                continue;
            }
        }
        let body = record.encode_to_bytes();
        let mut payload = body.to_vec();
        payload.extend_from_slice(&crc32(&body).to_le_bytes());
        stream.extend_from_slice(&wire_encode(&payload));
    }
    std::fs::write(path, &stream).unwrap();
}

/// Assert two epoch outcomes are byte-identical, not merely equal: the
/// acceptance bar for recovery is that a re-cleared epoch is
/// indistinguishable on the wire from the live one.
fn assert_byte_identical(live: &EpochOutcome, replayed: &EpochOutcome) {
    assert_eq!(live.epoch, replayed.epoch);
    assert_eq!(live.session, replayed.session);
    assert_eq!(live.seed, replayed.seed);
    assert_eq!(live.mechanism, replayed.mechanism, "epoch {}: mechanism provenance", live.epoch);
    assert_eq!(live.accepted_bids, replayed.accepted_bids);
    assert_eq!(
        live.bids.encode_to_bytes(),
        replayed.bids.encode_to_bytes(),
        "epoch {}: recovered bid vector differs",
        live.epoch
    );
    assert_eq!(
        live.outcome.encode_to_bytes(),
        replayed.outcome.encode_to_bytes(),
        "epoch {}: recovered outcome differs",
        live.epoch
    );
}

/// Run 3 journaled epochs live, strip the last two seals (simulating a
/// crash after the bids were journaled but before the seals were), and
/// recover in a fresh service: the replayed outcomes must be
/// byte-identical to the live ones, the sealed epoch must survive
/// verbatim, and the recovered journal must pass offline verification.
fn replay_equivalence(transport: TransportKind, name: &str) {
    let path = temp_journal(name);
    let mut config = market_config(transport, 1);
    config.journal = Some(JournalConfig::new(&path).with_fsync(FsyncPolicy::Never));
    let mut live =
        MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).expect("live market");
    let lived = drive_epochs(&mut live, 3);
    live.shutdown();
    assert_eq!(verify_log(&path).unwrap().seals, 3, "live run sealed every epoch");

    strip_seals(&path, &[1, 2]);

    let mut config = market_config(transport, 1);
    config.journal = Some(JournalConfig::new(&path).recovering());
    let recovered = MarketService::start(config, Arc::new(DoubleAuctionProgram::new()))
        .expect("recovered market");
    let report = recovered.recovery_report().expect("recovery happened").clone();
    assert_eq!(report.sealed.len(), 1, "epoch 0's seal survived");
    assert_eq!(report.sealed[0].epoch, 0);
    assert_eq!(
        report.sealed[0].outcome.encode_to_bytes(),
        lived[0].outcome.encode_to_bytes(),
        "sealed outcome must survive verbatim"
    );
    assert_eq!(report.replayed.len(), 2, "epochs 1 and 2 re-cleared");
    assert_eq!(report.next_epoch, 3);
    for (live_epoch, replayed) in lived[1..].iter().zip(&report.replayed) {
        assert_byte_identical(live_epoch, replayed);
    }
    recovered.shutdown();

    // Recovery re-sealed the replayed epochs: the journal verifies
    // offline and carries all three seals again.
    assert_eq!(verify_log(&path).unwrap().seals, 3, "replayed epochs re-sealed");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovered_inproc_market_replays_byte_identical_outcomes() {
    replay_equivalence(TransportKind::InProc, "inproc");
}

#[test]
fn recovered_tcp_market_replays_byte_identical_outcomes() {
    replay_equivalence(TransportKind::Tcp, "tcp");
}

/// Replay equivalence for the NP-hard mechanism: the combinatorial
/// winner determination is budgeted in search **nodes**, not wall-clock,
/// so a recovered market re-running the same branch-and-bound (fallback
/// and all) re-clears stripped epochs byte-identically — and the journal
/// seals every epoch under the mechanism's name.
#[test]
fn recovered_combinatorial_market_replays_byte_identical_outcomes() {
    let path = temp_journal("combinatorial");
    let spec: MechanismSpec = "combinatorial,budget=5000".parse().unwrap();
    let mut config = market_config(TransportKind::InProc, 1).with_mechanism(spec);
    config.journal = Some(JournalConfig::new(&path).with_fsync(FsyncPolicy::Never));
    let mut live = MarketService::start_from_spec(config).expect("live market");
    let lived = drive_epochs(&mut live, 3);
    live.shutdown();
    let summary = verify_log(&path).expect("live journal verifies");
    assert_eq!(summary.seals, 3, "live run sealed every epoch");
    assert_eq!(
        summary.mechanism.as_deref(),
        Some("combinatorial-auction"),
        "seals carry the clearing mechanism's name"
    );

    strip_seals(&path, &[1, 2]);

    let mut config = market_config(TransportKind::InProc, 1).with_mechanism(spec);
    config.journal = Some(JournalConfig::new(&path).recovering());
    let recovered = MarketService::start_from_spec(config).expect("recovered market");
    let report = recovered.recovery_report().expect("recovery happened").clone();
    assert_eq!(report.replayed.len(), 2, "epochs 1 and 2 re-cleared");
    for (live_epoch, replayed) in lived[1..].iter().zip(&report.replayed) {
        assert_eq!(live_epoch.mechanism, "combinatorial-auction");
        assert!(!live_epoch.outcome.is_abort(), "the combinatorial epochs really cleared");
        assert_byte_identical(live_epoch, replayed);
    }
    recovered.shutdown();
    assert_eq!(verify_log(&path).unwrap().seals, 3, "replayed epochs re-sealed");

    // Mechanism provenance is load-bearing: the same journal refuses to
    // recover under any other mechanism rather than silently re-clearing
    // history with different rules.
    strip_seals(&path, &[1, 2]);
    let mut config = market_config(TransportKind::InProc, 1);
    config.journal = Some(JournalConfig::new(&path).recovering());
    match MarketService::start_from_spec(config) {
        Err(MarketError::MechanismMismatch { journaled, configured }) => {
            assert_eq!(journaled, "combinatorial-auction");
            assert_eq!(configured, "double-auction");
        }
        Err(other) => panic!("expected a mechanism mismatch, got {other}"),
        Ok(_) => panic!("recovery under a different mechanism must be refused"),
    }
    std::fs::remove_file(&path).unwrap();
}

/// Replay equivalence under chaos: a corrupt-only fault plan (faults
/// that never change the message *count*, so the per-link fault schedule
/// seen by epoch 0 on a fresh mesh is reproducible on the recovered
/// service's fresh mesh). One live epoch, seal stripped, re-cleared
/// after recovery — byte-identical outcome, ⊥ or not.
#[test]
fn recovered_chaos_epoch_replays_byte_identically() {
    let path = temp_journal("chaos");
    let mut config = market_config(TransportKind::InProc, 1);
    config.chaos = Some(FaultPlan::seeded(1234).with_corrupt(0.35));
    config.session_deadline = Duration::from_secs(5);
    config.journal = Some(JournalConfig::new(&path).with_fsync(FsyncPolicy::Never));
    let mut live = MarketService::start(config, Arc::new(DoubleAuctionProgram::new()))
        .expect("live chaos market");
    let lived = drive_epochs(&mut live, 1);
    live.shutdown();

    strip_seals(&path, &[0]);

    let mut config = market_config(TransportKind::InProc, 1);
    config.chaos = Some(FaultPlan::seeded(1234).with_corrupt(0.35));
    config.session_deadline = Duration::from_secs(5);
    config.journal = Some(JournalConfig::new(&path).recovering());
    let recovered = MarketService::start(config, Arc::new(DoubleAuctionProgram::new()))
        .expect("recovered chaos market");
    let report = recovered.recovery_report().expect("recovery happened").clone();
    assert_eq!(report.replayed.len(), 1);
    assert_byte_identical(&lived[0], &report.replayed[0]);
    recovered.shutdown();
    assert!(verify_log(&path).is_ok());
    std::fs::remove_file(&path).unwrap();
}
