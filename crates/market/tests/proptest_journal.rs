//! Property tests for the write-ahead journal's torn-write robustness
//! and the settlement chain's tamper localization.
//!
//! The invariants a crash-durable log must hold under *arbitrary*
//! damage, not just the cuts a unit test thinks of:
//!
//! * any record sequence round-trips through the on-disk framing;
//! * truncating the stream at **any** byte offset recovers exactly the
//!   longest valid prefix — never a panic, never a phantom record;
//! * corrupting a byte anywhere never disturbs the records before it;
//! * flipping a bit inside a sealed record (with its CRC re-fixed, so
//!   only the chain can see it) makes `verify_log` name exactly the
//!   first divergent seal.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use dauctioneer_market::{crc32, scan, verify_log, ChainFault, FsyncPolicy, Journal, JournalError};
use dauctioneer_net::wire_encode;
use dauctioneer_types::{
    Allocation, AuctionResult, BidVector, Bw, Encode, JournalRecord, Money, Outcome, Payments,
    ProviderAsk, SealRecord, SessionId, UserBid, UserId,
};

fn arb_money() -> impl Strategy<Value = Money> {
    any::<i64>().prop_map(Money::from_micro)
}

fn arb_bw() -> impl Strategy<Value = Bw> {
    any::<u64>().prop_map(Bw::from_micro)
}

fn arb_user_bid() -> impl Strategy<Value = UserBid> {
    (arb_money(), arb_bw()).prop_map(|(v, d)| UserBid::new(v, d))
}

fn arb_ask() -> impl Strategy<Value = ProviderAsk> {
    (arb_money(), arb_bw()).prop_map(|(c, cap)| ProviderAsk::new(c, cap))
}

fn arb_bid_vector() -> impl Strategy<Value = BidVector> {
    (1usize..6, 1usize..3).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec((0..n as u32, arb_user_bid()), 0..6),
            proptest::collection::vec((0..m as u32, arb_ask()), 0..m.max(2)),
        )
            .prop_map(move |(bids, asks)| {
                let mut b = BidVector::builder(n, m);
                for (u, bid) in bids {
                    b = b.user_bid(u as usize, bid);
                }
                for (p, ask) in asks {
                    b = b.provider_ask(p as usize, ask);
                }
                b.build()
            })
    })
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        Just(Outcome::Abort),
        (1usize..5, 1usize..3, any::<u32>(), 1u64..1_000_000).prop_map(|(n, m, u, bw)| {
            let mut a = Allocation::new(n, m);
            a.add(UserId(u % n as u32), dauctioneer_types::ProviderId(0), Bw::from_micro(bw));
            Outcome::Agreed(AuctionResult::new(
                a,
                Payments::from_parts(vec![Money::from_micro(17); n], vec![Money::ZERO; m]),
            ))
        }),
    ]
}

/// An arbitrary seal. Chain fields are random — [`scan`] does not walk
/// the chain, so these exercise the *framing* of the largest record.
fn arb_seal() -> impl Strategy<Value = SealRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (arb_bid_vector(), arb_outcome(), any::<[u8; 32]>(), any::<[u8; 32]>()),
    )
        .prop_map(|((epoch, session, seed, accepted), (bids, outcome, prev, digest))| {
            SealRecord {
                epoch,
                session: SessionId(session),
                seed,
                accepted,
                bids,
                mechanism: "double-auction".to_string(),
                outcome,
                prev,
                digest,
            }
        })
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), arb_user_bid()).prop_map(|(epoch, user, bid)| {
            JournalRecord::Accepted { epoch, user: UserId(user), bid }
        }),
        (any::<u64>(), any::<u64>(), arb_ask())
            .prop_map(|(epoch, slot, ask)| JournalRecord::AskSet { epoch, slot, ask }),
        arb_seal().prop_map(JournalRecord::Sealed),
    ]
}

/// Frame one record exactly as `Journal::write_locked` does:
/// `[len][record bytes][crc32(record bytes)]`.
fn frame_record(record: &JournalRecord) -> Vec<u8> {
    let body = record.encode_to_bytes();
    let mut payload = body.to_vec();
    payload.extend_from_slice(&crc32(&body).to_le_bytes());
    wire_encode(&payload).to_vec()
}

/// Concatenated stream plus each record's end offset within it.
fn build_stream(records: &[JournalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for record in records {
        stream.extend_from_slice(&frame_record(record));
        ends.push(stream.len());
    }
    (stream, ends)
}

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dauction-propjournal-{name}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

proptest! {
    #[test]
    fn record_streams_roundtrip(records in proptest::collection::vec(arb_record(), 0..12)) {
        let (stream, _) = build_stream(&records);
        let result = scan(&stream);
        prop_assert_eq!(result.records, records);
        prop_assert_eq!(result.valid_bytes, stream.len() as u64);
        prop_assert_eq!(result.dropped_bytes, 0);
    }

    #[test]
    fn truncation_recovers_exactly_the_longest_valid_prefix(
        records in proptest::collection::vec(arb_record(), 1..10),
        cut_seed in any::<u64>(),
    ) {
        let (stream, ends) = build_stream(&records);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let result = scan(&stream[..cut]);
        // Exactly the records whose frame ends at or before the cut —
        // a torn frame is dropped whole, never half-believed.
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(&result.records[..], &records[..intact]);
        prop_assert_eq!(result.valid_bytes, ends.get(intact.wrapping_sub(1)).copied().unwrap_or(0) as u64);
        prop_assert_eq!(result.valid_bytes + result.dropped_bytes, cut as u64);
    }

    #[test]
    fn corruption_never_disturbs_earlier_records(
        records in proptest::collection::vec(arb_record(), 1..10),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (mut stream, ends) = build_stream(&records);
        let pos = (pos_seed as usize) % stream.len();
        stream[pos] ^= flip;
        // Never panics, and every record framed wholly before the
        // corrupted byte survives verbatim.
        let result = scan(&stream);
        let intact_before = ends.iter().filter(|&&e| e <= pos).count();
        prop_assert!(result.records.len() >= intact_before);
        prop_assert_eq!(&result.records[..intact_before], &records[..intact_before]);
        prop_assert_eq!(result.valid_bytes + result.dropped_bytes, stream.len() as u64);
    }

    /// End-to-end file property: append through the real [`Journal`],
    /// tear the file at an arbitrary byte, recover — the recovered file
    /// *is* the valid prefix and a second scan confirms zero loss of it.
    #[test]
    fn file_recovery_truncates_to_the_valid_prefix(
        bids in proptest::collection::vec((any::<u64>(), any::<u32>(), arb_user_bid()), 1..8),
        cut_seed in any::<u64>(),
    ) {
        let path = temp_path("recover");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for (epoch, user, bid) in &bids {
            // Monotone epochs keep the draft classification meaningful.
            journal.append_accepted(*epoch % 4, UserId(*user), *bid).unwrap();
        }
        drop(journal);

        let full = std::fs::read(&path).unwrap();
        let cut = (cut_seed as usize) % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        let (recovered, log) = Journal::recover(&path, FsyncPolicy::Never).unwrap();
        drop(recovered);
        let on_disk = std::fs::read(&path).unwrap();
        let rescanned = scan(&on_disk);
        prop_assert_eq!(rescanned.dropped_bytes, 0, "recovery left a torn tail behind");
        prop_assert_eq!(on_disk.len() as u64 + log.dropped_bytes, cut as u64);
        // No phantom: every surviving record is one we wrote, in order.
        let all_bids: Vec<(u64, UserId, UserBid)> =
            bids.iter().map(|(e, u, b)| (*e % 4, UserId(*u), *b)).collect();
        let survived: Vec<(u64, UserId, UserBid)> = rescanned
            .records
            .iter()
            .map(|r| match r {
                JournalRecord::Accepted { epoch, user, bid } => (*epoch, *user, *bid),
                other => panic!("wrote only Accepted records, read {other:?}"),
            })
            .collect();
        prop_assert_eq!(&survived[..], &all_bids[..survived.len()]);
        std::fs::remove_file(&path).unwrap();
    }

    /// Flip one bit inside an arbitrary sealed record of a real chained
    /// journal — with the CRC re-fixed so only the chain can tell — and
    /// the verifier names exactly that seal.
    #[test]
    fn chain_localizes_a_tampered_seal(
        epochs in 2u64..6,
        victim_seed in any::<u64>(),
        field in 0u8..3,
    ) {
        // Which content field to flip: seed, session, or accepted count.
        let path = temp_path("tamper");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for epoch in 0..epochs {
            journal.append_accepted(epoch, UserId(0), UserBid::new(Money::from_micro(1), Bw::from_micro(1))).unwrap();
            journal
                .append_seal(
                    epoch,
                    SessionId(100 + epoch),
                    epoch.wrapping_mul(7919),
                    1,
                    BidVector::builder(1, 0)
                        .user_bid(0, UserBid::new(Money::from_micro(1), Bw::from_micro(1)))
                        .build(),
                    "double-auction",
                    Outcome::Abort,
                )
                .unwrap();
        }
        drop(journal);
        prop_assert_eq!(verify_log(&path).unwrap().seals, epochs);

        let victim = victim_seed % epochs;
        let mut records = scan(&std::fs::read(&path).unwrap()).records;
        let mut hit = 0u64;
        for record in &mut records {
            if let JournalRecord::Sealed(seal) = record {
                if hit == victim {
                    // Tamper with sealed *content* — the digest still
                    // matches nothing.
                    match field {
                        0 => seal.seed ^= 1,
                        1 => seal.session = SessionId(seal.session.0 ^ 1),
                        _ => seal.accepted ^= 1,
                    }
                }
                hit += 1;
            }
        }
        // Re-frame the tampered record sequence with fixed-up CRCs, so
        // only the chain walk can catch the modification.
        let path2 = temp_path("tamper-rw");
        let mut stream = Vec::new();
        for record in &records {
            stream.extend_from_slice(&frame_record(record));
        }
        std::fs::write(&path2, &stream).unwrap();

        match verify_log(&path2) {
            Err(JournalError::Tampered(d)) => {
                prop_assert_eq!(d.seal_index, victim);
                prop_assert_eq!(d.fault, ChainFault::DigestMismatch);
            }
            other => prop_assert!(false, "expected divergence at seal {victim}, got {other:?}"),
        }
        // Recovery refuses the forged history outright.
        prop_assert!(matches!(
            Journal::recover(&path2, FsyncPolicy::Never),
            Err(JournalError::Tampered(_))
        ));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }
}
