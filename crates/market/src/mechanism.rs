//! Runtime mechanism selection: the spec grammar operators type on the
//! command line, its parser, and the factory that turns a parsed spec
//! into the [`AllocatorProgram`] a market clears its epochs with.
//!
//! # Grammar
//!
//! ```text
//! spec  := "double"
//!        | "standard"      [ ",eps=" PPM ]
//!        | "combinatorial" [ ",budget=" NODES ]
//!        | "divisible"     [ ",beta=" PRICE ]
//! ```
//!
//! `eps` is the branch-and-bound optimality gap in parts per million
//! (default 10 000 = 1 %); `budget` is the deterministic node cap of the
//! combinatorial winner-determination search (default
//! [`DEFAULT_NODE_BUDGET`]); `beta` is the divisible auction's reserve
//! price per unit in currency units (default 0). Parsing is strict —
//! unknown mechanisms and parameters that do not belong to the named
//! mechanism are typed [`MarketError::MechanismSpec`] errors, not
//! silently ignored. [`fmt::Display`] prints the canonical form
//! (parameters only when they differ from the default), and
//! `parse ∘ display` is the identity.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use dauctioneer_core::{
    AllocatorProgram, CombinatorialAuctionProgram, DivisibleAuctionProgram, DoubleAuctionProgram,
    DynProgram, StandardAuctionProgram,
};
use dauctioneer_mechanisms::combinatorial::DEFAULT_NODE_BUDGET;
use dauctioneer_mechanisms::solver::BranchBoundConfig;
use dauctioneer_mechanisms::{
    CombinatorialAuction, CombinatorialAuctionConfig, DivisibleAuction, DivisibleAuctionConfig,
    StandardAuction, StandardAuctionConfig,
};
use dauctioneer_types::{Bw, Money};

use crate::config::{MarketConfig, MarketError};

/// Default branch-and-bound optimality gap for `standard`: 1 %.
pub const DEFAULT_EPSILON_PPM: u32 = 10_000;

/// Which mechanism a market clears its epochs with, plus the
/// mechanism-specific tuning the spec grammar exposes.
///
/// The variants mirror the four production mechanisms; see
/// [`MechanismSpec::build_program`] for the mapping onto allocator
/// programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismSpec {
    /// The sequential double auction (uniform clearing price).
    Double,
    /// The (1−ε)-optimal VCG standard auction, parallelised per
    /// Algorithm 1.
    Standard {
        /// Branch-and-bound optimality gap in parts per million.
        epsilon_ppm: u32,
    },
    /// The node-budgeted multi-unit combinatorial auction (XOR bundles,
    /// greedy fallback with a reported bound when the budget exhausts).
    Combinatorial {
        /// Deterministic node cap of the winner-determination search.
        budget: u64,
    },
    /// The divisible-resource water-filling auction with Clarke-pivot
    /// VCG payments.
    Divisible {
        /// Reserve price per unit; bids below it are never filled.
        reserve: Money,
    },
}

impl Default for MechanismSpec {
    /// `double` — the mechanism every market cleared with before specs
    /// existed, so defaulted configs keep their historical behaviour.
    fn default() -> MechanismSpec {
        MechanismSpec::Double
    }
}

impl MechanismSpec {
    /// The machine-readable mechanism name recorded on epoch outcomes
    /// and inside journal seal content (mirrors `Mechanism::name` of
    /// the mechanism this spec builds).
    pub fn name(&self) -> &'static str {
        match self {
            MechanismSpec::Double => "double-auction",
            MechanismSpec::Standard { .. } => "standard-auction",
            MechanismSpec::Combinatorial { .. } => "combinatorial-auction",
            MechanismSpec::Divisible { .. } => "divisible-auction",
        }
    }

    /// Build the allocator program this spec describes, selling
    /// `capacities` (provider `i` offers `capacities[i]`). The double
    /// auction prices from the epoch's own asks and ignores
    /// `capacities`.
    pub fn build_program(&self, capacities: Vec<Bw>) -> Arc<dyn AllocatorProgram> {
        match *self {
            MechanismSpec::Double => Arc::new(DoubleAuctionProgram::new()),
            MechanismSpec::Standard { epsilon_ppm } => {
                // The node cap keeps worst-case epoch clearing bounded;
                // because it counts *nodes*, every replica stops at the
                // same point and replication still byte-agrees.
                let solver = BranchBoundConfig {
                    epsilon_ppm,
                    max_nodes: DEFAULT_NODE_BUDGET,
                    shuffle_providers: true,
                };
                Arc::new(StandardAuctionProgram::new(StandardAuction::new(StandardAuctionConfig {
                    capacities,
                    solver,
                })))
            }
            MechanismSpec::Combinatorial { budget } => {
                Arc::new(CombinatorialAuctionProgram::new(CombinatorialAuction::new(
                    CombinatorialAuctionConfig::new(capacities).with_budget(budget),
                )))
            }
            MechanismSpec::Divisible { reserve } => {
                Arc::new(DivisibleAuctionProgram::new(DivisibleAuction::new(
                    DivisibleAuctionConfig::new(capacities).with_reserve(reserve),
                )))
            }
        }
    }
}

/// The per-provider capacities a mechanism built from `config` sells:
/// the configured default asks' capacities when present, else one unit
/// per provider (a neutral symmetric market for ask-less configs).
pub fn market_capacities(config: &MarketConfig) -> Vec<Bw> {
    if config.asks.is_empty() {
        vec![Bw::from_f64(1.0); config.m]
    } else {
        config.asks.iter().map(|a| a.capacity()).collect()
    }
}

/// Build the type-erased program for `config.mechanism` selling
/// [`market_capacities`].
pub fn build_program(config: &MarketConfig) -> DynProgram {
    DynProgram::new(config.mechanism.build_program(market_capacities(config)))
}

impl fmt::Display for MechanismSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MechanismSpec::Double => write!(f, "double"),
            MechanismSpec::Standard { epsilon_ppm } => {
                if epsilon_ppm == DEFAULT_EPSILON_PPM {
                    write!(f, "standard")
                } else {
                    write!(f, "standard,eps={epsilon_ppm}")
                }
            }
            MechanismSpec::Combinatorial { budget } => {
                if budget == DEFAULT_NODE_BUDGET {
                    write!(f, "combinatorial")
                } else {
                    write!(f, "combinatorial,budget={budget}")
                }
            }
            MechanismSpec::Divisible { reserve } => {
                if reserve == Money::ZERO {
                    write!(f, "divisible")
                } else {
                    write!(f, "divisible,beta={reserve}")
                }
            }
        }
    }
}

impl FromStr for MechanismSpec {
    type Err = MarketError;

    fn from_str(s: &str) -> Result<MechanismSpec, MarketError> {
        let err = |reason: String| MarketError::MechanismSpec { spec: s.to_string(), reason };
        let mut parts = s.split(',');
        let kind = parts.next().unwrap_or("").trim();
        let mut spec = match kind {
            "double" => MechanismSpec::Double,
            "standard" => MechanismSpec::Standard { epsilon_ppm: DEFAULT_EPSILON_PPM },
            "combinatorial" => MechanismSpec::Combinatorial { budget: DEFAULT_NODE_BUDGET },
            "divisible" => MechanismSpec::Divisible { reserve: Money::ZERO },
            other => {
                return Err(err(format!(
                    "unknown mechanism `{other}` \
                     (expected double, standard, combinatorial, or divisible)"
                )))
            }
        };
        for part in parts {
            let part = part.trim();
            let Some((key, value)) = part.split_once('=') else {
                return Err(err(format!("expected key=value, got `{part}`")));
            };
            match (&mut spec, key) {
                (MechanismSpec::Standard { epsilon_ppm }, "eps") => {
                    *epsilon_ppm =
                        value.parse().map_err(|e| err(format!("eps must be ppm: {e}")))?;
                    if *epsilon_ppm >= 1_000_000 {
                        return Err(err("eps must be below 1000000 ppm".to_string()));
                    }
                }
                (MechanismSpec::Combinatorial { budget }, "budget") => {
                    *budget =
                        value.parse().map_err(|e| err(format!("budget must be nodes: {e}")))?;
                    if *budget == 0 {
                        return Err(err("budget must be at least 1 node".to_string()));
                    }
                }
                (MechanismSpec::Divisible { reserve }, "beta") => {
                    let beta: f64 =
                        value.parse().map_err(|e| err(format!("beta must be a price: {e}")))?;
                    if !beta.is_finite() || beta < 0.0 {
                        return Err(err("beta must be a finite nonnegative price".to_string()));
                    }
                    *reserve = Money::from_f64(beta);
                }
                (_, key) => {
                    return Err(err(format!("mechanism `{kind}` takes no parameter `{key}`")))
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        for text in [
            "double",
            "standard",
            "standard,eps=25000",
            "combinatorial",
            "combinatorial,budget=5000",
            "divisible",
            "divisible,beta=0.250000",
        ] {
            let spec: MechanismSpec = text.parse().expect(text);
            assert_eq!(spec.to_string(), text, "canonical text must round-trip");
            let again: MechanismSpec = spec.to_string().parse().expect(text);
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn defaults_display_without_parameters() {
        assert_eq!(
            MechanismSpec::Standard { epsilon_ppm: DEFAULT_EPSILON_PPM }.to_string(),
            "standard"
        );
        assert_eq!(
            MechanismSpec::Combinatorial { budget: DEFAULT_NODE_BUDGET }.to_string(),
            "combinatorial"
        );
        assert_eq!(MechanismSpec::Divisible { reserve: Money::ZERO }.to_string(), "divisible");
    }

    #[test]
    fn parses_parameters_and_whitespace() {
        assert_eq!(
            "standard, eps=5000".parse::<MechanismSpec>().unwrap(),
            MechanismSpec::Standard { epsilon_ppm: 5000 }
        );
        assert_eq!(
            "combinatorial,budget=123".parse::<MechanismSpec>().unwrap(),
            MechanismSpec::Combinatorial { budget: 123 }
        );
        assert_eq!(
            "divisible,beta=0.5".parse::<MechanismSpec>().unwrap(),
            MechanismSpec::Divisible { reserve: Money::from_f64(0.5) }
        );
    }

    #[test]
    fn rejects_malformed_specs_with_typed_errors() {
        for bad in [
            "vickrey",
            "standard,eps=nope",
            "standard,eps=1000000",
            "standard,budget=10",
            "combinatorial,budget=0",
            "combinatorial,eps=10",
            "divisible,beta=-1",
            "divisible,beta=inf",
            "double,eps=10",
            "combinatorial,10",
        ] {
            let parsed = bad.parse::<MechanismSpec>();
            assert!(
                matches!(parsed, Err(MarketError::MechanismSpec { .. })),
                "`{bad}` must be a typed spec error, got {parsed:?}"
            );
            let msg = parsed.unwrap_err().to_string();
            assert!(msg.contains(bad), "error must quote the offending spec: {msg}");
        }
    }

    #[test]
    fn names_mirror_the_mechanisms() {
        assert_eq!(MechanismSpec::Double.name(), "double-auction");
        assert_eq!(MechanismSpec::Standard { epsilon_ppm: 0 }.name(), "standard-auction");
        assert_eq!(MechanismSpec::Combinatorial { budget: 1 }.name(), "combinatorial-auction");
        assert_eq!(MechanismSpec::Divisible { reserve: Money::ZERO }.name(), "divisible-auction");
    }

    #[test]
    fn built_programs_report_the_spec_name() {
        let caps = vec![Bw::from_f64(1.0); 3];
        for text in ["double", "standard", "combinatorial", "divisible"] {
            let spec: MechanismSpec = text.parse().unwrap();
            assert_eq!(spec.build_program(caps.clone()).name(), spec.name(), "{text}");
        }
    }

    #[test]
    fn capacities_come_from_asks_or_default_to_unit() {
        use dauctioneer_types::ProviderAsk;
        let cfg = MarketConfig::new(3, 1, 8, 0);
        assert_eq!(market_capacities(&cfg), vec![Bw::from_f64(1.0); 3]);
        let ask = ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.5));
        let cfg = MarketConfig::new(3, 1, 8, 1).with_asks(vec![ask]);
        assert_eq!(market_capacities(&cfg), vec![Bw::from_f64(2.5)]);
    }
}
