//! The bounded ingress queue between streaming submitters and the epoch
//! scheduler.
//!
//! Submitters ([`crate::MarketHandle`]) push from any number of threads;
//! the scheduler pops from exactly one. The queue is **bounded** — an
//! open-world market must decide what sustained overload does, and the
//! two answers are the two [`Backpressure`] policies: shed (reject
//! synchronously, count it) or block (propagate the market's pace into
//! the submitter). Both are explicit; nothing is silently dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dauctioneer_types::{ProviderAsk, UserBid, UserId};

use crate::config::Backpressure;

/// One streamed submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// A user's bid for the open epoch.
    Bid {
        /// The bidder (must be `< n_users`).
        user: UserId,
        /// The bid.
        bid: UserBid,
    },
    /// A provider ask for the open epoch, overwriting the configured
    /// default for that slot.
    Ask {
        /// Ask slot index (must be `< n_asks`).
        slot: usize,
        /// The ask.
        ask: ProviderAsk,
    },
}

/// Why a submission did not enter the ingress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full and the policy is [`Backpressure::Shed`].
    Overloaded,
    /// The market is shutting down (or already shut down); no further
    /// submissions are accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "ingress queue full: submission shed"),
            SubmitError::Closed => write!(f, "market closed: submission rejected"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A submission plus the instant it entered the queue — the stamp the
/// epoch traces turn into the ingress span (queue wait of the bid that
/// opened the epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Queued {
    /// When the submission was pushed.
    pub(crate) at: Instant,
    /// The submission itself.
    pub(crate) submission: Submission,
}

/// What one pop attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pop {
    /// A submission, stamped with its queue-entry time.
    Item(Queued),
    /// Nothing arrived within the timeout.
    Timeout,
    /// The queue is closed **and drained**: no submission will ever
    /// arrive again. (Close with items still queued keeps yielding
    /// them first — drain-then-shutdown.)
    Closed,
}

#[derive(Debug)]
struct Inner {
    buf: VecDeque<Queued>,
    closed: bool,
}

/// The multi-producer single-consumer bounded queue with explicit
/// backpressure and shed accounting.
#[derive(Debug)]
pub(crate) struct IngressQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: Backpressure,
    /// Bids rejected because the queue was full (shed policy).
    shed_bids: AtomicU64,
    /// Asks rejected because the queue was full (shed policy).
    shed_asks: AtomicU64,
    /// Submissions that entered the queue.
    enqueued: AtomicU64,
}

impl IngressQueue {
    pub(crate) fn new(capacity: usize, policy: Backpressure) -> IngressQueue {
        assert!(capacity > 0, "ingress capacity validated non-zero");
        IngressQueue {
            inner: Mutex::new(Inner { buf: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
            shed_bids: AtomicU64::new(0),
            shed_asks: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
        }
    }

    /// Push one submission under the configured backpressure policy.
    pub(crate) fn push(&self, submission: Submission) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("ingress lock");
        loop {
            if inner.closed {
                return Err(SubmitError::Closed);
            }
            if inner.buf.len() < self.capacity {
                inner.buf.push_back(Queued { at: Instant::now(), submission });
                self.enqueued.fetch_add(1, Ordering::Relaxed);
                self.not_empty.notify_one();
                return Ok(());
            }
            match self.policy {
                Backpressure::Shed => {
                    match submission {
                        Submission::Bid { .. } => self.shed_bids.fetch_add(1, Ordering::Relaxed),
                        Submission::Ask { .. } => self.shed_asks.fetch_add(1, Ordering::Relaxed),
                    };
                    return Err(SubmitError::Overloaded);
                }
                Backpressure::Block => {
                    inner = self.not_full.wait(inner).expect("ingress lock");
                }
            }
        }
    }

    /// Pop one submission, waiting up to `timeout`. Queued submissions
    /// are always yielded before [`Pop::Closed`] is reported.
    pub(crate) fn pop_timeout(&self, timeout: Duration) -> Pop {
        // A timeout too large to anchor to the clock (e.g. a ByTime
        // policy configured with Duration::MAX as "no staleness bound")
        // is effectively unbounded: block instead of panicking on
        // Instant overflow.
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return self.pop();
        };
        let mut inner = self.inner.lock().expect("ingress lock");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Pop::Timeout;
            }
            let (guard, _) = self.not_empty.wait_timeout(inner, left).expect("ingress lock");
            inner = guard;
        }
    }

    /// Pop one submission, blocking until one arrives or the queue is
    /// closed and drained.
    pub(crate) fn pop(&self) -> Pop {
        let mut inner = self.inner.lock().expect("ingress lock");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            inner = self.not_empty.wait(inner).expect("ingress lock");
        }
    }

    /// Stop accepting submissions. Already-queued items remain poppable;
    /// blocked pushers and the popper are woken.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("ingress lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Bids shed at the queue (full + shed policy).
    pub(crate) fn shed_bids_count(&self) -> u64 {
        self.shed_bids.load(Ordering::Relaxed)
    }

    /// Asks shed at the queue (full + shed policy).
    pub(crate) fn shed_asks_count(&self) -> u64 {
        self.shed_asks.load(Ordering::Relaxed)
    }

    /// Submissions that entered the queue.
    pub(crate) fn enqueued_count(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Current queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("ingress lock").buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dauctioneer_types::{Bw, Money};
    use std::sync::Arc;

    fn bid(user: u32) -> Submission {
        Submission::Bid {
            user: UserId(user),
            bid: UserBid::new(Money::from_f64(1.0), Bw::from_f64(0.5)),
        }
    }

    /// The submission inside a pop, panicking on timeout/closed.
    fn item(pop: Pop) -> Submission {
        match pop {
            Pop::Item(q) => q.submission,
            other => panic!("expected an item, got {other:?}"),
        }
    }

    #[test]
    fn fifo_roundtrip() {
        let q = IngressQueue::new(4, Backpressure::Shed);
        let before = Instant::now();
        q.push(bid(0)).unwrap();
        q.push(bid(1)).unwrap();
        assert_eq!(q.depth(), 2);
        match q.pop_timeout(Duration::from_millis(10)) {
            Pop::Item(queued) => {
                assert_eq!(queued.submission, bid(0));
                assert!(queued.at >= before, "queue stamp must be the push instant");
            }
            other => panic!("expected an item, got {other:?}"),
        }
        assert_eq!(item(q.pop_timeout(Duration::from_millis(10))), bid(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Timeout);
        assert_eq!(q.enqueued_count(), 2);
    }

    #[test]
    fn shed_policy_rejects_and_counts_when_full() {
        let q = IngressQueue::new(2, Backpressure::Shed);
        q.push(bid(0)).unwrap();
        q.push(bid(1)).unwrap();
        assert_eq!(q.push(bid(2)), Err(SubmitError::Overloaded));
        assert_eq!(q.push(bid(3)), Err(SubmitError::Overloaded));
        assert_eq!(q.shed_bids_count(), 2);
        // Draining reopens capacity.
        assert!(matches!(q.pop(), Pop::Item(_)));
        q.push(bid(4)).unwrap();
        assert_eq!(q.shed_bids_count(), 2);
    }

    #[test]
    fn block_policy_waits_for_space() {
        let q = Arc::new(IngressQueue::new(1, Backpressure::Block));
        q.push(bid(0)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(bid(1)));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pusher.is_finished(), "full queue must block the pusher");
        assert!(matches!(q.pop(), Pop::Item(_)));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.shed_bids_count() + q.shed_asks_count(), 0, "block policy never sheds");
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q = IngressQueue::new(4, Backpressure::Shed);
        q.push(bid(0)).unwrap();
        q.push(bid(1)).unwrap();
        q.close();
        assert_eq!(q.push(bid(2)), Err(SubmitError::Closed));
        assert_eq!(item(q.pop()), bid(0));
        assert_eq!(item(q.pop()), bid(1));
        assert_eq!(q.pop(), Pop::Closed);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn close_wakes_blocked_pusher() {
        let q = Arc::new(IngressQueue::new(1, Backpressure::Block));
        q.push(bid(0)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(bid(1)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(SubmitError::Closed));
    }
}
