//! Live observability for a running market: counters, epoch-close
//! latency percentiles, per-reason abort attribution, and sustained
//! throughput.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dauctioneer_net::ChaosStats;
use dauctioneer_telemetry::{AbortReason, Histogram};

use crate::journal::Journal;

/// How many of the most recent epoch latencies the percentile window
/// keeps. Bounds memory and per-snapshot sort cost for a daemon that
/// closes epochs for weeks; 4096 epochs is plenty for stable p50/p99.
pub(crate) const LATENCY_WINDOW: usize = 4096;

/// Shared mutable state behind [`MarketStats`] snapshots.
#[derive(Debug)]
pub(crate) struct StatsShared {
    started: Instant,
    pub(crate) epochs_cleared: AtomicU64,
    pub(crate) epochs_aborted: AtomicU64,
    pub(crate) bids_accepted: AtomicU64,
    pub(crate) bids_rejected_invalid: AtomicU64,
    pub(crate) bids_rejected_duplicate: AtomicU64,
    pub(crate) bids_rejected_unknown: AtomicU64,
    pub(crate) asks_set: AtomicU64,
    pub(crate) asks_rejected: AtomicU64,
    /// Epoch close → unanimous outcome latency, the most recent
    /// [`LATENCY_WINDOW`] samples (one per epoch).
    latencies: Mutex<VecDeque<Duration>>,
    /// The same latencies as a live log₂ histogram (microseconds),
    /// unbounded in time: this is what the scrape endpoint exposes as
    /// cumulative `_bucket` rows, next to the windowed percentiles.
    pub(crate) close_latency_us: Histogram,
    /// Aborted epochs by [`AbortReason`], indexed per
    /// [`AbortReason::ALL`]. Sums to `epochs_aborted` by construction:
    /// both are bumped in [`StatsShared::record_epoch`].
    aborted_by_reason: [AtomicU64; AbortReason::ALL.len()],
    worker_threads: usize,
    /// The mechanism the market clears with; labels
    /// `market_epochs_cleared_total` on the scrape endpoint.
    pub(crate) mechanism: &'static str,
}

impl StatsShared {
    pub(crate) fn new(worker_threads: usize, mechanism: &'static str) -> StatsShared {
        StatsShared {
            started: Instant::now(),
            epochs_cleared: AtomicU64::new(0),
            epochs_aborted: AtomicU64::new(0),
            bids_accepted: AtomicU64::new(0),
            bids_rejected_invalid: AtomicU64::new(0),
            bids_rejected_duplicate: AtomicU64::new(0),
            bids_rejected_unknown: AtomicU64::new(0),
            asks_set: AtomicU64::new(0),
            asks_rejected: AtomicU64::new(0),
            latencies: Mutex::new(VecDeque::with_capacity(64)),
            close_latency_us: Histogram::new(),
            aborted_by_reason: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_threads,
            mechanism,
        }
    }

    /// Index of `reason` in the per-reason counter array.
    fn reason_slot(reason: AbortReason) -> usize {
        AbortReason::ALL.iter().position(|r| *r == reason).expect("reason in ALL")
    }

    pub(crate) fn record_epoch(&self, latency: Duration, abort: Option<AbortReason>) {
        // The per-epoch survivability split: under fault injection the
        // interesting question is how many epochs still cleared. The
        // closed total is *derived* from the split at snapshot time, so
        // `epochs_closed == epochs_cleared + epochs_aborted` holds in
        // every snapshot by construction, not by update ordering.
        match abort {
            Some(reason) => {
                self.epochs_aborted.fetch_add(1, Ordering::Relaxed);
                self.aborted_by_reason[StatsShared::reason_slot(reason)]
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.epochs_cleared.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.close_latency_us.observe(latency.as_micros().min(u64::MAX as u128) as u64);
        let mut window = self.latencies.lock().expect("stats lock");
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency);
    }

    /// Count an abort attribution without closing an epoch: the
    /// journal's fail-stop path records its reason here right before the
    /// process dies, so the flight dump's final stats carry it.
    pub(crate) fn record_abort_reason(&self, reason: AbortReason) {
        self.epochs_aborted.fetch_add(1, Ordering::Relaxed);
        self.aborted_by_reason[StatsShared::reason_slot(reason)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        shed_bids: u64,
        shed_asks: u64,
        enqueued: u64,
        queue_depth: usize,
        journal: Option<&Journal>,
        chaos: ChaosStats,
    ) -> MarketStats {
        let latencies: Vec<Duration> =
            self.latencies.lock().expect("stats lock").iter().copied().collect();
        let epochs_cleared = self.epochs_cleared.load(Ordering::Relaxed);
        let epochs_aborted = self.epochs_aborted.load(Ordering::Relaxed);
        let epochs_closed = epochs_cleared + epochs_aborted;
        let uptime = self.started.elapsed();
        MarketStats {
            uptime,
            mechanism: self.mechanism,
            epochs_closed,
            epochs_cleared,
            epochs_aborted,
            epochs_aborted_by_reason: AbortBreakdown {
                counts: std::array::from_fn(|i| self.aborted_by_reason[i].load(Ordering::Relaxed)),
            },
            chaos,
            bids_enqueued: enqueued,
            bids_accepted: self.bids_accepted.load(Ordering::Relaxed),
            bids_shed: shed_bids,
            asks_shed: shed_asks,
            bids_rejected_invalid: self.bids_rejected_invalid.load(Ordering::Relaxed),
            bids_rejected_duplicate: self.bids_rejected_duplicate.load(Ordering::Relaxed),
            bids_rejected_unknown: self.bids_rejected_unknown.load(Ordering::Relaxed),
            asks_set: self.asks_set.load(Ordering::Relaxed),
            asks_rejected: self.asks_rejected.load(Ordering::Relaxed),
            queue_depth,
            epoch_latency_p50: percentile(&latencies, 0.50),
            epoch_latency_p99: percentile(&latencies, 0.99),
            sessions_per_sec: if uptime.is_zero() {
                0.0
            } else {
                epochs_closed as f64 / uptime.as_secs_f64()
            },
            worker_threads: self.worker_threads,
            journal_bytes: journal.map_or(0, Journal::bytes_written),
            journal_fsyncs: journal.map_or(0, Journal::fsyncs),
            journal_fsync_mean: journal.map_or(Duration::ZERO, Journal::fsync_mean),
            journal_fsync_max: journal.map_or(Duration::ZERO, Journal::fsync_max),
        }
    }
}

/// Nearest-rank percentile over the recorded samples (zero when none).
fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Aborted-epoch counts broken down by [`AbortReason`] — the answer to
/// *why* epochs aborted, where [`MarketStats::epochs_aborted`] only says
/// how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbortBreakdown {
    /// Counts indexed per [`AbortReason::ALL`].
    counts: [u64; AbortReason::ALL.len()],
}

impl AbortBreakdown {
    /// Aborts attributed to `reason`.
    pub fn get(&self, reason: AbortReason) -> u64 {
        self.counts[AbortReason::ALL.iter().position(|r| *r == reason).expect("reason in ALL")]
    }

    /// Sum over all reasons; equals [`MarketStats::epochs_aborted`] in
    /// any snapshot.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(reason, count)` pairs in [`AbortReason::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (AbortReason, u64)> + '_ {
        AbortReason::ALL.into_iter().zip(self.counts.iter().copied())
    }
}

/// Point-in-time view of a running (or just-drained) market.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketStats {
    /// Time since the service started.
    pub uptime: Duration,
    /// The mechanism this market clears epochs with (the program's
    /// `AllocatorProgram::name`).
    pub mechanism: &'static str,
    /// Epochs closed and dispatched as sessions so far
    /// (`epochs_cleared + epochs_aborted`).
    pub epochs_closed: u64,
    /// Epochs whose session reached a unanimous non-⊥ outcome — the
    /// survivability numerator under fault injection.
    pub epochs_cleared: u64,
    /// Epochs whose session read ⊥ (deadline, faults, or adversarial
    /// providers).
    pub epochs_aborted: u64,
    /// `epochs_aborted` broken down by [`AbortReason`]; the totals
    /// agree in every snapshot.
    pub epochs_aborted_by_reason: AbortBreakdown,
    /// Faults the chaos plan actually injected into the persistent mesh
    /// (all zeros on a clean network).
    pub chaos: ChaosStats,
    /// Submissions (bids and asks) that entered the ingress queue.
    pub bids_enqueued: u64,
    /// Bids accepted into an epoch's collectors.
    pub bids_accepted: u64,
    /// Bids shed at the full ingress queue
    /// ([`crate::Backpressure::Shed`]).
    pub bids_shed: u64,
    /// Asks shed at the full ingress queue.
    pub asks_shed: u64,
    /// Bids rejected by the §3.2 validity rules (slot reads ⊥).
    pub bids_rejected_invalid: u64,
    /// Bids rejected as duplicates (first submission kept).
    pub bids_rejected_duplicate: u64,
    /// Bids naming an out-of-range user (or asks an out-of-range slot).
    pub bids_rejected_unknown: u64,
    /// Streamed asks applied to an open epoch.
    pub asks_set: u64,
    /// Streamed asks rejected for an out-of-range slot.
    pub asks_rejected: u64,
    /// Submissions currently queued, not yet applied to an epoch.
    pub queue_depth: usize,
    /// Median epoch-close latency (epoch close → unanimous outcome)
    /// over the most recent epochs (bounded window).
    pub epoch_latency_p50: Duration,
    /// 99th-percentile epoch-close latency (nearest rank) over the most
    /// recent epochs (bounded window).
    pub epoch_latency_p99: Duration,
    /// Sustained throughput: epochs closed per second of uptime.
    pub sessions_per_sec: f64,
    /// Provider worker threads spawned at startup (`m × shards`);
    /// constant for the life of the service — epochs never spawn.
    pub worker_threads: usize,
    /// Bytes appended to the write-ahead journal (0 when journaling is
    /// off; includes a recovered journal's valid prefix).
    pub journal_bytes: u64,
    /// Explicit journal fsyncs performed (0 under
    /// [`crate::FsyncPolicy::Never`] until shutdown's final sync).
    pub journal_fsyncs: u64,
    /// Mean journal fsync latency.
    pub journal_fsync_mean: Duration,
    /// Worst journal fsync latency observed.
    pub journal_fsync_max: Duration,
}

impl MarketStats {
    /// Total submissions the service has seen a verdict for (accepted,
    /// shed, or rejected) — asks excluded.
    pub fn bids_seen(&self) -> u64 {
        self.bids_accepted
            + self.bids_shed
            + self.bids_rejected_invalid
            + self.bids_rejected_duplicate
            + self.bids_rejected_unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&ms[..1], 0.99), Duration::from_millis(1));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn snapshot_reports_counters() {
        let s = StatsShared::new(6, "double-auction");
        s.bids_accepted.store(10, Ordering::Relaxed);
        s.record_epoch(Duration::from_millis(5), None);
        s.record_epoch(Duration::from_millis(7), Some(AbortReason::Deadline));
        let snap = s.snapshot(3, 2, 14, 1, None, ChaosStats::default());
        assert_eq!(snap.epochs_closed, 2);
        assert_eq!(snap.epochs_cleared, 1);
        assert_eq!(snap.epochs_aborted, 1);
        assert_eq!(snap.epochs_cleared + snap.epochs_aborted, snap.epochs_closed);
        assert_eq!(snap.epochs_aborted_by_reason.get(AbortReason::Deadline), 1);
        assert_eq!(snap.epochs_aborted_by_reason.total(), snap.epochs_aborted);
        assert_eq!(snap.bids_accepted, 10);
        assert_eq!(snap.bids_shed, 3);
        assert_eq!(snap.asks_shed, 2);
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.worker_threads, 6);
        assert_eq!(snap.epoch_latency_p50, Duration::from_millis(5));
        assert_eq!(snap.epoch_latency_p99, Duration::from_millis(7));
        assert_eq!(snap.bids_seen(), 13, "shed asks must not count as bids");
        assert!(snap.sessions_per_sec > 0.0);
        assert_eq!(snap.chaos.total(), 0);
        // The live histogram saw both epochs.
        assert_eq!(s.close_latency_us.count(), 2);
        assert_eq!(s.close_latency_us.sum(), 12_000);
    }

    #[test]
    fn abort_breakdown_attributes_every_reason() {
        let s = StatsShared::new(1, "double-auction");
        for reason in AbortReason::ALL {
            s.record_epoch(Duration::from_millis(1), Some(reason));
        }
        s.record_abort_reason(AbortReason::JournalFailStop);
        let snap = s.snapshot(0, 0, 0, 0, None, ChaosStats::default());
        assert_eq!(snap.epochs_aborted, AbortReason::ALL.len() as u64 + 1);
        assert_eq!(snap.epochs_aborted_by_reason.total(), snap.epochs_aborted);
        assert_eq!(snap.epochs_aborted_by_reason.get(AbortReason::JournalFailStop), 2);
        for (reason, count) in snap.epochs_aborted_by_reason.iter() {
            let expected = if reason == AbortReason::JournalFailStop { 2 } else { 1 };
            assert_eq!(count, expected, "{reason}");
        }
    }

    #[test]
    fn latency_window_is_bounded() {
        let s = StatsShared::new(1, "double-auction");
        for i in 0..(LATENCY_WINDOW as u64 + 500) {
            s.record_epoch(Duration::from_micros(i), None);
        }
        let snap = s.snapshot(0, 0, 0, 0, None, ChaosStats::default());
        assert_eq!(snap.epochs_closed, LATENCY_WINDOW as u64 + 500);
        // The window dropped the oldest samples: the median reflects the
        // recent half, not the all-time half.
        assert!(snap.epoch_latency_p50 >= Duration::from_micros(500));
    }
}
