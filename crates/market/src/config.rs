//! Configuration of a continuous market: epoch policy, ingress sizing,
//! and the typed errors rejecting invalid knob combinations up front.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use dauctioneer_core::{Adversary, AdversaryKind, ConfigError, FrameworkConfig, TransportKind};
use dauctioneer_net::{FaultPlan, FaultPlanError, LatencyModel};
use dauctioneer_types::{ProviderAsk, ProviderId};

use crate::journal::{FsyncPolicy, JournalError};
use crate::mechanism::MechanismSpec;

/// When the service closes the open epoch and clears it as one auction
/// session.
///
/// An epoch only opens when its first bid arrives, and an epoch with no
/// accepted bids is never closed — quiet markets cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochPolicy {
    /// Close as soon as `n` bids have been **accepted** into the epoch
    /// (submissions rejected by the collector rules do not count).
    ByCount(usize),
    /// Close when the epoch has been open for `d`, measured from its
    /// first accepted submission.
    ByTime(Duration),
    /// Close on whichever comes first: `count` accepted bids or
    /// `max_wait` elapsed — the usual production shape (bounded batch
    /// size *and* bounded staleness).
    Hybrid {
        /// Accepted-bid target that closes the epoch early.
        count: usize,
        /// Staleness bound: the epoch closes after this long even if the
        /// count was not reached.
        max_wait: Duration,
    },
}

/// What [`crate::MarketHandle::submit_bid`] does when the bounded
/// ingress queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Reject the submission immediately
    /// ([`crate::SubmitError::Overloaded`]) and count it as shed. The
    /// submitter learns synchronously; the market never stalls.
    #[default]
    Shed,
    /// Block the submitting thread until the scheduler drains space.
    /// No submission is ever shed, at the cost of propagating the
    /// market's pace back into the submitters.
    Block,
}

/// Durability configuration: where the write-ahead epoch journal
/// lives, how eagerly it reaches the disk, and whether the service
/// resumes an existing journal instead of creating a fresh one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// The journal file.
    pub path: PathBuf,
    /// When appended records are fsynced.
    pub fsync: FsyncPolicy,
    /// Recover the journal at `path` (replaying unsealed epochs) instead
    /// of requiring a fresh file.
    pub recover: bool,
}

impl JournalConfig {
    /// Journal to `path` with the default [`FsyncPolicy::Always`] — the
    /// nothing-acknowledged-is-ever-lost setting.
    pub fn new(path: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { path: path.into(), fsync: FsyncPolicy::Always, recover: false }
    }

    /// Set the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> JournalConfig {
        self.fsync = fsync;
        self
    }

    /// Recover the existing journal instead of creating a fresh one.
    pub fn recovering(mut self) -> JournalConfig {
        self.recover = true;
        self
    }
}

/// Telemetry-plane sizing for a market: how much post-mortem evidence
/// the service retains in memory. Both rings are bounded; `0` disables
/// that pillar entirely (a disabled flight recorder or trace ring costs
/// one branch per event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Events the crash flight recorder retains (dumped on SIGUSR1 and
    /// on fail-stop journal errors). `0` disables recording.
    pub flight_capacity: usize,
    /// Finished [`dauctioneer_telemetry::EpochTrace`]s the trace ring
    /// retains. `0` disables per-epoch tracing.
    pub trace_capacity: usize,
    /// Where a fail-stop journal error writes its flight dump before the
    /// process dies; `None` keeps the dump in memory only (still
    /// reachable over SIGUSR1 until the abort).
    pub flight_dump_path: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig { flight_capacity: 512, trace_capacity: 64, flight_dump_path: None }
    }
}

impl TelemetryConfig {
    /// Telemetry fully off: no flight events, no traces.
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig { flight_capacity: 0, trace_capacity: 0, flight_dump_path: None }
    }
}

/// Configuration of a [`crate::MarketService`].
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Number of providers jointly simulating the auctioneer.
    pub m: usize,
    /// Coalition bound (`m > 2k` required).
    pub k: usize,
    /// User slots per epoch; bids name a [`dauctioneer_types::UserId`]
    /// in `0..n_users`.
    pub n_users: usize,
    /// Provider-ask slots per epoch (0 for a standard-auction market).
    pub n_asks: usize,
    /// Asks attached to **every** epoch at open (index `i` fills ask
    /// slot `i`); streamed asks via
    /// [`crate::MarketHandle::submit_ask`] overwrite them for the open
    /// epoch only. Must not exceed `n_asks` entries.
    pub asks: Vec<ProviderAsk>,
    /// When the open epoch closes.
    pub epoch: EpochPolicy,
    /// Capacity of the bounded ingress queue between submitters and the
    /// epoch scheduler. Must be non-zero.
    pub ingress_capacity: usize,
    /// What a full ingress queue does to submitters.
    pub backpressure: Backpressure,
    /// The message substrate of the persistent provider mesh.
    pub transport: TransportKind,
    /// Independent meshes; each epoch's session is routed to one by the
    /// stable hash of its session id. Clamped to at least 1.
    pub shards: usize,
    /// Modelled link latency (in-process transport only; real TCP
    /// sockets impose their own).
    pub latency: LatencyModel,
    /// Wall-clock budget for clearing one epoch; providers undecided by
    /// then output ⊥ for that session.
    pub session_deadline: Duration,
    /// Base seed: epoch `e` runs its session with seed
    /// `seed + (e+1) * 7919` (then the usual per-provider fan-out).
    pub seed: u64,
    /// Session id of the first epoch; epoch `e` is session
    /// `first_session + e`.
    pub first_session: u64,
    /// Seeded link-fault injection on the persistent mesh (drop /
    /// duplicate / reorder / delay / corrupt per link, replayable from
    /// the plan's seed). `None` runs a clean network. Epochs cleared vs
    /// aborted under the plan are counted in
    /// [`crate::MarketStats::epochs_cleared`] /
    /// [`crate::MarketStats::epochs_aborted`].
    pub chaos: Option<FaultPlan>,
    /// Providers running an adversarial strategy instead of the honest
    /// protocol (everyone unlisted is honest).
    pub adversaries: Vec<Adversary>,
    /// Write-ahead epoch journal; `None` runs the market without crash
    /// durability (accepted bids die with the process).
    pub journal: Option<JournalConfig>,
    /// In-memory telemetry retention (flight recorder and epoch traces).
    pub telemetry: TelemetryConfig,
    /// Which mechanism [`crate::MarketService::start_from_spec`] clears
    /// epochs with (ignored by `start`, which takes an explicit
    /// program). Defaults to the double auction.
    pub mechanism: MechanismSpec,
}

impl MarketConfig {
    /// A market with sane defaults: close every 16 accepted bids, shed
    /// on overload, 1024-deep ingress, one in-process mesh.
    pub fn new(m: usize, k: usize, n_users: usize, n_asks: usize) -> MarketConfig {
        MarketConfig {
            m,
            k,
            n_users,
            n_asks,
            asks: Vec::new(),
            epoch: EpochPolicy::ByCount(16),
            ingress_capacity: 1024,
            backpressure: Backpressure::Shed,
            transport: TransportKind::InProc,
            shards: 1,
            latency: LatencyModel::Zero,
            session_deadline: Duration::from_secs(60),
            seed: 0,
            first_session: 0,
            chaos: None,
            adversaries: Vec::new(),
            journal: None,
            telemetry: TelemetryConfig::default(),
            mechanism: MechanismSpec::default(),
        }
    }

    /// Clear epochs with `mechanism` (used by
    /// [`crate::MarketService::start_from_spec`]).
    pub fn with_mechanism(mut self, mechanism: MechanismSpec) -> MarketConfig {
        self.mechanism = mechanism;
        self
    }

    /// Set the epoch policy.
    pub fn with_epoch(mut self, epoch: EpochPolicy) -> MarketConfig {
        self.epoch = epoch;
        self
    }

    /// Set the per-epoch default asks.
    pub fn with_asks(mut self, asks: Vec<ProviderAsk>) -> MarketConfig {
        self.asks = asks;
        self
    }

    /// Set transport and shard count.
    pub fn with_transport(mut self, transport: TransportKind, shards: usize) -> MarketConfig {
        self.transport = transport;
        self.shards = shards;
        self
    }

    /// Inject the given link-fault plan into the persistent mesh.
    pub fn with_chaos(mut self, plan: FaultPlan) -> MarketConfig {
        self.chaos = Some(plan);
        self
    }

    /// Run `provider` under `kind` instead of the honest protocol.
    pub fn with_adversary(mut self, provider: ProviderId, kind: AdversaryKind) -> MarketConfig {
        self.adversaries.push(Adversary::new(provider, kind));
        self
    }

    /// Journal accepted bids and sealed epochs to disk.
    pub fn with_journal(mut self, journal: JournalConfig) -> MarketConfig {
        self.journal = Some(journal);
        self
    }

    /// Size the in-memory telemetry retention.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> MarketConfig {
        self.telemetry = telemetry;
        self
    }

    /// The [`FrameworkConfig`] every epoch's session runs under (before
    /// its per-epoch session id is stamped on).
    pub fn framework(&self) -> FrameworkConfig {
        FrameworkConfig::new(self.m, self.k, self.n_users, self.n_asks)
    }

    /// Reject invalid knob combinations up front, before any thread or
    /// mesh exists.
    ///
    /// # Errors
    ///
    /// Returns the [`MarketError`] naming the violated constraint —
    /// mirroring `run_batch_with`'s checks, but as typed errors instead
    /// of panics, because a daemon's misconfiguration is an operator
    /// input, not a programming bug.
    pub fn validate(&self) -> Result<(), MarketError> {
        self.framework().validate().map_err(MarketError::Framework)?;
        if self.n_users == 0 {
            return Err(MarketError::NoUserSlots);
        }
        if self.ingress_capacity == 0 {
            return Err(MarketError::ZeroIngressCapacity);
        }
        match self.epoch {
            EpochPolicy::ByCount(0) => return Err(MarketError::EmptyEpochTarget),
            EpochPolicy::ByTime(d) if d.is_zero() => return Err(MarketError::EmptyEpochTarget),
            EpochPolicy::Hybrid { count: 0, .. } => return Err(MarketError::EmptyEpochTarget),
            EpochPolicy::Hybrid { max_wait, .. } if max_wait.is_zero() => {
                return Err(MarketError::EmptyEpochTarget)
            }
            _ => {}
        }
        if self.transport == TransportKind::Tcp && !self.latency.is_zero() {
            return Err(MarketError::TcpWithModelledLatency);
        }
        if self.asks.len() > self.n_asks {
            return Err(MarketError::TooManyAsks { asks: self.asks.len(), slots: self.n_asks });
        }
        if self.session_deadline.is_zero() {
            return Err(MarketError::ZeroSessionDeadline);
        }
        if let Some(plan) = &self.chaos {
            plan.validate().map_err(MarketError::Chaos)?;
        }
        for adversary in &self.adversaries {
            if adversary.provider.index() >= self.m {
                return Err(MarketError::AdversaryOutOfRange {
                    provider: adversary.provider.index(),
                    m: self.m,
                });
            }
        }
        if let Some(journal) = &self.journal {
            if journal.fsync == FsyncPolicy::EveryN(0) {
                return Err(MarketError::Journal(JournalError::BadFsyncPolicy(
                    "every=0".to_string(),
                )));
            }
        }
        Ok(())
    }
}

/// Why a [`MarketConfig`] cannot run, or a market could not start.
#[derive(Debug)]
pub enum MarketError {
    /// The underlying framework configuration is invalid (`m > 2k`,
    /// `m ≥ 1`).
    Framework(ConfigError),
    /// `n_users == 0`: no bid could ever be accepted, so no epoch could
    /// ever close.
    NoUserSlots,
    /// `ingress_capacity == 0`: every submission would be shed (or block
    /// forever), so the market could never open an epoch.
    ZeroIngressCapacity,
    /// The epoch policy can never trigger (`ByCount(0)`, a zero
    /// duration, or a hybrid with either).
    EmptyEpochTarget,
    /// Real TCP sockets impose their own latency; a non-zero
    /// [`LatencyModel`] cannot be injected into them.
    TcpWithModelledLatency,
    /// More per-epoch default asks than ask slots.
    TooManyAsks {
        /// Default asks configured.
        asks: usize,
        /// Ask slots available (`n_asks`).
        slots: usize,
    },
    /// A zero session deadline would ⊥ every epoch on arrival.
    ZeroSessionDeadline,
    /// The transport failed to come up (TCP listener/dial errors).
    Transport(String),
    /// The fault plan is impossible (probability outside `[0, 1]`,
    /// inverted delay range).
    Chaos(FaultPlanError),
    /// An adversary names a provider index outside the mesh.
    AdversaryOutOfRange {
        /// The named provider index.
        provider: usize,
        /// Providers in the mesh.
        m: usize,
    },
    /// The write-ahead journal could not be created, recovered, or is
    /// misconfigured.
    Journal(JournalError),
    /// A mechanism spec string does not parse (unknown mechanism, or a
    /// parameter that does not belong to it).
    MechanismSpec {
        /// The spec text as given.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A recovered journal was sealed under a different mechanism than
    /// the one this market is configured to clear with; re-clearing its
    /// unsealed epochs would fork the settlement history.
    MechanismMismatch {
        /// Mechanism name recorded in the journal's seals.
        journaled: String,
        /// Mechanism the market was configured to run.
        configured: String,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::Framework(e) => write!(f, "framework configuration: {e}"),
            MarketError::NoUserSlots => {
                write!(f, "n_users must be non-zero: no bid could ever be accepted")
            }
            MarketError::ZeroIngressCapacity => {
                write!(f, "ingress queue capacity must be non-zero")
            }
            MarketError::EmptyEpochTarget => {
                write!(f, "epoch policy can never trigger (zero count or zero duration)")
            }
            MarketError::TcpWithModelledLatency => write!(
                f,
                "modelled link latency cannot be injected into real TCP sockets; \
                 use the in-process transport for latency experiments"
            ),
            MarketError::TooManyAsks { asks, slots } => {
                write!(f, "{asks} default asks configured but only {slots} ask slots")
            }
            MarketError::ZeroSessionDeadline => {
                write!(f, "session deadline must be non-zero or every epoch reads ⊥")
            }
            MarketError::Transport(e) => write!(f, "transport bring-up failed: {e}"),
            MarketError::Chaos(e) => write!(f, "chaos plan: {e}"),
            MarketError::AdversaryOutOfRange { provider, m } => {
                write!(f, "adversary names provider {provider} but the mesh has {m} providers")
            }
            MarketError::Journal(e) => write!(f, "journal: {e}"),
            MarketError::MechanismSpec { spec, reason } => {
                write!(f, "mechanism spec `{spec}`: {reason}")
            }
            MarketError::MechanismMismatch { journaled, configured } => write!(
                f,
                "journal was sealed under mechanism `{journaled}` but this market is \
                 configured for `{configured}`; refusing to re-clear recovered epochs \
                 under a different mechanism"
            ),
        }
    }
}

impl Error for MarketError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarketError::Framework(e) => Some(e),
            MarketError::Chaos(e) => Some(e),
            MarketError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dauctioneer_types::{Bw, Money};

    #[test]
    fn default_config_is_valid() {
        assert!(MarketConfig::new(3, 1, 8, 1).validate().is_ok());
    }

    #[test]
    fn rejects_bad_framework() {
        assert!(matches!(
            MarketConfig::new(2, 1, 8, 0).validate(),
            Err(MarketError::Framework(ConfigError::TooFewProviders { m: 2, k: 1 }))
        ));
    }

    #[test]
    fn rejects_zero_capacity_ingress() {
        let mut cfg = MarketConfig::new(3, 1, 8, 0);
        cfg.ingress_capacity = 0;
        assert!(matches!(cfg.validate(), Err(MarketError::ZeroIngressCapacity)));
    }

    #[test]
    fn rejects_untriggerable_epoch_policies() {
        for epoch in [
            EpochPolicy::ByCount(0),
            EpochPolicy::ByTime(Duration::ZERO),
            EpochPolicy::Hybrid { count: 0, max_wait: Duration::from_secs(1) },
            EpochPolicy::Hybrid { count: 4, max_wait: Duration::ZERO },
        ] {
            let cfg = MarketConfig::new(3, 1, 8, 0).with_epoch(epoch);
            assert!(matches!(cfg.validate(), Err(MarketError::EmptyEpochTarget)), "{epoch:?}");
        }
    }

    #[test]
    fn rejects_tcp_with_modelled_latency() {
        let mut cfg = MarketConfig::new(3, 1, 8, 0).with_transport(TransportKind::Tcp, 1);
        cfg.latency = LatencyModel::ConstantMicros(100);
        assert!(matches!(cfg.validate(), Err(MarketError::TcpWithModelledLatency)));
        cfg.latency = LatencyModel::Zero;
        assert!(cfg.validate().is_ok(), "TCP with zero latency is fine");
    }

    #[test]
    fn rejects_more_asks_than_slots() {
        let ask = ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(1.0));
        let cfg = MarketConfig::new(3, 1, 8, 1).with_asks(vec![ask; 2]);
        assert!(matches!(cfg.validate(), Err(MarketError::TooManyAsks { asks: 2, slots: 1 })));
    }

    #[test]
    fn rejects_zero_users_and_zero_deadline() {
        assert!(matches!(MarketConfig::new(3, 1, 0, 0).validate(), Err(MarketError::NoUserSlots)));
        let mut cfg = MarketConfig::new(3, 1, 8, 0);
        cfg.session_deadline = Duration::ZERO;
        assert!(matches!(cfg.validate(), Err(MarketError::ZeroSessionDeadline)));
    }

    #[test]
    fn rejects_bad_chaos_plans_and_out_of_range_adversaries() {
        let cfg = MarketConfig::new(3, 1, 8, 0).with_chaos(FaultPlan::seeded(1).with_drop(2.0));
        assert!(matches!(cfg.validate(), Err(MarketError::Chaos(_))));
        let cfg =
            MarketConfig::new(3, 1, 8, 0).with_adversary(ProviderId(3), AdversaryKind::Equivocator);
        assert!(matches!(
            cfg.validate(),
            Err(MarketError::AdversaryOutOfRange { provider: 3, m: 3 })
        ));
        let cfg = MarketConfig::new(3, 1, 8, 0)
            .with_chaos(FaultPlan::seeded(1).with_drop(0.1))
            .with_adversary(ProviderId(2), AdversaryKind::Silent { after: 4 });
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn errors_display_their_constraint() {
        assert!(MarketError::ZeroIngressCapacity.to_string().contains("non-zero"));
        assert!(MarketError::TcpWithModelledLatency.to_string().contains("TCP"));
        assert!(MarketError::EmptyEpochTarget.to_string().contains("never trigger"));
    }
}
