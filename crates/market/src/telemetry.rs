//! The market ↔ registry adapter: re-export a running market's existing
//! counters ([`MarketStats`], [`dauctioneer_net::TrafficSnapshot`],
//! [`dauctioneer_net::ChaosStats`], journal and flight-recorder state)
//! as named metric families on a [`Registry`].
//!
//! Everything here is a scrape-time collector over a [`MarketWatch`]:
//! the market keeps its own counters exactly as before, and one
//! registration call makes them scrapeable — no subsystem grows a
//! metrics dependency on its hot path.

use dauctioneer_net::LivenessMetrics;
use dauctioneer_telemetry::{Family, MetricKind, Registry, Sample};

use crate::service::MarketWatch;
use crate::stats::MarketStats;

/// Register every market metric family on `registry`, backed by `watch`.
///
/// Families are collected at scrape time from the same shared state
/// [`crate::MarketService::stats`] reads, so a scrape and a stats call
/// always agree. The set of families (and of `reason`/`kind`/`verdict`
/// label values) is fixed, not data-driven: rows appear with value 0
/// from the first scrape, which is what dashboards and rate() queries
/// want.
///
/// # Example
///
/// ```no_run
/// use dauctioneer_core::DoubleAuctionProgram;
/// use dauctioneer_market::{register_market_metrics, MarketConfig, MarketService};
/// use dauctioneer_telemetry::{MetricsServer, Registry};
/// use std::sync::Arc;
///
/// let market = MarketService::start(
///     MarketConfig::new(3, 1, 4, 1),
///     Arc::new(DoubleAuctionProgram::new()),
/// )
/// .unwrap();
/// let registry = Registry::new();
/// register_market_metrics(&registry, market.watch());
/// let server = MetricsServer::bind("127.0.0.1:9615", registry).unwrap();
/// println!("scrape me at http://{}/metrics", server.local_addr());
/// ```
pub fn register_market_metrics(registry: &Registry, watch: MarketWatch) {
    let stats_watch = watch.clone();
    registry.register_collector(move || market_families(&stats_watch.stats()));
    let latency_watch = watch.clone();
    registry.register_collector(move || {
        vec![Family {
            name: "market_epoch_close_latency_us".into(),
            help: "Epoch close to unanimous outcome latency in microseconds (log2 buckets).".into(),
            kind: MetricKind::Histogram,
            samples: latency_watch.close_latency_histogram().to_samples(&[]),
        }]
    });
    let net_watch = watch.clone();
    registry.register_collector(move || net_families(&net_watch));
    registry.register_collector(move || flight_families(&watch));
}

/// Register the peer liveness families on `registry`, backed by the
/// shared counters of a [`dauctioneer_net::LivenessTracker`].
///
/// Exports `net_peers_up` (how many peers the liveness layer currently
/// considers reachable — Up or Suspect) and `net_peer_reconnects_total`
/// (rejoins after a declared death). The coordinator role registers
/// this next to [`register_market_metrics`]-style families so a scrape
/// during an outage shows the dip and the subsequent reconnect.
pub fn register_liveness_metrics(registry: &Registry, metrics: LivenessMetrics) {
    registry.register_collector(move || {
        vec![
            Family::single(
                "net_peers_up",
                "Peers the liveness layer currently considers reachable (Up or Suspect).",
                MetricKind::Gauge,
                metrics.peers_up() as f64,
            ),
            Family::single(
                "net_peer_reconnects_total",
                "Peer rejoins after the liveness layer declared them Down.",
                MetricKind::Counter,
                metrics.reconnects_total() as f64,
            ),
        ]
    });
}

/// The snapshot-derived families: market counters, abort breakdown,
/// chaos counters, journal durability costs.
fn market_families(stats: &MarketStats) -> Vec<Family> {
    let seconds = |d: std::time::Duration| d.as_secs_f64();
    vec![
        Family::single(
            "market_uptime_seconds",
            "Seconds since the market service started.",
            MetricKind::Gauge,
            seconds(stats.uptime),
        ),
        Family {
            name: "market_epochs_cleared_total".into(),
            help: "Epochs whose session reached a unanimous non-bottom outcome.".into(),
            kind: MetricKind::Counter,
            samples: vec![Sample::labelled(
                "mechanism",
                stats.mechanism,
                stats.epochs_cleared as f64,
            )],
        },
        Family {
            name: "market_epochs_aborted_total".into(),
            help: "Epochs that aborted, by classified reason.".into(),
            kind: MetricKind::Counter,
            samples: stats
                .epochs_aborted_by_reason
                .iter()
                .map(|(reason, count)| Sample::labelled("reason", reason.label(), count as f64))
                .collect(),
        },
        Family {
            name: "market_bids_total".into(),
            help: "Bid submissions by verdict.".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample::labelled("verdict", "accepted", stats.bids_accepted as f64),
                Sample::labelled("verdict", "shed", stats.bids_shed as f64),
                Sample::labelled("verdict", "rejected_invalid", stats.bids_rejected_invalid as f64),
                Sample::labelled(
                    "verdict",
                    "rejected_duplicate",
                    stats.bids_rejected_duplicate as f64,
                ),
                Sample::labelled("verdict", "rejected_unknown", stats.bids_rejected_unknown as f64),
            ],
        },
        Family {
            name: "market_asks_total".into(),
            help: "Streamed ask submissions by verdict.".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample::labelled("verdict", "set", stats.asks_set as f64),
                Sample::labelled("verdict", "shed", stats.asks_shed as f64),
                Sample::labelled("verdict", "rejected", stats.asks_rejected as f64),
            ],
        },
        Family::single(
            "market_submissions_enqueued_total",
            "Submissions that entered the ingress queue.",
            MetricKind::Counter,
            stats.bids_enqueued as f64,
        ),
        Family::single(
            "market_ingress_queue_depth",
            "Submissions queued, not yet folded into an epoch.",
            MetricKind::Gauge,
            stats.queue_depth as f64,
        ),
        Family {
            name: "market_epoch_close_latency_seconds".into(),
            help: "Epoch close latency percentiles over the recent-epoch window.".into(),
            kind: MetricKind::Summary,
            samples: vec![
                Sample::labelled("quantile", "0.5", seconds(stats.epoch_latency_p50)),
                Sample::labelled("quantile", "0.99", seconds(stats.epoch_latency_p99)),
            ],
        },
        Family::single(
            "market_sessions_per_second",
            "Sustained throughput: epochs closed per second of uptime.",
            MetricKind::Gauge,
            stats.sessions_per_sec,
        ),
        Family::single(
            "market_worker_threads",
            "Provider worker threads spawned at startup (m x shards).",
            MetricKind::Gauge,
            stats.worker_threads as f64,
        ),
        Family {
            name: "chaos_faults_injected_total".into(),
            help: "Faults the chaos plan injected into the persistent mesh, by kind.".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample::labelled("kind", "dropped", stats.chaos.dropped as f64),
                Sample::labelled("kind", "duplicated", stats.chaos.duplicated as f64),
                Sample::labelled("kind", "reordered", stats.chaos.reordered as f64),
                Sample::labelled("kind", "delayed", stats.chaos.delayed as f64),
                Sample::labelled("kind", "corrupted", stats.chaos.corrupted as f64),
                Sample::labelled("kind", "partitioned", stats.chaos.partitioned as f64),
            ],
        },
        Family::single(
            "market_journal_bytes_total",
            "Bytes appended to the write-ahead journal.",
            MetricKind::Counter,
            stats.journal_bytes as f64,
        ),
        Family::single(
            "market_journal_fsyncs_total",
            "Explicit journal fsyncs performed.",
            MetricKind::Counter,
            stats.journal_fsyncs as f64,
        ),
        Family::single(
            "market_journal_fsync_mean_seconds",
            "Mean journal fsync latency.",
            MetricKind::Gauge,
            seconds(stats.journal_fsync_mean),
        ),
        Family::single(
            "market_journal_fsync_max_seconds",
            "Worst journal fsync latency observed.",
            MetricKind::Gauge,
            seconds(stats.journal_fsync_max),
        ),
    ]
}

/// The mesh traffic families, merged across shards.
fn net_families(watch: &MarketWatch) -> Vec<Family> {
    let traffic = watch.traffic();
    let received_messages: u64 = traffic.per_provider.iter().map(|p| p.received_messages).sum();
    let received_bytes: u64 = traffic.per_provider.iter().map(|p| p.received_bytes).sum();
    let dropped_bytes: u64 = traffic.per_provider.iter().map(|p| p.dropped_bytes).sum();
    vec![
        Family {
            name: "net_messages_total".into(),
            help: "Mesh messages by direction, merged across shards.".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample::labelled("direction", "sent", traffic.total_messages() as f64),
                Sample::labelled("direction", "received", received_messages as f64),
                Sample::labelled("direction", "dropped", traffic.total_dropped() as f64),
            ],
        },
        Family {
            name: "net_bytes_total".into(),
            help: "Mesh payload bytes by direction, merged across shards.".into(),
            kind: MetricKind::Counter,
            samples: vec![
                Sample::labelled("direction", "sent", traffic.total_bytes() as f64),
                Sample::labelled("direction", "received", received_bytes as f64),
                Sample::labelled("direction", "dropped", dropped_bytes as f64),
            ],
        },
        Family::single(
            "net_io_threads",
            "OS threads the transport dedicates to I/O.",
            MetricKind::Gauge,
            traffic.io_threads as f64,
        ),
    ]
}

/// The flight-recorder families.
fn flight_families(watch: &MarketWatch) -> Vec<Family> {
    vec![Family::single(
        "flight_events_recorded_total",
        "Events the crash flight recorder has recorded (retention is bounded).",
        MetricKind::Counter,
        watch.flight_recorded() as f64,
    )]
}
