//! The long-lived market daemon: streaming ingestion in, epoch outcomes
//! out, one persistent mesh underneath.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use dauctioneer_core::{
    unanimous, AllocatorProgram, BatchSession, BidCollector, SessionPool, TransportKind,
};
use dauctioneer_net::{shard_for, MuxMesh, ShardedHub, TrafficMetrics, TrafficSnapshot};
use dauctioneer_types::{BidVector, Outcome, ProviderAsk, SessionId, UserBid, UserId};

use crate::config::{EpochPolicy, MarketConfig, MarketError};
use crate::ingress::{IngressQueue, Pop, Submission, SubmitError};
use crate::stats::{MarketStats, StatsShared};

/// A cloneable submitter handle onto a running market.
///
/// `Ok(())` from the submit methods means *queued for the scheduler* —
/// the verdict of the §3.2 collection rules (accepted, duplicate,
/// invalid…) is applied asynchronously when the scheduler folds the
/// submission into the open epoch, and is visible in aggregate through
/// [`MarketService::stats`]. `Err` is the backpressure surface:
/// [`SubmitError::Overloaded`] under the shed policy,
/// [`SubmitError::Closed`] once the market is shutting down.
#[derive(Debug, Clone)]
pub struct MarketHandle {
    queue: Arc<IngressQueue>,
}

impl MarketHandle {
    /// Submit one user bid for the open (or next) epoch.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the ingress queue is full under
    /// [`crate::Backpressure::Shed`]; [`SubmitError::Closed`] after
    /// shutdown began. Under [`crate::Backpressure::Block`] this call
    /// blocks instead of returning `Overloaded`.
    pub fn submit_bid(&self, user: UserId, bid: UserBid) -> Result<(), SubmitError> {
        self.queue.push(Submission::Bid { user, bid })
    }

    /// Submit a provider ask for the open (or next) epoch, overwriting
    /// the configured default for that slot.
    ///
    /// # Errors
    ///
    /// Same backpressure surface as [`MarketHandle::submit_bid`].
    pub fn submit_ask(&self, slot: usize, ask: ProviderAsk) -> Result<(), SubmitError> {
        self.queue.push(Submission::Ask { slot, ask })
    }
}

/// One closed epoch's result, delivered on the subscription channel.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Zero-based epoch counter.
    pub epoch: u64,
    /// The session id the epoch cleared under
    /// (`first_session + epoch`).
    pub session: SessionId,
    /// The session seed used (before the per-provider fan-out), so an
    /// epoch can be replayed offline as a one-shot session.
    pub seed: u64,
    /// Bids accepted into this epoch.
    pub accepted_bids: usize,
    /// The closed bid vector every provider input to bid agreement
    /// (identical across providers: one collector folds the single
    /// submission stream and every provider receives a copy).
    pub bids: BidVector,
    /// Outcome at each provider, by provider index.
    pub outcomes: Vec<Outcome>,
    /// Definition 1 over `outcomes`: the agreed pair iff every provider
    /// decided it.
    pub outcome: Outcome,
    /// Epoch close → unanimous outcome latency.
    pub latency: Duration,
}

/// The persistent mesh a market runs over, kept alive for the life of
/// the scheduler and torn down only after the pool's workers are gone.
/// The fields exist purely for their ownership (Drop order), never read.
/// The TCP flavour is **one** multiplexed mesh with a lane per shard —
/// one socket per provider pair for the whole market, however many
/// shards clear concurrently.
#[allow(dead_code)]
enum Mesh {
    InProc(ShardedHub),
    Tcp(MuxMesh),
}

/// A long-lived auction daemon: accepts streaming bid/ask submissions,
/// closes epochs under an [`EpochPolicy`], and clears each epoch as one
/// paper session over a **persistent** [`SessionPool`] — no thread or
/// transport is ever created per epoch.
///
/// ```
/// use dauctioneer_core::DoubleAuctionProgram;
/// use dauctioneer_market::{EpochPolicy, MarketConfig, MarketService};
/// use dauctioneer_types::{Bw, Money, ProviderAsk, UserBid, UserId};
/// use std::sync::Arc;
///
/// let config = MarketConfig::new(3, 1, 4, 1)
///     .with_epoch(EpochPolicy::ByCount(2))
///     .with_asks(vec![ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.0))]);
/// let mut market =
///     MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).unwrap();
/// let outcomes = market.take_outcomes().unwrap();
/// let handle = market.handle();
/// handle.submit_bid(UserId(0), UserBid::new(Money::from_f64(1.2), Bw::from_f64(0.5))).unwrap();
/// handle.submit_bid(UserId(1), UserBid::new(Money::from_f64(0.9), Bw::from_f64(0.4))).unwrap();
/// let epoch = outcomes.recv().unwrap(); // second accepted bid closed the epoch
/// assert!(!epoch.outcome.is_abort());
/// let stats = market.shutdown();
/// assert_eq!(stats.epochs_closed, 1);
/// ```
pub struct MarketService {
    queue: Arc<IngressQueue>,
    stats: Arc<StatsShared>,
    metrics: Vec<TrafficMetrics>,
    outcomes: Option<Receiver<EpochOutcome>>,
    subscribed: Arc<AtomicBool>,
    scheduler: Option<JoinHandle<()>>,
    worker_ids: Vec<Vec<ThreadId>>,
}

impl std::fmt::Debug for MarketService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarketService")
            .field("worker_threads", &self.worker_ids.iter().map(Vec::len).sum::<usize>())
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

impl MarketService {
    /// Validate the configuration, bring up the persistent mesh and
    /// worker pool, and start the epoch scheduler.
    ///
    /// # Errors
    ///
    /// [`MarketError`] for invalid knob combinations (checked before any
    /// thread or socket exists) or transport bring-up failure.
    pub fn start<P: AllocatorProgram + 'static>(
        config: MarketConfig,
        program: Arc<P>,
    ) -> Result<MarketService, MarketError> {
        config.validate()?;
        let shards = config.shards.max(1);
        let framework = config.framework();

        // The one and only transport/thread bring-up of the service's
        // life: every epoch reuses this mesh and these workers.
        let (mesh, metrics, pool) = match config.transport {
            TransportKind::InProc => {
                let mut hub = ShardedHub::new(config.m, shards, config.latency, config.seed);
                let metrics = hub.shard_metrics();
                let pool = SessionPool::new_with_faults(
                    &framework,
                    &program,
                    hub.take_endpoints(),
                    config.chaos,
                    &config.adversaries,
                );
                (Mesh::InProc(hub), metrics, pool)
            }
            TransportKind::Tcp => {
                let mut mesh = MuxMesh::loopback(config.m, shards)
                    .map_err(|e| MarketError::Transport(e.to_string()))?;
                let metrics = vec![mesh.metrics()];
                let pool = SessionPool::new_with_faults(
                    &framework,
                    &program,
                    mesh.take_lane_endpoints(),
                    config.chaos,
                    &config.adversaries,
                );
                (Mesh::Tcp(mesh), metrics, pool)
            }
        };

        let queue = Arc::new(IngressQueue::new(config.ingress_capacity, config.backpressure));
        let stats = Arc::new(StatsShared::new(pool.threads_spawned()));
        let worker_ids = pool.worker_ids().to_vec();
        let subscribed = Arc::new(AtomicBool::new(false));
        let (outcomes_tx, outcomes_rx) = unbounded();

        let scheduler = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let subscribed = Arc::clone(&subscribed);
            std::thread::Builder::new()
                .name("market-scheduler".into())
                .spawn(move || {
                    run_scheduler(config, queue, stats, pool, mesh, outcomes_tx, subscribed)
                })
                .expect("spawn market scheduler thread")
        };

        Ok(MarketService {
            queue,
            stats,
            metrics,
            outcomes: Some(outcomes_rx),
            subscribed,
            scheduler: Some(scheduler),
            worker_ids,
        })
    }

    /// A cloneable submitter handle. Any number of threads may hold one.
    pub fn handle(&self) -> MarketHandle {
        MarketHandle { queue: Arc::clone(&self.queue) }
    }

    /// Take the epoch-outcome subscription (single consumer; `None` on
    /// the second call). Publication starts with the take: epochs closed
    /// while nobody subscribes are **not** buffered (a headless,
    /// stats-only deployment would otherwise accumulate one
    /// [`EpochOutcome`] per epoch forever). Subscribe before the first
    /// submission to see every epoch. Epochs clearing concurrently on
    /// different shards may arrive slightly out of epoch order; the
    /// [`EpochOutcome::epoch`] counter disambiguates.
    pub fn take_outcomes(&mut self) -> Option<Receiver<EpochOutcome>> {
        let taken = self.outcomes.take();
        if taken.is_some() {
            self.subscribed.store(true, Ordering::Release);
        }
        taken
    }

    /// Live counters and latency percentiles.
    pub fn stats(&self) -> MarketStats {
        self.stats.snapshot(
            self.queue.shed_bids_count(),
            self.queue.shed_asks_count(),
            self.queue.enqueued_count(),
            self.queue.depth(),
        )
    }

    /// Traffic counters of the persistent mesh, cumulative since
    /// startup and merged across shards. Strictly monotonic across
    /// epochs — the observable proof that every epoch rides the same
    /// transport.
    pub fn traffic(&self) -> TrafficSnapshot {
        let mut total = TrafficSnapshot::default();
        for m in &self.metrics {
            total.merge(&m.snapshot());
        }
        total
    }

    /// Thread ids of the provider workers, recorded at spawn:
    /// `worker_ids()[s][j]` is shard `s`'s provider-`j` worker. Constant
    /// for the life of the service (and re-verified on every epoch reply
    /// by the pool).
    pub fn worker_ids(&self) -> &[Vec<ThreadId>] {
        &self.worker_ids
    }

    /// Drain, then shut down: stop accepting submissions, let the
    /// scheduler fold every already-queued submission into a final
    /// epoch, clear it, and tear the pool and mesh down. No accepted
    /// bid is lost. Returns the final stats.
    pub fn shutdown(mut self) -> MarketStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MarketService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The epoch scheduler: single consumer of the ingress queue, sole
/// driver of the worker pool.
fn run_scheduler(
    config: MarketConfig,
    queue: Arc<IngressQueue>,
    stats: Arc<StatsShared>,
    pool: SessionPool,
    mesh: Mesh,
    outcomes_tx: Sender<EpochOutcome>,
    subscribed: Arc<AtomicBool>,
) {
    // One clearer thread per shard, spawned once alongside the workers:
    // a closed epoch is handed to its session's shard-clearer, so epochs
    // hashing to different shards clear **concurrently** while the
    // scheduler keeps folding the next epoch's submissions — this is
    // what makes `shards > 1` a real throughput knob for the market, not
    // just for batches. Within one shard, its single clearer serialises
    // epochs, which the per-worker order of the control channels would
    // force anyway.
    let pool = Arc::new(pool);
    let num_shards = pool.num_shards();
    let mut clear_txs: Vec<Sender<ClearJob>> = Vec::with_capacity(num_shards);
    let mut clearers = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        // The clear queue is bounded: when a shard's clearer falls
        // CLEAR_BACKLOG epochs behind (e.g. every epoch is waiting out
        // the session deadline under fault injection), the scheduler's
        // send blocks, it stops draining ingress, and the ingress
        // policy (shed or block) engages — overload surfaces at the
        // submitters instead of accumulating as unbounded shutdown
        // debt.
        let (tx, rx) = bounded::<ClearJob>(CLEAR_BACKLOG);
        let config = config.clone();
        let stats = Arc::clone(&stats);
        let pool = Arc::clone(&pool);
        let outcomes_tx = outcomes_tx.clone();
        let subscribed = Arc::clone(&subscribed);
        clearers.push(
            std::thread::Builder::new()
                .name(format!("market-clearer-{shard}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        clear_epoch(&config, &stats, &pool, &outcomes_tx, &subscribed, shard, job);
                    }
                })
                .expect("spawn market clearer thread"),
        );
        clear_txs.push(tx);
    }
    drop(outcomes_tx); // the clearers hold the only publishing handles

    let mut epoch_index = 0u64;
    let mut draining = false;
    while !draining {
        let mut collector = fresh_collector(&config);
        let mut accepted = 0usize;
        // The staleness window starts at the first **accepted** bid
        // (asks and rejected bids keep the epoch unopened), as the
        // [`EpochPolicy`] contract states.
        let mut opened: Option<Instant> = None;

        // Fold submissions until the policy closes the epoch or the
        // queue closes (drain-then-shutdown flushes the rest). With
        // nothing accepted yet the scheduler just blocks on the queue.
        loop {
            let due = match config.epoch {
                EpochPolicy::ByCount(n) => accepted >= n,
                EpochPolicy::ByTime(d) => opened.is_some_and(|o| o.elapsed() >= d),
                EpochPolicy::Hybrid { count, max_wait } => {
                    accepted >= count || opened.is_some_and(|o| o.elapsed() >= max_wait)
                }
            };
            if due {
                break; // `due` implies at least one accepted bid
            }
            let pop = match (config.epoch, opened) {
                // Count-only closure depends solely on arrivals, and no
                // window is running before the first accepted bid: block.
                (EpochPolicy::ByCount(_), _) | (_, None) => queue.pop(),
                (EpochPolicy::ByTime(d), Some(o)) => {
                    queue.pop_timeout(d.saturating_sub(o.elapsed()))
                }
                (EpochPolicy::Hybrid { max_wait, .. }, Some(o)) => {
                    queue.pop_timeout(max_wait.saturating_sub(o.elapsed()))
                }
            };
            match pop {
                Pop::Item(s) => {
                    if apply(&config, &stats, &mut collector, s) {
                        accepted += 1;
                        opened.get_or_insert_with(Instant::now);
                    }
                }
                Pop::Timeout => {} // re-check `due`
                Pop::Closed => {
                    draining = true;
                    break;
                }
            }
        }

        if accepted > 0 {
            let session = SessionId(config.first_session + epoch_index);
            // A distinct, reproducible seed per epoch (7919 = the
            // 1000th prime, an arbitrary odd stride).
            let seed = config.seed.wrapping_add((epoch_index + 1).wrapping_mul(7919));
            let job = ClearJob {
                epoch: epoch_index,
                session,
                seed,
                accepted,
                bids: collector.close(),
                closed_at: Instant::now(),
            };
            let shard = shard_for(session, num_shards);
            // A dead clearer (panicked shard) drops this epoch's
            // outcome; the market itself keeps running.
            let _ = clear_txs[shard].send(job);
            epoch_index += 1;
        }
    }
    // Drain-then-shutdown, stage two: the queue is closed and every
    // submission is folded; now let the clearers finish every in-flight
    // epoch before any worker or mesh goes away.
    drop(clear_txs);
    for clearer in clearers {
        let _ = clearer.join();
    }
    // Workers joined (and their endpoints dropped) before the mesh goes.
    Arc::try_unwrap(pool).expect("all clearers joined").shutdown();
    drop(mesh);
}

/// Closed epochs a shard's clearer may be behind before the scheduler
/// blocks (and, transitively, the ingress queue starts filling).
const CLEAR_BACKLOG: usize = 32;

/// A closed epoch on its way to the clearing pool.
struct ClearJob {
    epoch: u64,
    session: SessionId,
    seed: u64,
    accepted: usize,
    /// The closed vector (every provider collected the same stream; m
    /// copies of this are the m per-provider `b̄ⱼ` inputs).
    bids: BidVector,
    /// When the epoch closed — the latency clock includes any wait for
    /// the shard's clearer, which is real backlog, not measurement slack.
    closed_at: Instant,
}

/// A fresh collector for a new epoch, with the configured default asks
/// attached. One collector suffices: every provider sees the identical
/// submission stream through the single ingress queue, so the m
/// per-provider `b̄ⱼ` vectors are m copies of its closed output
/// (divergence across providers is the *bidders'* move in the paper,
/// not something one service handle can express).
fn fresh_collector(config: &MarketConfig) -> BidCollector {
    let mut collector = BidCollector::new(config.n_users, config.n_asks);
    for (slot, ask) in config.asks.iter().enumerate() {
        collector.set_ask(slot, *ask);
    }
    collector
}

/// Fold one submission into the epoch's collector, updating the verdict
/// counters. Returns `true` iff a bid was accepted (the unit the epoch
/// policies count).
fn apply(
    config: &MarketConfig,
    stats: &StatsShared,
    collector: &mut BidCollector,
    submission: Submission,
) -> bool {
    use std::sync::atomic::Ordering;
    match submission {
        Submission::Bid { user, bid } => {
            let verdict = collector.submit(user, bid);
            let counter = match verdict {
                dauctioneer_core::SubmissionOutcome::Accepted => &stats.bids_accepted,
                dauctioneer_core::SubmissionOutcome::RejectedInvalid => {
                    &stats.bids_rejected_invalid
                }
                dauctioneer_core::SubmissionOutcome::RejectedDuplicate => {
                    &stats.bids_rejected_duplicate
                }
                dauctioneer_core::SubmissionOutcome::RejectedUnknownBidder
                | dauctioneer_core::SubmissionOutcome::RejectedLate => &stats.bids_rejected_unknown,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            verdict.is_accepted()
        }
        Submission::Ask { slot, ask } => {
            if slot >= config.n_asks {
                stats.asks_rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            collector.set_ask(slot, ask);
            stats.asks_set.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Clear one closed epoch as a session on this clearer's shard of the
/// persistent pool, publishing the outcome if anyone subscribed.
fn clear_epoch(
    config: &MarketConfig,
    stats: &StatsShared,
    pool: &SessionPool,
    outcomes_tx: &Sender<EpochOutcome>,
    subscribed: &AtomicBool,
    shard: usize,
    job: ClearJob,
) {
    let collected: Vec<BidVector> = vec![job.bids.clone(); config.m];
    let mut shard_specs: Vec<Vec<BatchSession>> = vec![Vec::new(); pool.num_shards()];
    shard_specs[shard].push(BatchSession { session: job.session, collected, seed: job.seed });

    let columns = pool.run_epoch(shard_specs, config.session_deadline);
    let latency = job.closed_at.elapsed();

    let outcomes: Vec<Outcome> =
        columns[shard].iter().map(|provider| provider[0].clone()).collect();
    let outcome = unanimous(outcomes.iter().map(Some));
    stats.record_epoch(latency, outcome.is_abort());
    // Publication starts with the subscription; unobserved epochs are
    // not buffered (and a dropped receiver must not kill the market).
    if subscribed.load(Ordering::Acquire) {
        let _ = outcomes_tx.send(EpochOutcome {
            epoch: job.epoch,
            session: job.session,
            seed: job.seed,
            accepted_bids: job.accepted,
            bids: job.bids,
            outcomes,
            outcome,
            latency,
        });
    }
}
