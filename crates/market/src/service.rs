//! The long-lived market daemon: streaming ingestion in, epoch outcomes
//! out, one persistent mesh underneath.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use dauctioneer_core::{
    unanimous, AllocatorProgram, BatchSession, BidCollector, SessionPool, TransportKind,
};
use dauctioneer_net::{
    shard_for, ChaosMetrics, ChaosStats, MuxMesh, ShardedHub, TrafficMetrics, TrafficSnapshot,
};
use dauctioneer_telemetry::{
    AbortReason, EpochTrace, FlightLevel, FlightRecorder, Histogram, TraceRing,
};
use dauctioneer_types::{BidVector, Outcome, ProviderAsk, SealRecord, SessionId, UserBid, UserId};

use crate::config::{EpochPolicy, MarketConfig, MarketError};
use crate::ingress::{IngressQueue, Pop, Submission, SubmitError};
use crate::journal::{Journal, JournalError};
use crate::stats::{MarketStats, StatsShared};

/// A cloneable submitter handle onto a running market.
///
/// `Ok(())` from the submit methods means *queued for the scheduler* —
/// the verdict of the §3.2 collection rules (accepted, duplicate,
/// invalid…) is applied asynchronously when the scheduler folds the
/// submission into the open epoch, and is visible in aggregate through
/// [`MarketService::stats`]. `Err` is the backpressure surface:
/// [`SubmitError::Overloaded`] under the shed policy,
/// [`SubmitError::Closed`] once the market is shutting down.
#[derive(Debug, Clone)]
pub struct MarketHandle {
    queue: Arc<IngressQueue>,
}

impl MarketHandle {
    /// Submit one user bid for the open (or next) epoch.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the ingress queue is full under
    /// [`crate::Backpressure::Shed`]; [`SubmitError::Closed`] after
    /// shutdown began. Under [`crate::Backpressure::Block`] this call
    /// blocks instead of returning `Overloaded`.
    pub fn submit_bid(&self, user: UserId, bid: UserBid) -> Result<(), SubmitError> {
        self.queue.push(Submission::Bid { user, bid })
    }

    /// Submit a provider ask for the open (or next) epoch, overwriting
    /// the configured default for that slot.
    ///
    /// # Errors
    ///
    /// Same backpressure surface as [`MarketHandle::submit_bid`].
    pub fn submit_ask(&self, slot: usize, ask: ProviderAsk) -> Result<(), SubmitError> {
        self.queue.push(Submission::Ask { slot, ask })
    }
}

/// One closed epoch's result, delivered on the subscription channel.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Zero-based epoch counter.
    pub epoch: u64,
    /// The session id the epoch cleared under
    /// (`first_session + epoch`).
    pub session: SessionId,
    /// The session seed used (before the per-provider fan-out), so an
    /// epoch can be replayed offline as a one-shot session.
    pub seed: u64,
    /// Bids accepted into this epoch.
    pub accepted_bids: usize,
    /// The closed bid vector every provider input to bid agreement
    /// (identical across providers: one collector folds the single
    /// submission stream and every provider receives a copy).
    pub bids: BidVector,
    /// Outcome at each provider, by provider index.
    pub outcomes: Vec<Outcome>,
    /// Definition 1 over `outcomes`: the agreed pair iff every provider
    /// decided it.
    pub outcome: Outcome,
    /// Epoch close → unanimous outcome latency.
    pub latency: Duration,
    /// The mechanism the epoch cleared under (the program's
    /// `AllocatorProgram::name`) — the same provenance string sealed
    /// into the journal's settlement chain.
    pub mechanism: &'static str,
}

/// What [`MarketService::start`] reconstructed from a recovered journal
/// before accepting any new submission.
///
/// Sealed epochs are restored as written; unsealed (in-flight) epochs
/// are **re-cleared** on the fresh pool with their original session ids
/// and seeds (`first_session + e`, `seed + (e+1)·7919`), so every
/// replayed [`EpochOutcome`] is byte-identical to what the crashed
/// process would have produced. Replayed outcomes are reported here
/// rather than on the subscription channel, which does not exist yet at
/// recovery time.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Epochs already sealed on the settlement chain, in chain order.
    pub sealed: Vec<SealRecord>,
    /// In-flight epochs re-cleared during recovery, in epoch order
    /// (their new seals follow the recovered chain tip).
    pub replayed: Vec<EpochOutcome>,
    /// The epoch index the resumed scheduler continues from.
    pub next_epoch: u64,
    /// Torn-tail bytes truncated from the journal file.
    pub dropped_bytes: u64,
}

/// The persistent mesh a market runs over, kept alive for the life of
/// the scheduler and torn down only after the pool's workers are gone.
/// The fields exist purely for their ownership (Drop order), never read.
/// The TCP flavour is **one** multiplexed mesh with a lane per shard —
/// one socket per provider pair for the whole market, however many
/// shards clear concurrently.
#[allow(dead_code)]
enum Mesh {
    InProc(ShardedHub),
    Tcp(MuxMesh),
}

/// The telemetry plumbing one market shares across its scheduler,
/// clearers, and watchers: the crash flight recorder, the epoch trace
/// ring, the chaos fault counters, and the fail-stop dump path.
#[derive(Debug, Clone)]
pub(crate) struct Telemetry {
    pub(crate) flight: Arc<FlightRecorder>,
    pub(crate) traces: Arc<TraceRing>,
    pub(crate) chaos: ChaosMetrics,
    dump_path: Option<PathBuf>,
}

impl Telemetry {
    fn new(config: &MarketConfig) -> Telemetry {
        Telemetry {
            flight: Arc::new(FlightRecorder::new(config.telemetry.flight_capacity)),
            traces: Arc::new(TraceRing::new(config.telemetry.trace_capacity)),
            chaos: ChaosMetrics::new(),
            dump_path: config.telemetry.flight_dump_path.clone(),
        }
    }
}

/// Attribute an aborted epoch to the configuration that forced it.
///
/// The classification is a structural argument, not guesswork: if every
/// provider decided a real outcome yet unanimity still failed, the abort
/// is ⊥-divergence by Definition 1. Otherwise at least one provider
/// pinned ⊥, and the configured disturbances own it in order of intent —
/// adversaries are targeted (they *aim* to force ⊥), chaos is
/// environmental, and a clean configuration that still timed out is a
/// plain deadline miss.
fn classify_abort(
    config: &MarketConfig,
    outcomes: &[Outcome],
    agreed: &Outcome,
) -> Option<AbortReason> {
    if !agreed.is_abort() {
        return None;
    }
    if !outcomes.is_empty() && outcomes.iter().all(|o| !o.is_abort()) {
        return Some(AbortReason::Divergence);
    }
    if !config.adversaries.is_empty() {
        return Some(AbortReason::Adversary);
    }
    if config.chaos.as_ref().is_some_and(|plan| !plan.is_benign()) {
        return Some(AbortReason::ChaosFault);
    }
    Some(AbortReason::Deadline)
}

/// The journal fail-stop path with a black box: record the error as a
/// flight event, count the abort under its own reason, write the flight
/// dump where the config asked for it, and only then die. The dump is
/// best-effort — a failing disk must not mask the original panic.
fn journal_fail_stop(
    telemetry: &Telemetry,
    stats: &StatsShared,
    what: &str,
    err: &JournalError,
) -> ! {
    stats.record_abort_reason(AbortReason::JournalFailStop);
    telemetry.flight.record(
        FlightLevel::Error,
        "journal_fail_stop",
        &[("what", what.to_string()), ("error", err.to_string())],
    );
    if let Some(path) = &telemetry.dump_path {
        let _ = std::fs::write(path, telemetry.flight.dump_json());
    }
    panic!("journal {what}: {err}");
}

/// A cloneable, read-only observation handle onto a running market: the
/// bridge between the service and a metrics registry, scrape endpoint,
/// heartbeat printer, or signal-triggered flight dump. Everything here
/// reads shared state the market updates anyway — holding a watch costs
/// the hot path nothing.
#[derive(Debug, Clone)]
pub struct MarketWatch {
    queue: Arc<IngressQueue>,
    stats: Arc<StatsShared>,
    journal: Option<Arc<Journal>>,
    metrics: Vec<TrafficMetrics>,
    telemetry: Telemetry,
}

impl MarketWatch {
    /// Live counters and latency percentiles (same as
    /// [`MarketService::stats`]).
    pub fn stats(&self) -> MarketStats {
        self.stats.snapshot(
            self.queue.shed_bids_count(),
            self.queue.shed_asks_count(),
            self.queue.enqueued_count(),
            self.queue.depth(),
            self.journal.as_deref(),
            self.telemetry.chaos.snapshot(),
        )
    }

    /// Traffic counters of the persistent mesh, merged across shards.
    pub fn traffic(&self) -> TrafficSnapshot {
        let mut total = TrafficSnapshot::default();
        for m in &self.metrics {
            total.merge(&m.snapshot());
        }
        total
    }

    /// Chaos fault-injection counters, cumulative since startup.
    pub fn chaos(&self) -> ChaosStats {
        self.telemetry.chaos.snapshot()
    }

    /// The live epoch close-latency histogram (log2 buckets, in µs).
    /// The clone shares the underlying cells — it keeps counting.
    pub fn close_latency_histogram(&self) -> Histogram {
        self.stats.close_latency_us.clone()
    }

    /// Dump the crash flight recorder as JSON (the `dauction
    /// flight-dump` input format).
    pub fn flight_dump_json(&self) -> String {
        self.telemetry.flight.dump_json()
    }

    /// Events recorded by the flight recorder so far.
    pub fn flight_recorded(&self) -> u64 {
        self.telemetry.flight.recorded()
    }

    /// Snapshot the retained per-epoch traces, oldest first.
    pub fn recent_traces(&self) -> Vec<EpochTrace> {
        self.telemetry.traces.recent()
    }

    /// Record a custom flight event (e.g. the daemon noting "serve
    /// started" or "shutdown requested" so operator actions land in the
    /// same black box as market events).
    pub fn record_flight(&self, level: FlightLevel, kind: &str, fields: &[(&str, String)]) {
        self.telemetry.flight.record(level, kind, fields);
    }
}

/// A long-lived auction daemon: accepts streaming bid/ask submissions,
/// closes epochs under an [`EpochPolicy`], and clears each epoch as one
/// paper session over a **persistent** [`SessionPool`] — no thread or
/// transport is ever created per epoch.
///
/// ```
/// use dauctioneer_core::DoubleAuctionProgram;
/// use dauctioneer_market::{EpochPolicy, MarketConfig, MarketService};
/// use dauctioneer_types::{Bw, Money, ProviderAsk, UserBid, UserId};
/// use std::sync::Arc;
///
/// let config = MarketConfig::new(3, 1, 4, 1)
///     .with_epoch(EpochPolicy::ByCount(2))
///     .with_asks(vec![ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.0))]);
/// let mut market =
///     MarketService::start(config, Arc::new(DoubleAuctionProgram::new())).unwrap();
/// let outcomes = market.take_outcomes().unwrap();
/// let handle = market.handle();
/// handle.submit_bid(UserId(0), UserBid::new(Money::from_f64(1.2), Bw::from_f64(0.5))).unwrap();
/// handle.submit_bid(UserId(1), UserBid::new(Money::from_f64(0.9), Bw::from_f64(0.4))).unwrap();
/// let epoch = outcomes.recv().unwrap(); // second accepted bid closed the epoch
/// assert!(!epoch.outcome.is_abort());
/// let stats = market.shutdown();
/// assert_eq!(stats.epochs_closed, 1);
/// ```
pub struct MarketService {
    queue: Arc<IngressQueue>,
    stats: Arc<StatsShared>,
    metrics: Vec<TrafficMetrics>,
    outcomes: Option<Receiver<EpochOutcome>>,
    subscribed: Arc<AtomicBool>,
    scheduler: Option<JoinHandle<()>>,
    worker_ids: Vec<Vec<ThreadId>>,
    journal: Option<Arc<Journal>>,
    recovery: Option<RecoveryReport>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for MarketService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarketService")
            .field("worker_threads", &self.worker_ids.iter().map(Vec::len).sum::<usize>())
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

impl MarketService {
    /// Validate the configuration, bring up the persistent mesh and
    /// worker pool, and start the epoch scheduler.
    ///
    /// # Errors
    ///
    /// [`MarketError`] for invalid knob combinations (checked before any
    /// thread or socket exists) or transport bring-up failure.
    pub fn start<P: AllocatorProgram + 'static>(
        config: MarketConfig,
        program: Arc<P>,
    ) -> Result<MarketService, MarketError> {
        config.validate()?;
        let shards = config.shards.max(1);
        let framework = config.framework();
        let telemetry = Telemetry::new(&config);
        // Provenance: stamped on every outcome and sealed into the
        // journal's settlement chain.
        let mechanism = program.name();

        // Durability comes up before the mesh: a market that cannot
        // journal must not open for business at all. Recovery reads the
        // journal's longest valid prefix, truncates the torn tail, and
        // classifies every unsealed epoch — the re-clearing itself waits
        // until the pool exists.
        let (journal, recovered) = match &config.journal {
            None => (None, None),
            Some(jc) if jc.recover => {
                let (journal, log) =
                    Journal::recover(&jc.path, jc.fsync).map_err(MarketError::Journal)?;
                // A journal sealed under a different mechanism must not
                // be extended: re-clearing its in-flight epochs would
                // produce outcomes the crashed process could never have
                // sealed, forking the settlement history.
                if let Some(journaled) = &log.mechanism {
                    if journaled != mechanism {
                        return Err(MarketError::MechanismMismatch {
                            journaled: journaled.clone(),
                            configured: mechanism.to_string(),
                        });
                    }
                }
                (Some(Arc::new(journal)), Some(log))
            }
            Some(jc) => {
                let journal = Journal::create(&jc.path, jc.fsync).map_err(MarketError::Journal)?;
                (Some(Arc::new(journal)), None)
            }
        };

        // The one and only transport/thread bring-up of the service's
        // life: every epoch reuses this mesh and these workers.
        let (mesh, metrics, pool) = match config.transport {
            TransportKind::InProc => {
                let mut hub = ShardedHub::new(config.m, shards, config.latency, config.seed);
                let metrics = hub.shard_metrics();
                let pool = SessionPool::new_with_faults_metrics(
                    &framework,
                    &program,
                    hub.take_endpoints(),
                    config.chaos,
                    &config.adversaries,
                    Some(telemetry.chaos.clone()),
                );
                (Mesh::InProc(hub), metrics, pool)
            }
            TransportKind::Tcp => {
                let mut mesh = MuxMesh::loopback(config.m, shards)
                    .map_err(|e| MarketError::Transport(e.to_string()))?;
                let metrics = vec![mesh.metrics()];
                let pool = SessionPool::new_with_faults_metrics(
                    &framework,
                    &program,
                    mesh.take_lane_endpoints(),
                    config.chaos,
                    &config.adversaries,
                    Some(telemetry.chaos.clone()),
                );
                (Mesh::Tcp(mesh), metrics, pool)
            }
        };

        let queue = Arc::new(IngressQueue::new(config.ingress_capacity, config.backpressure));
        let stats = Arc::new(StatsShared::new(pool.threads_spawned(), mechanism));
        let worker_ids = pool.worker_ids().to_vec();
        let subscribed = Arc::new(AtomicBool::new(false));
        let (outcomes_tx, outcomes_rx) = unbounded();

        // Replay any recovered in-flight epochs on the fresh pool,
        // synchronously and in epoch order, before the scheduler (or any
        // submitter) exists. Each re-clear reuses the epoch's original
        // session and seed, so the outcome is byte-identical to what the
        // crashed process would have produced; the new seals extend the
        // recovered settlement chain.
        let (recovery, start_epoch, pending_asks) = match recovered {
            None => (None, 0, Vec::new()),
            Some(log) => {
                let journal = journal.as_ref().expect("recovery implies a journal");
                let mut replayed = Vec::with_capacity(log.in_flight.len());
                for in_flight in &log.in_flight {
                    let mut collector = fresh_collector(&config);
                    for (slot, ask) in &in_flight.asks {
                        if (*slot as usize) < config.n_asks {
                            collector.set_ask(*slot as usize, *ask);
                        }
                    }
                    let mut accepted = 0usize;
                    for (user, bid) in &in_flight.bids {
                        // Journaled bids were accepted once, so the
                        // collector rules accept the same stream again.
                        if collector.submit(*user, *bid).is_accepted() {
                            accepted += 1;
                        }
                    }
                    let session = SessionId(config.first_session + in_flight.epoch);
                    let seed = config.seed.wrapping_add((in_flight.epoch + 1).wrapping_mul(7919));
                    let bids = collector.close();
                    let closed_at = Instant::now();
                    let shard = shard_for(session, pool.num_shards());
                    let (outcomes, outcome, _timings) =
                        run_clear(&config, &pool, shard, session, seed, &bids);
                    let latency = closed_at.elapsed();
                    journal
                        .append_seal(
                            in_flight.epoch,
                            session,
                            seed,
                            accepted as u64,
                            bids.clone(),
                            mechanism,
                            outcome.clone(),
                        )
                        .map_err(MarketError::Journal)?;
                    stats.record_epoch(latency, classify_abort(&config, &outcomes, &outcome));
                    telemetry.flight.record(
                        FlightLevel::Info,
                        "recovery_replay",
                        &[
                            ("epoch", in_flight.epoch.to_string()),
                            ("accepted", accepted.to_string()),
                            ("aborted", outcome.is_abort().to_string()),
                        ],
                    );
                    replayed.push(EpochOutcome {
                        epoch: in_flight.epoch,
                        session,
                        seed,
                        accepted_bids: accepted,
                        bids,
                        outcomes,
                        outcome,
                        latency,
                        mechanism,
                    });
                }
                telemetry.flight.record(
                    FlightLevel::Info,
                    "recovery_complete",
                    &[
                        ("sealed", log.sealed.len().to_string()),
                        ("replayed", replayed.len().to_string()),
                        ("dropped_bytes", log.dropped_bytes.to_string()),
                    ],
                );
                let report = RecoveryReport {
                    sealed: log.sealed,
                    replayed,
                    next_epoch: log.next_epoch,
                    dropped_bytes: log.dropped_bytes,
                };
                (Some(report), log.next_epoch, log.pending_asks)
            }
        };

        let scheduler = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let subscribed = Arc::clone(&subscribed);
            let journal = journal.clone();
            let telemetry = telemetry.clone();
            std::thread::Builder::new()
                .name("market-scheduler".into())
                .spawn(move || {
                    run_scheduler(
                        config,
                        queue,
                        stats,
                        pool,
                        mesh,
                        outcomes_tx,
                        subscribed,
                        journal,
                        telemetry,
                        start_epoch,
                        pending_asks,
                        mechanism,
                    )
                })
                .expect("spawn market scheduler thread")
        };

        Ok(MarketService {
            queue,
            stats,
            metrics,
            outcomes: Some(outcomes_rx),
            subscribed,
            scheduler: Some(scheduler),
            worker_ids,
            journal,
            recovery,
            telemetry,
        })
    }

    /// [`MarketService::start`] with the program built from
    /// `config.mechanism` — the spec-driven entry point behind the
    /// `--mechanism` flag. The program sells [`market_capacities`](crate::market_capacities):
    /// the configured default asks' capacities, or one unit per
    /// provider when no asks are configured.
    ///
    /// # Errors
    ///
    /// Everything [`MarketService::start`] rejects, plus
    /// [`MarketError::MechanismMismatch`] when recovering a journal
    /// sealed under a different mechanism.
    pub fn start_from_spec(config: MarketConfig) -> Result<MarketService, MarketError> {
        let program = Arc::new(crate::mechanism::build_program(&config));
        MarketService::start(config, program)
    }

    /// A cloneable submitter handle. Any number of threads may hold one.
    pub fn handle(&self) -> MarketHandle {
        MarketHandle { queue: Arc::clone(&self.queue) }
    }

    /// Take the epoch-outcome subscription (single consumer; `None` on
    /// the second call). Publication starts with the take: epochs closed
    /// while nobody subscribes are **not** buffered (a headless,
    /// stats-only deployment would otherwise accumulate one
    /// [`EpochOutcome`] per epoch forever). Subscribe before the first
    /// submission to see every epoch. Epochs clearing concurrently on
    /// different shards may arrive slightly out of epoch order; the
    /// [`EpochOutcome::epoch`] counter disambiguates.
    pub fn take_outcomes(&mut self) -> Option<Receiver<EpochOutcome>> {
        let taken = self.outcomes.take();
        if taken.is_some() {
            self.subscribed.store(true, Ordering::Release);
        }
        taken
    }

    /// Live counters and latency percentiles.
    pub fn stats(&self) -> MarketStats {
        self.stats.snapshot(
            self.queue.shed_bids_count(),
            self.queue.shed_asks_count(),
            self.queue.enqueued_count(),
            self.queue.depth(),
            self.journal.as_deref(),
            self.telemetry.chaos.snapshot(),
        )
    }

    /// A cloneable, read-only observation handle: everything a metrics
    /// registry, heartbeat printer, or flight-dump trigger needs,
    /// without keeping a borrow of the service alive.
    pub fn watch(&self) -> MarketWatch {
        MarketWatch {
            queue: Arc::clone(&self.queue),
            stats: Arc::clone(&self.stats),
            journal: self.journal.clone(),
            metrics: self.metrics.clone(),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Chaos fault-injection counters, cumulative since startup.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.telemetry.chaos.snapshot()
    }

    /// Dump the crash flight recorder as JSON (the `dauction
    /// flight-dump` input format).
    pub fn flight_dump_json(&self) -> String {
        self.telemetry.flight.dump_json()
    }

    /// Snapshot the retained per-epoch traces, oldest first.
    pub fn recent_traces(&self) -> Vec<EpochTrace> {
        self.telemetry.traces.recent()
    }

    /// What recovery reconstructed from the journal, if this service was
    /// started with [`crate::JournalConfig::recovering`]. `None` for
    /// fresh (or journal-less) services.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The write-ahead journal, if the service runs with one.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_deref()
    }

    /// Traffic counters of the persistent mesh, cumulative since
    /// startup and merged across shards. Strictly monotonic across
    /// epochs — the observable proof that every epoch rides the same
    /// transport.
    pub fn traffic(&self) -> TrafficSnapshot {
        let mut total = TrafficSnapshot::default();
        for m in &self.metrics {
            total.merge(&m.snapshot());
        }
        total
    }

    /// Thread ids of the provider workers, recorded at spawn:
    /// `worker_ids()[s][j]` is shard `s`'s provider-`j` worker. Constant
    /// for the life of the service (and re-verified on every epoch reply
    /// by the pool).
    pub fn worker_ids(&self) -> &[Vec<ThreadId>] {
        &self.worker_ids
    }

    /// Drain, then shut down: stop accepting submissions, let the
    /// scheduler fold every already-queued submission into a final
    /// epoch, clear it, and tear the pool and mesh down. No accepted
    /// bid is lost. Returns the final stats.
    pub fn shutdown(mut self) -> MarketStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MarketService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The epoch scheduler: single consumer of the ingress queue, sole
/// driver of the worker pool.
#[allow(clippy::too_many_arguments)] // one call site; the args are the service's wiring
fn run_scheduler(
    config: MarketConfig,
    queue: Arc<IngressQueue>,
    stats: Arc<StatsShared>,
    pool: SessionPool,
    mesh: Mesh,
    outcomes_tx: Sender<EpochOutcome>,
    subscribed: Arc<AtomicBool>,
    journal: Option<Arc<Journal>>,
    telemetry: Telemetry,
    start_epoch: u64,
    pending_asks: Vec<(u64, ProviderAsk)>,
    mechanism: &'static str,
) {
    // One clearer thread per shard, spawned once alongside the workers:
    // a closed epoch is handed to its session's shard-clearer, so epochs
    // hashing to different shards clear **concurrently** while the
    // scheduler keeps folding the next epoch's submissions — this is
    // what makes `shards > 1` a real throughput knob for the market, not
    // just for batches. Within one shard, its single clearer serialises
    // epochs, which the per-worker order of the control channels would
    // force anyway.
    let pool = Arc::new(pool);
    let num_shards = pool.num_shards();
    let mut clear_txs: Vec<Sender<ClearJob>> = Vec::with_capacity(num_shards);
    let mut clearers = Vec::with_capacity(num_shards);
    for shard in 0..num_shards {
        // The clear queue is bounded: when a shard's clearer falls
        // CLEAR_BACKLOG epochs behind (e.g. every epoch is waiting out
        // the session deadline under fault injection), the scheduler's
        // send blocks, it stops draining ingress, and the ingress
        // policy (shed or block) engages — overload surfaces at the
        // submitters instead of accumulating as unbounded shutdown
        // debt.
        let (tx, rx) = bounded::<ClearJob>(CLEAR_BACKLOG);
        let config = config.clone();
        let stats = Arc::clone(&stats);
        let pool = Arc::clone(&pool);
        let outcomes_tx = outcomes_tx.clone();
        let subscribed = Arc::clone(&subscribed);
        let journal = journal.clone();
        let telemetry = telemetry.clone();
        clearers.push(
            std::thread::Builder::new()
                .name(format!("market-clearer-{shard}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        clear_epoch(
                            &config,
                            &stats,
                            &pool,
                            &outcomes_tx,
                            &subscribed,
                            journal.as_deref(),
                            &telemetry,
                            shard,
                            job,
                            mechanism,
                        );
                    }
                })
                .expect("spawn market clearer thread"),
        );
        clear_txs.push(tx);
    }
    drop(outcomes_tx); // the clearers hold the only publishing handles

    let mut epoch_index = start_epoch;
    // Streamed asks a recovered journal attributed to the resumed
    // scheduler's first epoch: already journaled under `start_epoch`, so
    // they pre-populate the first collector without being re-journaled.
    let mut pending_asks = pending_asks;
    let mut draining = false;
    while !draining {
        let mut collector = fresh_collector(&config);
        for (slot, ask) in pending_asks.drain(..) {
            if (slot as usize) < config.n_asks {
                collector.set_ask(slot as usize, ask);
            }
        }
        let mut accepted = 0usize;
        // The staleness window starts at the first **accepted** bid
        // (asks and rejected bids keep the epoch unopened), as the
        // [`EpochPolicy`] contract states.
        let mut opened: Option<Instant> = None;
        // The trace origin is the queue-push instant of the epoch's
        // opening bid: the ingress span is the queue wait the epoch's
        // first bidder actually experienced.
        let mut origin: Option<Instant> = None;
        let mut ingress_wait = Duration::ZERO;

        // Fold submissions until the policy closes the epoch or the
        // queue closes (drain-then-shutdown flushes the rest). With
        // nothing accepted yet the scheduler just blocks on the queue.
        loop {
            let due = match config.epoch {
                EpochPolicy::ByCount(n) => accepted >= n,
                EpochPolicy::ByTime(d) => opened.is_some_and(|o| o.elapsed() >= d),
                EpochPolicy::Hybrid { count, max_wait } => {
                    accepted >= count || opened.is_some_and(|o| o.elapsed() >= max_wait)
                }
            };
            if due {
                break; // `due` implies at least one accepted bid
            }
            let pop = match (config.epoch, opened) {
                // Count-only closure depends solely on arrivals, and no
                // window is running before the first accepted bid: block.
                (EpochPolicy::ByCount(_), _) | (_, None) => queue.pop(),
                (EpochPolicy::ByTime(d), Some(o)) => {
                    queue.pop_timeout(d.saturating_sub(o.elapsed()))
                }
                (EpochPolicy::Hybrid { max_wait, .. }, Some(o)) => {
                    queue.pop_timeout(max_wait.saturating_sub(o.elapsed()))
                }
            };
            match pop {
                Pop::Item(queued) => {
                    let pushed_at = queued.at;
                    let was_accepted = apply(
                        &config,
                        &stats,
                        journal.as_deref(),
                        &telemetry,
                        epoch_index,
                        &mut collector,
                        queued.submission,
                    );
                    if was_accepted {
                        accepted += 1;
                        if opened.is_none() {
                            let now = Instant::now();
                            opened = Some(now);
                            origin = Some(pushed_at);
                            ingress_wait = now.saturating_duration_since(pushed_at);
                        }
                    }
                }
                Pop::Timeout => {} // re-check `due`
                Pop::Closed => {
                    draining = true;
                    break;
                }
            }
        }

        if accepted > 0 {
            let session = SessionId(config.first_session + epoch_index);
            // A distinct, reproducible seed per epoch (7919 = the
            // 1000th prime, an arbitrary odd stride).
            let seed = config.seed.wrapping_add((epoch_index + 1).wrapping_mul(7919));
            let opened_at = opened.expect("accepted > 0 implies an opened epoch");
            let origin = origin.unwrap_or(opened_at);
            let closed_at = Instant::now();
            let trace = (config.telemetry.trace_capacity > 0).then(|| {
                let mut trace = EpochTrace::new(epoch_index, session.0, seed);
                trace.span("ingress", Duration::ZERO, ingress_wait);
                trace.span(
                    "collect",
                    opened_at.saturating_duration_since(origin),
                    closed_at.saturating_duration_since(opened_at),
                );
                trace
            });
            let job = ClearJob {
                epoch: epoch_index,
                session,
                seed,
                accepted,
                bids: collector.close(),
                closed_at,
                origin,
                trace,
            };
            let shard = shard_for(session, num_shards);
            // A dead clearer (panicked shard) drops this epoch's
            // outcome; the market itself keeps running.
            let _ = clear_txs[shard].send(job);
            epoch_index += 1;
        }
    }
    // Drain-then-shutdown, stage two: the queue is closed and every
    // submission is folded; now let the clearers finish every in-flight
    // epoch before any worker or mesh goes away.
    drop(clear_txs);
    for clearer in clearers {
        let _ = clearer.join();
    }
    // A deliberate exit must leave nothing in the page cache: whatever
    // the policy deferred is synced now, once, before the process can
    // end. (Crash exits are the journal's whole point and skip this.)
    if let Some(journal) = &journal {
        if let Err(err) = journal.sync() {
            journal_fail_stop(&telemetry, &stats, "final sync", &err);
        }
    }
    // Workers joined (and their endpoints dropped) before the mesh goes.
    Arc::try_unwrap(pool).expect("all clearers joined").shutdown();
    drop(mesh);
}

/// Closed epochs a shard's clearer may be behind before the scheduler
/// blocks (and, transitively, the ingress queue starts filling).
const CLEAR_BACKLOG: usize = 32;

/// A closed epoch on its way to the clearing pool.
struct ClearJob {
    epoch: u64,
    session: SessionId,
    seed: u64,
    accepted: usize,
    /// The closed vector (every provider collected the same stream; m
    /// copies of this are the m per-provider `b̄ⱼ` inputs).
    bids: BidVector,
    /// When the epoch closed — the latency clock includes any wait for
    /// the shard's clearer, which is real backlog, not measurement slack.
    closed_at: Instant,
    /// The trace origin: the queue-push instant of the opening bid
    /// (equal to the open instant when no stamp was available).
    origin: Instant,
    /// The epoch's span tree so far (ingress + collect recorded by the
    /// scheduler); the clearer appends dispatch/session/seal and
    /// finishes it. `None` when tracing is disabled.
    trace: Option<EpochTrace>,
}

/// A fresh collector for a new epoch, with the configured default asks
/// attached. One collector suffices: every provider sees the identical
/// submission stream through the single ingress queue, so the m
/// per-provider `b̄ⱼ` vectors are m copies of its closed output
/// (divergence across providers is the *bidders'* move in the paper,
/// not something one service handle can express).
fn fresh_collector(config: &MarketConfig) -> BidCollector {
    let mut collector = BidCollector::new(config.n_users, config.n_asks);
    for (slot, ask) in config.asks.iter().enumerate() {
        collector.set_ask(slot, *ask);
    }
    collector
}

/// Fold one submission into the epoch's collector, updating the verdict
/// counters. Returns `true` iff a bid was accepted (the unit the epoch
/// policies count).
///
/// This is where the write-ahead discipline lives: an accepted bid is
/// journaled — and made durable per the fsync policy — *before* its
/// verdict is counted or can trigger an epoch close. A journal append
/// failure is fail-stop by design ([`journal_fail_stop`]): a durable
/// market must not acknowledge what it cannot journal — but it does
/// leave a flight dump behind on the way down.
fn apply(
    config: &MarketConfig,
    stats: &StatsShared,
    journal: Option<&Journal>,
    telemetry: &Telemetry,
    epoch: u64,
    collector: &mut BidCollector,
    submission: Submission,
) -> bool {
    use std::sync::atomic::Ordering;
    match submission {
        Submission::Bid { user, bid } => {
            let verdict = collector.submit(user, bid);
            if verdict.is_accepted() {
                if let Some(journal) = journal {
                    if let Err(err) = journal.append_accepted(epoch, user, bid) {
                        journal_fail_stop(telemetry, stats, "accepted bid", &err);
                    }
                }
            }
            let counter = match verdict {
                dauctioneer_core::SubmissionOutcome::Accepted => &stats.bids_accepted,
                dauctioneer_core::SubmissionOutcome::RejectedInvalid => {
                    &stats.bids_rejected_invalid
                }
                dauctioneer_core::SubmissionOutcome::RejectedDuplicate => {
                    &stats.bids_rejected_duplicate
                }
                dauctioneer_core::SubmissionOutcome::RejectedUnknownBidder
                | dauctioneer_core::SubmissionOutcome::RejectedLate => &stats.bids_rejected_unknown,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            verdict.is_accepted()
        }
        Submission::Ask { slot, ask } => {
            if slot >= config.n_asks {
                stats.asks_rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if let Some(journal) = journal {
                if let Err(err) = journal.append_ask(epoch, slot as u64, ask) {
                    journal_fail_stop(telemetry, stats, "ask", &err);
                }
            }
            collector.set_ask(slot, ask);
            stats.asks_set.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Run one closed epoch as a session on `shard` of the persistent pool
/// and reduce the per-provider columns to the unanimous Definition-1
/// outcome. Shared by the clearer threads and recovery's synchronous
/// re-clears — one code path is what makes "replayed outcomes are
/// byte-identical" structural rather than coincidental.
///
/// The third element is each provider's decide offset within the drive
/// (`None` for a provider that never decided — a ⊥ column), feeding the
/// per-session child spans of the epoch trace.
#[allow(clippy::type_complexity)] // the tuple IS the contract: columns, agreement, timings
fn run_clear(
    config: &MarketConfig,
    pool: &SessionPool,
    shard: usize,
    session: SessionId,
    seed: u64,
    bids: &BidVector,
) -> (Vec<Outcome>, Outcome, Vec<Option<Duration>>) {
    let collected: Vec<BidVector> = vec![bids.clone(); config.m];
    let mut shard_specs: Vec<Vec<BatchSession>> = vec![Vec::new(); pool.num_shards()];
    shard_specs[shard].push(BatchSession { session, collected, seed });

    let (columns, decided) = pool.run_epoch_traced(shard_specs, config.session_deadline);
    let outcomes: Vec<Outcome> =
        columns[shard].iter().map(|provider| provider[0].clone()).collect();
    let timings: Vec<Option<Duration>> =
        decided[shard].iter().map(|provider| provider[0]).collect();
    let outcome = unanimous(outcomes.iter().map(Some));
    (outcomes, outcome, timings)
}

/// Clear one closed epoch as a session on this clearer's shard of the
/// persistent pool, sealing it onto the settlement chain (when
/// journaling) and publishing the outcome if anyone subscribed.
#[allow(clippy::too_many_arguments)] // one call site; the args are the clearer's wiring
fn clear_epoch(
    config: &MarketConfig,
    stats: &StatsShared,
    pool: &SessionPool,
    outcomes_tx: &Sender<EpochOutcome>,
    subscribed: &AtomicBool,
    journal: Option<&Journal>,
    telemetry: &Telemetry,
    shard: usize,
    job: ClearJob,
    mechanism: &'static str,
) {
    let drive_started = Instant::now();
    let (outcomes, outcome, timings) =
        run_clear(config, pool, shard, job.session, job.seed, &job.bids);
    let drive_duration = drive_started.elapsed();
    let reason = classify_abort(config, &outcomes, &outcome);
    let latency = job.closed_at.elapsed();
    // The seal is appended before the epoch is counted or published —
    // the same write-ahead ordering the accepted bids get. Concurrent
    // clearers serialize on the journal lock; the chain order is the
    // append order.
    let seal_started = Instant::now();
    if let Some(journal) = journal {
        if let Err(err) = journal.append_seal(
            job.epoch,
            job.session,
            job.seed,
            job.accepted as u64,
            job.bids.clone(),
            mechanism,
            outcome.clone(),
        ) {
            journal_fail_stop(telemetry, stats, "epoch seal", &err);
        }
    }
    let seal_duration = seal_started.elapsed();
    stats.record_epoch(latency, reason);
    match reason {
        None => telemetry.flight.record(
            FlightLevel::Info,
            "epoch_cleared",
            &[
                ("epoch", job.epoch.to_string()),
                ("accepted", job.accepted.to_string()),
                ("latency_us", latency.as_micros().to_string()),
            ],
        ),
        Some(reason) => telemetry.flight.record(
            FlightLevel::Warn,
            "epoch_aborted",
            &[
                ("epoch", job.epoch.to_string()),
                ("reason", reason.label().to_string()),
                ("latency_us", latency.as_micros().to_string()),
            ],
        ),
    }
    if let Some(mut trace) = job.trace {
        // All span offsets are relative to the trace origin (the opening
        // bid's queue-push instant); the dispatch span covers the clear
        // backlog wait plus the drive itself.
        let dispatch_start = drive_started.saturating_duration_since(job.origin);
        let dispatch = trace.span("dispatch", dispatch_start, drive_duration);
        for (j, decided) in timings.iter().enumerate() {
            // A provider that never decided spans the whole drive: its
            // worker held the session until the deadline pinned ⊥.
            trace.span_under(
                dispatch,
                &format!("session[{j}]"),
                dispatch_start,
                decided.unwrap_or(drive_duration),
            );
        }
        trace.span("seal", dispatch_start + drive_duration, seal_duration);
        trace.finish(job.origin.elapsed(), reason);
        telemetry.traces.push(trace);
    }
    // Publication starts with the subscription; unobserved epochs are
    // not buffered (and a dropped receiver must not kill the market).
    if subscribed.load(Ordering::Acquire) {
        let _ = outcomes_tx.send(EpochOutcome {
            epoch: job.epoch,
            session: job.session,
            seed: job.seed,
            accepted_bids: job.accepted,
            bids: job.bids,
            outcomes,
            outcome,
            latency,
            mechanism,
        });
    }
}
