//! The write-ahead epoch journal: crash durability for the continuous
//! market, plus the hash-chained settlement log that makes its history
//! auditable offline.
//!
//! # On-disk format
//!
//! The journal is an append-only file of length-prefixed records, framed
//! with the exact same builders the TCP mesh uses
//! ([`dauctioneer_net::wire_encode_into`] / [`dauctioneer_net::wire_decode`]):
//!
//! ```text
//! [len: u32 LE] [record: JournalRecord codec bytes] [crc32(record): u32 LE]
//! ```
//!
//! where `len` covers the record bytes *and* the trailing CRC-32 (IEEE
//! polynomial, implemented in this module — the workspace carries no
//! checksum dependency). A crash can tear the final record at any byte;
//! the CRC plus the length prefix let recovery find the **longest valid
//! prefix** and drop the torn tail, never a phantom record.
//!
//! # Write-ahead discipline
//!
//! The scheduler appends an [`JournalRecord::Accepted`] record — and
//! makes it durable per the [`FsyncPolicy`] — *before* the acceptance
//! becomes observable anywhere (stats counters, epoch-close triggers).
//! A journal write failure is therefore fail-stop by design: a durable
//! market must not acknowledge what it cannot journal.
//!
//! # Settlement chain
//!
//! Every cleared epoch is sealed by a [`SealRecord`] whose digest is a
//! [`dauctioneer_crypto::chain_link`] over the seal's content and the
//! previous seal's digest. [`verify_log`] walks the chain offline and
//! names the first seal at which a tampered history diverges.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use dauctioneer_crypto::{Digest, SettlementChain};
use dauctioneer_net::{wire_decode, wire_encode_into};
use dauctioneer_types::{
    BidVector, Decode, Encode, JournalRecord, Outcome, ProviderAsk, SealRecord, SessionId, UserBid,
    UserId,
};

/// When an appended record is pushed through the page cache to the disk.
///
/// The policy is the journal's one durability/throughput trade-off knob:
/// `Always` loses nothing on power failure, `EveryN` bounds the loss to
/// the last `n − 1` acknowledged records, `Never` leaves flushing to the
/// OS (a `kill -9` of the process alone still loses nothing — the page
/// cache survives the process — but a machine crash may).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: nothing acknowledged is ever lost.
    Always,
    /// `fdatasync` after every `n` records.
    EveryN(u32),
    /// Never sync explicitly; the OS flushes on its own schedule.
    Never,
}

impl FromStr for FsyncPolicy {
    type Err = JournalError;

    fn from_str(s: &str) -> Result<FsyncPolicy, JournalError> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(JournalError::BadFsyncPolicy(s.to_string())),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Why a journal could not be created, recovered, or verified.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `--journal` names an existing file but `--recover` was not given;
    /// refusing to clobber a journal is the safe default.
    AlreadyExists(PathBuf),
    /// An fsync policy string was not `always`, `never`, or `every=N`
    /// with `N ≥ 1`.
    BadFsyncPolicy(String),
    /// The settlement chain diverged: the journal was tampered with.
    Tampered(Divergence),
    /// Strict verification found bytes after the last valid record (a
    /// torn tail — run recovery before verifying, or the file is
    /// corrupt beyond its tail).
    TornTail {
        /// Bytes of valid records.
        valid_bytes: u64,
        /// Trailing bytes that decode to no valid record.
        dropped_bytes: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, source } => {
                write!(f, "journal {op} failed for {}: {source}", path.display())
            }
            JournalError::AlreadyExists(path) => {
                write!(f, "journal {} already exists; pass --recover to resume it", path.display())
            }
            JournalError::BadFsyncPolicy(s) => {
                write!(f, "fsync policy must be always, never, or every=N (got {s:?})")
            }
            JournalError::Tampered(d) => write!(f, "settlement chain diverged: {d}"),
            JournalError::TornTail { valid_bytes, dropped_bytes } => write!(
                f,
                "torn tail: {dropped_bytes} trailing bytes after {valid_bytes} valid bytes"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The first point at which a settlement log stops matching the history
/// its chain commits to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based index of the offending seal in file order.
    pub seal_index: u64,
    /// The epoch the offending seal claims to settle.
    pub epoch: u64,
    /// What failed at that seal.
    pub fault: ChainFault,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seal #{} (epoch {}): {}", self.seal_index, self.epoch, self.fault)
    }
}

/// What a chain walk found wrong at one seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainFault {
    /// `prev` does not match the digest of the seal before it — a seal
    /// was removed, inserted, or reordered.
    PrevMismatch,
    /// The recorded digest does not match `chain_link(prev, content)` —
    /// the seal's content was modified after sealing.
    DigestMismatch,
    /// The seal's accepted-bid count disagrees with the `Accepted`
    /// records journaled for its epoch.
    CountMismatch {
        /// Accepted bids the seal claims.
        sealed: u64,
        /// `Accepted` records present in the journal.
        journaled: u64,
    },
    /// The seal names a different mechanism than the seals before it: a
    /// journal must never be re-cleared under a different allocation
    /// algorithm, or the "byte-identical replay" guarantee is void.
    MechanismMismatch,
}

impl fmt::Display for ChainFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainFault::PrevMismatch => {
                write!(f, "prev digest does not chain to the preceding seal")
            }
            ChainFault::DigestMismatch => write!(f, "digest does not match the sealed content"),
            ChainFault::CountMismatch { sealed, journaled } => {
                write!(f, "seal claims {sealed} accepted bids but the journal holds {journaled}")
            }
            ChainFault::MechanismMismatch => {
                write!(f, "seal names a different mechanism than the preceding seals")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), table-driven, no dependency.
// ---------------------------------------------------------------------------

/// The byte-reversed IEEE polynomial used by zlib, PNG, and Ethernet.
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC32_POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the per-record corruption check of the
/// journal file. Catches torn writes and random bit rot; *deliberate*
/// tampering is the settlement chain's job.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Scanning (pure — shared by recovery, verification, and the proptests)
// ---------------------------------------------------------------------------

/// The outcome of scanning a journal byte stream: every record of the
/// longest valid prefix, and how much tail was dropped to get there.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Records of the longest valid prefix, in file order.
    pub records: Vec<JournalRecord>,
    /// Length of the valid prefix in bytes.
    pub valid_bytes: u64,
    /// Trailing bytes past the valid prefix (0 for a cleanly closed
    /// journal).
    pub dropped_bytes: u64,
}

/// Scan a journal byte stream for its longest valid prefix.
///
/// Stops — without error — at the first truncated frame, oversized
/// length prefix, CRC mismatch, or undecodable record: everything from
/// that point on is a torn tail. This is deliberately infallible; a
/// journal that a crash tore mid-record must recover, not panic.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut records = Vec::new();
    let mut offset = 0usize;
    // A decode of `Ok(None)` (truncated mid-header or mid-payload) or
    // `Err` (length prefix past the frame cap — a torn length field)
    // ends the valid prefix: the tail from here on is dropped whole.
    while let Ok(Some((payload, consumed))) = wire_decode(&bytes[offset..]) {
        let Some(body_len) = payload.len().checked_sub(4) else { break };
        let (body, crc_bytes) = payload.split_at(body_len);
        if crc32(body) != u32::from_le_bytes(crc_bytes.try_into().expect("4 crc bytes")) {
            break;
        }
        let Ok(record) = JournalRecord::decode_all(body) else { break };
        records.push(record);
        offset += consumed;
    }
    ScanResult { records, valid_bytes: offset as u64, dropped_bytes: (bytes.len() - offset) as u64 }
}

/// Read and [`scan`] a journal file.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be opened or read. Torn tails
/// are *not* errors — they are reported in the [`ScanResult`].
pub fn read_journal(path: &Path) -> Result<ScanResult, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|source| JournalError::Io { op: "read", path: path.to_path_buf(), source })?;
    Ok(scan(&bytes))
}

// ---------------------------------------------------------------------------
// Offline verification
// ---------------------------------------------------------------------------

/// What [`verify_log`] certifies about an intact journal.
#[derive(Debug, Clone)]
pub struct VerifySummary {
    /// Total records in the journal.
    pub records: u64,
    /// Sealed epochs on the settlement chain.
    pub seals: u64,
    /// `Accepted` records across all epochs.
    pub accepted: u64,
    /// The mechanism every seal was cleared under (`None` for a journal
    /// with no seals yet). Verification refuses mixed-mechanism logs.
    pub mechanism: Option<String>,
    /// The chain tip after the last seal.
    pub tip: Digest,
}

/// Walk a journal's settlement chain offline and certify it.
///
/// Strict where [`scan`] is lenient: a torn tail, a broken chain link, a
/// modified seal, or a seal whose accepted count disagrees with the
/// journaled `Accepted` records is an error naming the first divergence.
///
/// # Errors
///
/// [`JournalError::Io`] on filesystem failure, [`JournalError::TornTail`]
/// on trailing garbage, [`JournalError::Tampered`] with the first
/// divergent seal on any chain break.
pub fn verify_log(path: &Path) -> Result<VerifySummary, JournalError> {
    let result = read_journal(path)?;
    if result.dropped_bytes > 0 {
        return Err(JournalError::TornTail {
            valid_bytes: result.valid_bytes,
            dropped_bytes: result.dropped_bytes,
        });
    }
    let mut chain = SettlementChain::new();
    let mut accepted_per_epoch: BTreeMap<u64, u64> = BTreeMap::new();
    let mut accepted = 0u64;
    let mut seals = 0u64;
    let mut mechanism: Option<String> = None;
    for record in &result.records {
        match record {
            JournalRecord::Accepted { epoch, .. } => {
                *accepted_per_epoch.entry(*epoch).or_insert(0) += 1;
                accepted += 1;
            }
            JournalRecord::AskSet { .. } => {}
            JournalRecord::Sealed(seal) => {
                let diverged = |fault| {
                    JournalError::Tampered(Divergence {
                        seal_index: seals,
                        epoch: seal.epoch,
                        fault,
                    })
                };
                if &seal.prev != chain.tip().as_bytes() {
                    return Err(diverged(ChainFault::PrevMismatch));
                }
                let digest = chain.extend(&seal.content_bytes());
                if &seal.digest != digest.as_bytes() {
                    return Err(diverged(ChainFault::DigestMismatch));
                }
                let journaled = accepted_per_epoch.get(&seal.epoch).copied().unwrap_or(0);
                if seal.accepted != journaled {
                    return Err(diverged(ChainFault::CountMismatch {
                        sealed: seal.accepted,
                        journaled,
                    }));
                }
                match &mechanism {
                    None => mechanism = Some(seal.mechanism.clone()),
                    Some(m) if *m != seal.mechanism => {
                        return Err(diverged(ChainFault::MechanismMismatch))
                    }
                    Some(_) => {}
                }
                seals += 1;
            }
        }
    }
    Ok(VerifySummary {
        records: result.records.len() as u64,
        seals,
        accepted,
        mechanism,
        tip: chain.tip(),
    })
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// An epoch the journal holds records for but no seal — it was open (or
/// closed but not yet cleared) when the process died, and recovery must
/// re-clear it deterministically.
#[derive(Debug, Clone)]
pub struct InFlightEpoch {
    /// The epoch index.
    pub epoch: u64,
    /// Accepted bids, in acceptance order.
    pub bids: Vec<(UserId, UserBid)>,
    /// Streamed asks, in application order (last write per slot wins).
    pub asks: Vec<(u64, ProviderAsk)>,
}

/// Everything recovery learned from the journal, before any re-clearing.
#[derive(Debug, Clone)]
pub struct RecoveredLog {
    /// Seals already on the settlement chain, in chain order.
    pub sealed: Vec<SealRecord>,
    /// Epochs with accepted bids but no seal, in epoch order; the
    /// resumed service re-clears each with its original session and
    /// seed.
    pub in_flight: Vec<InFlightEpoch>,
    /// Streamed asks of a trailing zero-bid epoch: nothing to re-clear
    /// (no bid was accepted), but the asks must pre-populate the resumed
    /// scheduler's first collector, which reuses that epoch's index.
    pub pending_asks: Vec<(u64, ProviderAsk)>,
    /// The epoch index the resumed scheduler starts at.
    pub next_epoch: u64,
    /// The mechanism the sealed history was cleared under (`None` when
    /// no epoch was sealed yet). The resumed service must refuse to
    /// re-clear under a *different* mechanism — replays would no longer
    /// be byte-identical to the crashed process's outcomes.
    pub mechanism: Option<String>,
    /// Torn-tail bytes dropped (and truncated from the file) to reach
    /// the longest valid prefix.
    pub dropped_bytes: u64,
}

/// The append half of the journal: one file, one settlement chain, one
/// fsync policy, shared by the scheduler (accepted bids, asks) and the
/// per-shard clearers (seals) behind a mutex — the lock order *is* the
/// chain order.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
    path: PathBuf,
    bytes_written: AtomicU64,
    fsyncs: AtomicU64,
    fsync_nanos: AtomicU64,
    fsync_nanos_max: AtomicU64,
}

#[derive(Debug)]
struct JournalInner {
    file: File,
    /// Warm scratch for frame assembly; one `write_all` per record.
    buf: BytesMut,
    chain: SettlementChain,
    policy: FsyncPolicy,
    since_sync: u32,
}

impl Journal {
    /// Create a fresh journal at `path`.
    ///
    /// # Errors
    ///
    /// [`JournalError::AlreadyExists`] if the path already holds a file
    /// (recover it instead of silently clobbering history);
    /// [`JournalError::Io`] on filesystem failure.
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<Journal, JournalError> {
        let file = match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                return Err(JournalError::AlreadyExists(path.to_path_buf()))
            }
            Err(source) => {
                return Err(JournalError::Io { op: "create", path: path.to_path_buf(), source })
            }
        };
        Ok(Journal::from_parts(path, file, SettlementChain::new(), policy))
    }

    /// Recover the journal at `path`: find the longest valid prefix,
    /// truncate the torn tail away, verify and resume the settlement
    /// chain, and classify every unsealed epoch for re-clearing.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failure and
    /// [`JournalError::Tampered`] if the surviving prefix fails chain
    /// verification — a torn *tail* is expected crash damage, a broken
    /// *chain* is tampering, and recovery must not resume a forged
    /// history.
    pub fn recover(
        path: &Path,
        policy: FsyncPolicy,
    ) -> Result<(Journal, RecoveredLog), JournalError> {
        let result = read_journal(path)?;

        // Verify the surviving prefix before trusting it. The chain walk
        // below re-derives every digest, so a recovered-then-reverified
        // journal is accepted by construction.
        let mut chain = SettlementChain::new();
        let mut sealed = Vec::new();
        let mut drafts: BTreeMap<u64, InFlightEpoch> = BTreeMap::new();
        let mut max_epoch: Option<u64> = None;
        let mut mechanism: Option<String> = None;
        for record in &result.records {
            match record {
                JournalRecord::Accepted { epoch, user, bid } => {
                    max_epoch = Some(max_epoch.map_or(*epoch, |m| m.max(*epoch)));
                    drafts
                        .entry(*epoch)
                        .or_insert_with(|| InFlightEpoch {
                            epoch: *epoch,
                            bids: Vec::new(),
                            asks: Vec::new(),
                        })
                        .bids
                        .push((*user, *bid));
                }
                JournalRecord::AskSet { epoch, slot, ask } => {
                    max_epoch = Some(max_epoch.map_or(*epoch, |m| m.max(*epoch)));
                    drafts
                        .entry(*epoch)
                        .or_insert_with(|| InFlightEpoch {
                            epoch: *epoch,
                            bids: Vec::new(),
                            asks: Vec::new(),
                        })
                        .asks
                        .push((*slot, *ask));
                }
                JournalRecord::Sealed(seal) => {
                    max_epoch = Some(max_epoch.map_or(seal.epoch, |m| m.max(seal.epoch)));
                    let diverged = |fault| {
                        JournalError::Tampered(Divergence {
                            seal_index: sealed.len() as u64,
                            epoch: seal.epoch,
                            fault,
                        })
                    };
                    if &seal.prev != chain.tip().as_bytes() {
                        return Err(diverged(ChainFault::PrevMismatch));
                    }
                    let digest = chain.extend(&seal.content_bytes());
                    if &seal.digest != digest.as_bytes() {
                        return Err(diverged(ChainFault::DigestMismatch));
                    }
                    match &mechanism {
                        None => mechanism = Some(seal.mechanism.clone()),
                        Some(m) if *m != seal.mechanism => {
                            return Err(diverged(ChainFault::MechanismMismatch))
                        }
                        Some(_) => {}
                    }
                    drafts.remove(&seal.epoch);
                    sealed.push(seal.clone());
                }
            }
        }

        // A trailing draft with no accepted bid was the open collector:
        // nothing to re-clear, but its asks (and its epoch index) carry
        // over into the resumed scheduler. Any other zero-bid draft can
        // only arise from a torn tail that ate the bids; re-clearing
        // nothing for it is exactly "the longest valid prefix".
        let mut pending_asks = Vec::new();
        let mut next_epoch = max_epoch.map_or(0, |m| m + 1);
        if let Some((&last, draft)) = drafts.iter().next_back() {
            if draft.bids.is_empty() && Some(last) == max_epoch {
                pending_asks = draft.asks.clone();
                next_epoch = last;
                drafts.remove(&last);
            }
        }
        let in_flight: Vec<InFlightEpoch> =
            drafts.into_values().filter(|d| !d.bids.is_empty()).collect();

        // Truncate the torn tail so the file *is* its valid prefix, then
        // append from there — `verify_log` accepts every recovered
        // journal because recovery leaves nothing it would reject.
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|source| JournalError::Io { op: "open", path: path.to_path_buf(), source })?;
        file.set_len(result.valid_bytes)
            .and_then(|()| file.seek(SeekFrom::End(0)).map(|_| ()))
            .map_err(|source| JournalError::Io {
                op: "truncate",
                path: path.to_path_buf(),
                source,
            })?;

        let journal = Journal::from_parts(path, file, chain, policy);
        journal.bytes_written.store(result.valid_bytes, Ordering::Relaxed);
        let log = RecoveredLog {
            sealed,
            in_flight,
            pending_asks,
            next_epoch,
            mechanism,
            dropped_bytes: result.dropped_bytes,
        };
        Ok((journal, log))
    }

    fn from_parts(path: &Path, file: File, chain: SettlementChain, policy: FsyncPolicy) -> Journal {
        Journal {
            inner: Mutex::new(JournalInner {
                file,
                buf: BytesMut::with_capacity(4096),
                chain,
                policy,
                since_sync: 0,
            }),
            path: path.to_path_buf(),
            bytes_written: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsync_nanos: AtomicU64::new(0),
            fsync_nanos_max: AtomicU64::new(0),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journal an accepted bid — the write-ahead half of the ack.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append or sync fails; the caller must
    /// treat that as fail-stop, not as a recoverable verdict.
    pub fn append_accepted(
        &self,
        epoch: u64,
        user: UserId,
        bid: UserBid,
    ) -> Result<(), JournalError> {
        self.append(&JournalRecord::Accepted { epoch, user, bid })
    }

    /// Journal a streamed ask applied to the open epoch.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] as for [`Journal::append_accepted`].
    pub fn append_ask(&self, epoch: u64, slot: u64, ask: ProviderAsk) -> Result<(), JournalError> {
        self.append(&JournalRecord::AskSet { epoch, slot, ask })
    }

    /// Seal a cleared epoch onto the settlement chain and journal the
    /// seal. The chain digest is computed under the journal lock, so
    /// concurrent clearers serialize and the chain order is the append
    /// order. `mechanism` is the name of the allocation program that
    /// cleared the epoch — signed content, so a journal cannot silently
    /// change mechanism mid-history. Returns the seal as written.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] as for [`Journal::append_accepted`].
    #[allow(clippy::too_many_arguments)] // the seal's content fields, in seal order
    pub fn append_seal(
        &self,
        epoch: u64,
        session: SessionId,
        seed: u64,
        accepted: u64,
        bids: BidVector,
        mechanism: &str,
        outcome: Outcome,
    ) -> Result<SealRecord, JournalError> {
        let mut inner = self.inner.lock().expect("journal lock");
        let prev = *inner.chain.tip().as_bytes();
        let mut seal = SealRecord {
            epoch,
            session,
            seed,
            accepted,
            bids,
            mechanism: mechanism.to_string(),
            outcome,
            prev,
            digest: [0u8; 32],
        };
        seal.digest = *inner.chain.extend(&seal.content_bytes()).as_bytes();
        let record = JournalRecord::Sealed(seal.clone());
        self.write_locked(&mut inner, &record)?;
        Ok(seal)
    }

    /// Force an fsync regardless of policy (drain-then-shutdown's last
    /// act: nothing acknowledged may sit only in the page cache when the
    /// process exits on purpose).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the sync fails.
    pub fn sync(&self) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().expect("journal lock");
        self.sync_locked(&mut inner)
    }

    /// Total bytes appended (including a recovered valid prefix).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Explicit fsyncs performed so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Mean fsync latency (zero before the first sync).
    pub fn fsync_mean(&self) -> Duration {
        let n = self.fsyncs.load(Ordering::Relaxed);
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.fsync_nanos.load(Ordering::Relaxed) / n)
    }

    /// Worst fsync latency observed.
    pub fn fsync_max(&self) -> Duration {
        Duration::from_nanos(self.fsync_nanos_max.load(Ordering::Relaxed))
    }

    /// The settlement chain tip (genesis until the first seal).
    pub fn chain_tip(&self) -> Digest {
        self.inner.lock().expect("journal lock").chain.tip()
    }

    fn append(&self, record: &JournalRecord) -> Result<(), JournalError> {
        let mut inner = self.inner.lock().expect("journal lock");
        self.write_locked(&mut inner, record)
    }

    fn write_locked(
        &self,
        inner: &mut JournalInner,
        record: &JournalRecord,
    ) -> Result<(), JournalError> {
        let body = record.encode_to_bytes();
        let mut payload = Vec::with_capacity(body.len() + 4);
        payload.extend_from_slice(&body);
        payload.extend_from_slice(&crc32(&body).to_le_bytes());
        let JournalInner { file, buf, .. } = &mut *inner;
        buf.clear();
        wire_encode_into(&payload, buf);
        file.write_all(buf).map_err(|source| JournalError::Io {
            op: "append",
            path: self.path.clone(),
            source,
        })?;
        self.bytes_written.fetch_add(inner.buf.len() as u64, Ordering::Relaxed);
        let due = match inner.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryN(n) => {
                inner.since_sync += 1;
                inner.since_sync >= n
            }
        };
        if due {
            self.sync_locked(inner)?;
        }
        Ok(())
    }

    fn sync_locked(&self, inner: &mut JournalInner) -> Result<(), JournalError> {
        let started = Instant::now();
        inner.file.sync_data().map_err(|source| JournalError::Io {
            op: "sync",
            path: self.path.clone(),
            source,
        })?;
        let nanos = started.elapsed().as_nanos() as u64;
        inner.since_sync = 0;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.fsync_nanos_max.fetch_max(nanos, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dauctioneer_types::{Bw, Money};

    fn bid(v: f64) -> UserBid {
        UserBid::new(Money::from_f64(v), Bw::from_f64(0.5))
    }

    fn ask() -> ProviderAsk {
        ProviderAsk::new(Money::from_f64(0.2), Bw::from_f64(2.0))
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dauction-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!("every=8".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryN(8));
        for bad in ["", "sometimes", "every=0", "every=x"] {
            assert!(bad.parse::<FsyncPolicy>().is_err(), "{bad:?}");
        }
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every=8");
    }

    #[test]
    fn append_scan_roundtrip_and_torn_tail() {
        let path = temp_path("roundtrip");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        journal.append_accepted(0, UserId(1), bid(1.1)).unwrap();
        journal.append_ask(0, 0, ask()).unwrap();
        journal.append_accepted(0, UserId(2), bid(0.9)).unwrap();
        drop(journal);

        let full = std::fs::read(&path).unwrap();
        let result = scan(&full);
        assert_eq!(result.records.len(), 3);
        assert_eq!(result.dropped_bytes, 0);
        assert_eq!(result.valid_bytes, full.len() as u64);

        // Any truncation yields a (possibly shorter) valid prefix, never
        // a panic or a phantom record.
        for cut in 0..full.len() {
            let torn = scan(&full[..cut]);
            assert!(torn.records.len() <= 3);
            assert_eq!(torn.valid_bytes + torn.dropped_bytes, cut as u64);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let path = temp_path("clobber");
        let _journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        assert!(matches!(
            Journal::create(&path, FsyncPolicy::Never),
            Err(JournalError::AlreadyExists(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_truncates_torn_tail_and_resumes_chain() {
        let path = temp_path("recover");
        let journal = Journal::create(&path, FsyncPolicy::Always).unwrap();
        journal.append_accepted(0, UserId(0), bid(1.2)).unwrap();
        let seal = journal
            .append_seal(
                0,
                SessionId(100),
                7919,
                1,
                BidVector::builder(1, 0).user_bid(0, bid(1.2)).build(),
                "double-auction",
                Outcome::Abort,
            )
            .unwrap();
        journal.append_accepted(1, UserId(1), bid(0.8)).unwrap();
        drop(journal);

        // Tear the tail mid-record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (recovered, log) = Journal::recover(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(log.sealed, vec![seal.clone()]);
        assert!(log.in_flight.is_empty(), "the torn accepted record is gone");
        assert_eq!(log.next_epoch, 1);
        assert!(log.dropped_bytes > 0);
        assert_eq!(recovered.chain_tip().as_bytes(), &seal.digest);
        // The file now *is* the valid prefix: verification accepts it.
        drop(recovered);
        let summary = verify_log(&path).unwrap();
        assert_eq!(summary.seals, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_classifies_in_flight_and_pending() {
        let path = temp_path("inflight");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        journal.append_accepted(0, UserId(0), bid(1.0)).unwrap();
        journal.append_accepted(0, UserId(1), bid(1.1)).unwrap();
        journal.append_ask(1, 0, ask()).unwrap();
        drop(journal);

        let (_journal, log) = Journal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(log.sealed.len(), 0);
        assert_eq!(log.in_flight.len(), 1);
        assert_eq!(log.in_flight[0].epoch, 0);
        assert_eq!(log.in_flight[0].bids.len(), 2);
        assert_eq!(log.pending_asks, vec![(0, ask())]);
        assert_eq!(log.next_epoch, 1, "the zero-bid trailing epoch keeps its index");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_seal_is_localized_by_the_chain() {
        let path = temp_path("tamper");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for epoch in 0..3u64 {
            journal.append_accepted(epoch, UserId(0), bid(1.0)).unwrap();
            journal
                .append_seal(
                    epoch,
                    SessionId(100 + epoch),
                    epoch,
                    1,
                    BidVector::builder(1, 0).user_bid(0, bid(1.0)).build(),
                    "double-auction",
                    Outcome::Abort,
                )
                .unwrap();
        }
        drop(journal);
        assert_eq!(verify_log(&path).unwrap().seals, 3);

        // Flip one bit inside seal #1's seed field and re-fix the CRC so
        // only the *chain* can catch it.
        let bytes = std::fs::read(&path).unwrap();
        let result = scan(&bytes);
        let mut records = result.records;
        let JournalRecord::Sealed(seal) = &mut records[3] else { panic!("expected seal") };
        assert_eq!(seal.epoch, 1);
        seal.seed ^= 1;
        let path2 = temp_path("tamper-rewritten");
        let rewritten = Journal::create(&path2, FsyncPolicy::Never).unwrap();
        for record in &records {
            rewritten.append(record).unwrap();
        }
        drop(rewritten);

        match verify_log(&path2) {
            Err(JournalError::Tampered(d)) => {
                assert_eq!(d.seal_index, 1);
                assert_eq!(d.epoch, 1);
                assert_eq!(d.fault, ChainFault::DigestMismatch);
            }
            other => panic!("expected divergence at seal 1, got {other:?}"),
        }
        // Recovery refuses a forged history outright.
        assert!(matches!(
            Journal::recover(&path2, FsyncPolicy::Never),
            Err(JournalError::Tampered(_))
        ));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn mixed_mechanism_journals_are_refused() {
        // A journal whose seals name different mechanisms is not a valid
        // history — neither verification nor recovery may accept it,
        // even though every individual chain link is intact.
        let path = temp_path("mixed-mechanism");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for (epoch, mechanism) in [(0u64, "double-auction"), (1u64, "combinatorial-auction")] {
            journal.append_accepted(epoch, UserId(0), bid(1.0)).unwrap();
            journal
                .append_seal(
                    epoch,
                    SessionId(100 + epoch),
                    epoch,
                    1,
                    BidVector::builder(1, 0).user_bid(0, bid(1.0)).build(),
                    mechanism,
                    Outcome::Abort,
                )
                .unwrap();
        }
        drop(journal);

        match verify_log(&path) {
            Err(JournalError::Tampered(d)) => {
                assert_eq!(d.seal_index, 1);
                assert_eq!(d.fault, ChainFault::MechanismMismatch);
            }
            other => panic!("expected mechanism mismatch at seal 1, got {other:?}"),
        }
        assert!(matches!(
            Journal::recover(&path, FsyncPolicy::Never),
            Err(JournalError::Tampered(Divergence { fault: ChainFault::MechanismMismatch, .. }))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn consistent_mechanism_is_certified_and_recovered() {
        let path = temp_path("mechanism-consistent");
        let journal = Journal::create(&path, FsyncPolicy::Never).unwrap();
        for epoch in 0..2u64 {
            journal.append_accepted(epoch, UserId(0), bid(1.0)).unwrap();
            journal
                .append_seal(
                    epoch,
                    SessionId(epoch),
                    epoch,
                    1,
                    BidVector::builder(1, 0).user_bid(0, bid(1.0)).build(),
                    "divisible-auction",
                    Outcome::Abort,
                )
                .unwrap();
        }
        drop(journal);
        let summary = verify_log(&path).unwrap();
        assert_eq!(summary.mechanism.as_deref(), Some("divisible-auction"));
        let (_journal, log) = Journal::recover(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(log.mechanism.as_deref(), Some("divisible-auction"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_policy_batches_syncs() {
        let path = temp_path("everyn");
        let journal = Journal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u32 {
            journal.append_accepted(0, UserId(i), bid(1.0)).unwrap();
        }
        assert_eq!(journal.fsyncs(), 2, "7 records at every=3 → 2 syncs");
        journal.sync().unwrap();
        assert_eq!(journal.fsyncs(), 3);
        assert!(journal.bytes_written() > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
