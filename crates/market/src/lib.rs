//! # Continuous market service
//!
//! Everything below `dauctioneer-market` in the stack is **one-shot**: a
//! pre-assembled bid vector goes into `run_session`/`run_batch`, one
//! report comes out, and every thread dies. The paper's §6 experiments
//! are closed-world in exactly this way. A deployed marketplace is not:
//! bids arrive whenever bidders feel like it, and the *system* must
//! decide when an auction happens — the open-world, digital-ecosystem
//! regime of Marzolla et al.'s distributed auctions and the continuous
//! large-scale trading of Gao et al.'s double-auction deployments.
//!
//! This crate is that regime as a subsystem:
//!
//! * [`MarketService`] — the long-lived daemon. At startup it brings up
//!   a persistent provider mesh (in-process [`ShardedHub`] or real TCP,
//!   sharded either way) and a [`SessionPool`] of worker threads —
//!   **once** — and then clears epoch after epoch over them. No thread
//!   or transport is created per epoch; session-tag framing isolates
//!   consecutive epochs sharing the mesh exactly as it isolates
//!   concurrent sessions sharing a batch.
//! * [`MarketHandle`] — the cloneable ingestion surface: any number of
//!   submitter threads stream bids/asks into a **bounded** ingress
//!   queue with an explicit [`Backpressure`] policy (shed-and-count or
//!   block) — overload is an accounted-for state, not an accident.
//! * [`EpochPolicy`] — when the open epoch closes: after `n` accepted
//!   bids, after a time window, or hybrid (whichever first). A closed
//!   epoch becomes one paper session: the epoch's [`BidCollector`]
//!   closes into the `b̄ⱼ` vectors (one copy per provider), a per-shard
//!   clearer drives bid agreement → validation → allocation on the
//!   pool — concurrently across shards — and the unanimous
//!   Definition-1 outcome is published on the subscription channel as an
//!   [`EpochOutcome`].
//! * [`MarketStats`] — live epochs/sec, accept/shed/reject counters,
//!   and epoch-close latency percentiles; throughput here is a
//!   steady-state property, not a batch artifact.
//! * Drain-then-shutdown: [`MarketService::shutdown`] stops intake,
//!   folds every already-queued submission into a final epoch, clears
//!   it, and only then tears the pool and mesh down — no accepted bid
//!   is ever lost.
//! * Observability — [`MarketService::watch`] hands out a cloneable
//!   [`MarketWatch`], and [`register_market_metrics`] re-exports every
//!   market/net/chaos/journal counter as Prometheus families on a
//!   [`dauctioneer_telemetry::Registry`]. Every aborted epoch carries an
//!   [`AbortReason`], per-epoch span trees land in a bounded trace ring,
//!   and a crash flight recorder keeps the last N structured events for
//!   post-mortem dumps.
//! * [`journal`] — crash durability: a write-ahead epoch journal
//!   (accepted bids hit the disk *before* they count), a hash-chained
//!   settlement log sealing every cleared epoch, and deterministic
//!   recovery ([`JournalConfig::recovering`]) that replays unsealed
//!   epochs to byte-identical outcomes after a `kill -9`.
//! * [`mechanism`] — runtime mechanism selection: the
//!   [`MechanismSpec`] grammar (`double | standard[,eps=..] |
//!   combinatorial[,budget=..] | divisible[,beta=..]`) parsed from the
//!   `--mechanism` flag, the factory building the matching allocator
//!   program, and mechanism provenance threaded through every
//!   [`EpochOutcome`] and journal seal — recovery refuses to re-clear
//!   a journal under a different mechanism than it was sealed with.
//!
//! [`ShardedHub`]: dauctioneer_net::ShardedHub
//! [`SessionPool`]: dauctioneer_core::SessionPool
//! [`BidCollector`]: dauctioneer_core::BidCollector

#![deny(missing_docs)]

pub mod cluster;
pub mod config;
pub mod ingress;
pub mod journal;
pub mod mechanism;
pub mod service;
pub mod stats;
pub mod telemetry;

pub use cluster::{
    run_provider, ClusterConfig, ClusterEpoch, ClusterError, ClusterReport, ControlMsg,
    Coordinator, PeerInfo, ProviderConfig, ProviderReport,
};
pub use config::{
    Backpressure, EpochPolicy, JournalConfig, MarketConfig, MarketError, TelemetryConfig,
};
pub use dauctioneer_telemetry::AbortReason;
pub use ingress::{Submission, SubmitError};
pub use journal::{
    crc32, read_journal, scan, verify_log, ChainFault, Divergence, FsyncPolicy, InFlightEpoch,
    Journal, JournalError, RecoveredLog, ScanResult, VerifySummary,
};
pub use mechanism::{build_program, market_capacities, MechanismSpec, DEFAULT_EPSILON_PPM};
pub use service::{EpochOutcome, MarketHandle, MarketService, MarketWatch, RecoveryReport};
pub use stats::{AbortBreakdown, MarketStats};
pub use telemetry::{register_liveness_metrics, register_market_metrics};
