//! # Multi-process deployment: coordinator and provider roles
//!
//! Everything else in this repo runs an m-provider market inside one OS
//! process (threads over in-process channels, or TCP over loopback
//! within a single address space). This module is the real deployment
//! shape the paper assumes: **m + 1 processes** — one coordinator and
//! m providers — over real sockets, surviving the death of any
//! provider process.
//!
//! ## Topology
//!
//! ```text
//!                 control plane (this module)
//!          ┌──────────── coordinator ───────────┐
//!          │ Join/JoinAck · Ping · WorkOrder ·  │
//!          │ OutcomeReport · Shutdown           │
//!      ┌───┴───┐        ┌───────┐           ┌───┴───┐
//!      │ prov 0│━━━━━━━━│ prov 1│━━━━━━━━━━━│ prov 2│
//!      └───────┘        └───────┘           └───────┘
//!            provider mesh (MuxEndpoint, per epoch)
//! ```
//!
//! The coordinator is **not** part of the provider mesh — it owns the
//! market loop (epoch identity, bid generation, the journal, the
//! settlement chain) and one control TCP connection per provider. The
//! providers run the paper's protocol among themselves over a fresh
//! [`MuxEndpoint`] mesh per epoch, brought up with the incarnation
//! hello so frames from a killed provider's previous life are rejected
//! at admission.
//!
//! ## Liveness and rejoin
//!
//! A [`LivenessTracker`] on the coordinator drives the
//! `Up → Suspect → Down → Reconnecting` machine from control-plane
//! heartbeats ([`ControlMsg::Ping`]) and connection resets. An epoch
//! that touches a `Down` peer is aborted with `AbortReason::PeerDown`
//! **immediately** — the close latency during an outage is bounded by
//! detection, not by the session deadline. A restarted provider
//! redials the coordinator under a jittered-exponential [`Backoff`]
//! with a bounded budget, is handed a fresh incarnation number in its
//! [`ControlMsg::JoinAck`], and rejoins at the next epoch boundary:
//! the next [`ControlMsg::WorkOrder`] simply includes it again.
//!
//! Every epoch — cleared or aborted — is sealed onto the journal's
//! hash-chained settlement log, so `dauction verify-log` certifies the
//! coordinator's history across any number of provider deaths.

use std::io::{self, Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dauctioneer_core::{drive, unanimous, DoubleAuctionProgram, FrameworkConfig, SessionEngine};
use dauctioneer_net::{
    Backoff, LivenessConfig, LivenessMetrics, LivenessTracker, MeshOptions, MuxEndpoint, PeerState,
};
use dauctioneer_telemetry::AbortReason;
use dauctioneer_types::{
    BidVector, Bw, CodecError, Decode, Encode, Money, Outcome, ProviderAsk, ProviderId, Reader,
    SessionId, UserBid, Writer, MICRO,
};

use crate::journal::{FsyncPolicy, Journal, JournalError};

/// Hard ceiling on a control-plane frame (a [`ControlMsg::WorkOrder`]
/// carries a whole bid vector; 16 MiB is orders of magnitude above any
/// real epoch).
pub const MAX_CONTROL_FRAME: usize = 16 << 20;

/// A peer as named in a [`ControlMsg::WorkOrder`]: identity, where its
/// mesh listener lives *this* life, and the incarnation the mesh hello
/// must present/honour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    /// Provider id in `0..m`.
    pub id: u32,
    /// The peer's mesh listener address for its current life.
    pub mesh_addr: String,
    /// The peer's current incarnation (the admission floor for hellos
    /// from it).
    pub incarnation: u32,
}

impl Encode for PeerInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id);
        self.mesh_addr.encode(w);
        w.put_u32(self.incarnation);
    }
}

impl Decode for PeerInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PeerInfo { id: r.get_u32()?, mesh_addr: String::decode(r)?, incarnation: r.get_u32()? })
    }
}

/// The control-plane protocol between coordinator and providers, sent
/// as `[len: u32 LE][types-codec payload]` frames over one TCP
/// connection per provider.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Provider → coordinator, first frame of a connection: "provider
    /// `id` is alive; my mesh listener for this life is `mesh_addr`".
    Join {
        /// The provider's id in `0..m`.
        id: u32,
        /// The mesh listener address this life of the provider bound.
        mesh_addr: String,
    },
    /// Coordinator → provider, answer to [`ControlMsg::Join`]: the
    /// incarnation number of this life plus the cluster parameters, so
    /// the provider CLI needs nothing beyond `--id` and `--join`.
    JoinAck {
        /// The strictly-increasing incarnation assigned to this life.
        incarnation: u32,
        /// Providers in the market.
        m: u32,
        /// Tolerated coalition size.
        k: u32,
        /// User slots per epoch.
        n_users: u32,
        /// Per-session drive deadline, milliseconds.
        deadline_ms: u64,
        /// Per-epoch mesh bring-up budget, milliseconds.
        mesh_budget_ms: u64,
    },
    /// Provider → coordinator heartbeat; feeds the failure detector.
    Ping,
    /// Coordinator → provider: clear one epoch. Carries everything the
    /// session needs — identity, the full bid vector, and the current
    /// life (address + incarnation) of every peer.
    WorkOrder {
        /// Epoch number.
        epoch: u64,
        /// The session id this epoch clears under.
        session: u64,
        /// Epoch seed (providers fan it out per the engine's rule).
        seed: u64,
        /// The collected bid vector every provider clears.
        bids: BidVector,
        /// Current life of every provider, in id order.
        peers: Vec<PeerInfo>,
    },
    /// Provider → coordinator: this provider's decided outcome for
    /// `epoch` (⊥ included).
    OutcomeReport {
        /// Epoch the outcome belongs to.
        epoch: u64,
        /// Reporting provider.
        id: u32,
        /// The decided outcome.
        outcome: Outcome,
    },
    /// Coordinator → provider: the run is over; exit cleanly.
    Shutdown,
}

impl Encode for ControlMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            ControlMsg::Join { id, mesh_addr } => {
                w.put_u8(0);
                w.put_u32(*id);
                mesh_addr.encode(w);
            }
            ControlMsg::JoinAck { incarnation, m, k, n_users, deadline_ms, mesh_budget_ms } => {
                w.put_u8(1);
                w.put_u32(*incarnation);
                w.put_u32(*m);
                w.put_u32(*k);
                w.put_u32(*n_users);
                w.put_u64(*deadline_ms);
                w.put_u64(*mesh_budget_ms);
            }
            ControlMsg::Ping => w.put_u8(2),
            ControlMsg::WorkOrder { epoch, session, seed, bids, peers } => {
                w.put_u8(3);
                w.put_u64(*epoch);
                w.put_u64(*session);
                w.put_u64(*seed);
                bids.encode(w);
                peers.encode(w);
            }
            ControlMsg::OutcomeReport { epoch, id, outcome } => {
                w.put_u8(4);
                w.put_u64(*epoch);
                w.put_u32(*id);
                outcome.encode(w);
            }
            ControlMsg::Shutdown => w.put_u8(5),
        }
    }
}

impl Decode for ControlMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(ControlMsg::Join { id: r.get_u32()?, mesh_addr: String::decode(r)? }),
            1 => Ok(ControlMsg::JoinAck {
                incarnation: r.get_u32()?,
                m: r.get_u32()?,
                k: r.get_u32()?,
                n_users: r.get_u32()?,
                deadline_ms: r.get_u64()?,
                mesh_budget_ms: r.get_u64()?,
            }),
            2 => Ok(ControlMsg::Ping),
            3 => Ok(ControlMsg::WorkOrder {
                epoch: r.get_u64()?,
                session: r.get_u64()?,
                seed: r.get_u64()?,
                bids: BidVector::decode(r)?,
                peers: Vec::decode(r)?,
            }),
            4 => Ok(ControlMsg::OutcomeReport {
                epoch: r.get_u64()?,
                id: r.get_u32()?,
                outcome: Outcome::decode(r)?,
            }),
            5 => Ok(ControlMsg::Shutdown),
            tag => Err(CodecError::InvalidTag { what: "ControlMsg", tag }),
        }
    }
}

/// Write one length-prefixed control frame.
///
/// # Errors
///
/// Any socket write error (the connection is considered lost).
pub fn write_frame(stream: &mut TcpStream, msg: &ControlMsg) -> io::Result<()> {
    let payload = msg.encode_to_bytes();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "control frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&payload)
}

/// Read one length-prefixed control frame (blocking, honours the
/// stream's read timeout).
///
/// # Errors
///
/// Socket errors, oversized frames, or undecodable payloads — in every
/// case the connection is considered lost.
pub fn read_frame(stream: &mut TcpStream) -> io::Result<ControlMsg> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_CONTROL_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control frame of {len} bytes exceeds the {MAX_CONTROL_FRAME} cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    ControlMsg::decode_all(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad control frame: {e}")))
}

/// Errors of the coordinator and provider roles.
#[derive(Debug)]
pub enum ClusterError {
    /// The cluster configuration is invalid.
    Config(String),
    /// A socket operation failed.
    Io(io::Error),
    /// The coordinator's journal failed.
    Journal(JournalError),
    /// Not every provider joined within the bring-up budget; names the
    /// providers that never arrived.
    BringUp {
        /// `"provider <id>"` per missing peer.
        missing: Vec<String>,
    },
    /// A provider exhausted its reconnect budget without reaching the
    /// coordinator.
    ReconnectExhausted {
        /// Dial attempts consumed.
        attempts: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "invalid cluster config: {msg}"),
            ClusterError::Io(e) => write!(f, "cluster i/o error: {e}"),
            ClusterError::Journal(e) => write!(f, "coordinator journal error: {e}"),
            ClusterError::BringUp { missing } => write!(
                f,
                "cluster bring-up expired with {} provider(s) missing: {}",
                missing.len(),
                missing.join(", ")
            ),
            ClusterError::ReconnectExhausted { attempts } => {
                write!(f, "reconnect budget exhausted after {attempts} dial attempt(s)")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<JournalError> for ClusterError {
    fn from(e: JournalError) -> ClusterError {
        ClusterError::Journal(e)
    }
}

/// Configuration of a coordinator run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Providers in the market (`m > 2k`).
    pub m: usize,
    /// Tolerated coalition size.
    pub k: usize,
    /// User slots per epoch.
    pub n_users: usize,
    /// Epochs to clear before shutting the cluster down.
    pub epochs: u64,
    /// Base seed; epoch seeds derive from it exactly as the in-process
    /// market's do.
    pub seed: u64,
    /// Session id of epoch 0 (epoch `e` clears session
    /// `first_session + e`).
    pub first_session: u64,
    /// Per-session drive deadline handed to providers.
    pub session_deadline: Duration,
    /// Per-epoch mesh bring-up budget handed to providers.
    pub mesh_budget: Duration,
    /// How long the coordinator waits for all `m` providers to join
    /// before the first epoch.
    pub join_timeout: Duration,
    /// Minimum spacing between epoch starts (zero = clear
    /// back-to-back). Pacing keeps epoch boundaries — the rejoin
    /// points — spread out in real time, the open-world cadence of a
    /// deployed market.
    pub epoch_period: Duration,
    /// Heartbeat failure-detector timeouts.
    pub liveness: LivenessConfig,
    /// Write-ahead journal path (`None` = no journal).
    pub journal: Option<PathBuf>,
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
}

impl ClusterConfig {
    /// A config with the cluster defaults: 8 epochs, seed 42, 5 s
    /// session deadline, 2 s mesh budget, 30 s join timeout, default
    /// liveness timeouts, no journal.
    pub fn new(m: usize, k: usize, n_users: usize) -> ClusterConfig {
        ClusterConfig {
            m,
            k,
            n_users,
            epochs: 8,
            seed: 42,
            first_session: 1,
            session_deadline: Duration::from_secs(5),
            mesh_budget: Duration::from_secs(2),
            join_timeout: Duration::from_secs(30),
            epoch_period: Duration::ZERO,
            liveness: LivenessConfig::default(),
            journal: None,
            fsync: FsyncPolicy::Always,
        }
    }

    /// Check the paper's `m > 2k` bound and basic sanity.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.m == 0 || self.m <= 2 * self.k {
            return Err(ClusterError::Config(format!(
                "m must exceed 2k (got m={}, k={})",
                self.m, self.k
            )));
        }
        if self.n_users == 0 {
            return Err(ClusterError::Config("n_users must be at least 1".into()));
        }
        Ok(())
    }
}

/// One epoch as the coordinator saw it.
#[derive(Debug, Clone)]
pub struct ClusterEpoch {
    /// Epoch number.
    pub epoch: u64,
    /// Session id the epoch cleared under.
    pub session: u64,
    /// Accepted (journaled) bids.
    pub accepted: u64,
    /// The unanimous outcome (⊥ on abort).
    pub outcome: Outcome,
    /// Abort classification (`None` when cleared).
    pub reason: Option<AbortReason>,
    /// Dispatch-to-seal close latency.
    pub latency: Duration,
}

/// End-of-run summary of a coordinator.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Every epoch in order.
    pub epochs: Vec<ClusterEpoch>,
    /// Provider rejoins the liveness layer counted.
    pub reconnects: u64,
}

impl ClusterReport {
    /// Epochs that reached a unanimous non-⊥ outcome.
    pub fn cleared(&self) -> u64 {
        self.epochs.iter().filter(|e| !e.outcome.is_abort()).count() as u64
    }

    /// Epochs that aborted.
    pub fn aborted(&self) -> u64 {
        self.epochs.iter().filter(|e| e.outcome.is_abort()).count() as u64
    }

    /// Aborts classified `PeerDown`.
    pub fn peer_down_aborts(&self) -> u64 {
        self.epochs.iter().filter(|e| e.reason == Some(AbortReason::PeerDown)).count() as u64
    }
}

/// Liveness + connection state shared between the accept/reader
/// threads and the epoch driver.
struct Shared {
    tracker: Mutex<LivenessTracker>,
    /// Per-peer control writer of the *current* life.
    writers: Mutex<Vec<Option<TcpStream>>>,
    /// Per-peer mesh listener address of the current life.
    mesh_addrs: Mutex<Vec<Option<String>>>,
    stop: AtomicBool,
}

enum Event {
    Joined,
    Report { epoch: u64, peer: usize, outcome: Outcome },
    Disconnected,
}

/// The coordinator role: owns the control listener, the liveness
/// tracker, epoch identity, bid generation and the journal; drives the
/// m-provider cluster through [`ClusterConfig::epochs`] epochs.
pub struct Coordinator {
    config: ClusterConfig,
    addr: SocketAddr,
    shared: Arc<Shared>,
    events: mpsc::Receiver<Event>,
    threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Start the control plane on `listener` (accepting joins
    /// immediately) without driving any epoch yet.
    ///
    /// # Errors
    ///
    /// Invalid configuration or listener setup failure.
    pub fn new(listener: TcpListener, config: ClusterConfig) -> Result<Coordinator, ClusterError> {
        config.validate()?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            tracker: Mutex::new(LivenessTracker::new(config.m, config.liveness)),
            writers: Mutex::new((0..config.m).map(|_| None).collect()),
            mesh_addrs: Mutex::new(vec![None; config.m]),
            stop: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel();

        let accept_shared = Arc::clone(&shared);
        let accept_tx = tx.clone();
        let accept_cfg = config.clone();
        let accept = thread::spawn(move || {
            while !accept_shared.stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let shared = Arc::clone(&accept_shared);
                        let tx = accept_tx.clone();
                        let cfg = accept_cfg.clone();
                        thread::spawn(move || serve_connection(stream, shared, tx, cfg));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(5)),
                }
            }
        });

        let tick_shared = Arc::clone(&shared);
        let ticker = thread::spawn(move || {
            while !tick_shared.stop.load(Ordering::Relaxed) {
                tick_shared.tracker.lock().expect("tracker lock").tick(Instant::now());
                thread::sleep(Duration::from_millis(50));
            }
        });

        Ok(Coordinator { config, addr, shared, events: rx, threads: vec![accept, ticker] })
    }

    /// The control listener's bound address (what providers `--join`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The liveness gauges this coordinator keeps current — register
    /// them with [`crate::register_liveness_metrics`].
    pub fn metrics(&self) -> LivenessMetrics {
        self.shared.tracker.lock().expect("tracker lock").metrics()
    }

    /// Drive the full run: wait for all providers to join, clear
    /// [`ClusterConfig::epochs`] epochs (sealing every one onto the
    /// journal), then broadcast [`ControlMsg::Shutdown`] and tear the
    /// control plane down. `on_epoch` observes each epoch as it seals.
    ///
    /// # Errors
    ///
    /// Bring-up expiry, journal creation/append failures, or listener
    /// errors. Provider deaths are **not** errors — they classify
    /// epochs as `PeerDown` aborts.
    pub fn run(
        mut self,
        mut on_epoch: impl FnMut(&ClusterEpoch),
    ) -> Result<ClusterReport, ClusterError> {
        let result = self.run_inner(&mut on_epoch);
        self.teardown();
        result
    }

    fn run_inner(
        &mut self,
        on_epoch: &mut impl FnMut(&ClusterEpoch),
    ) -> Result<ClusterReport, ClusterError> {
        let config = self.config.clone();
        // Bring-up: every provider must join once before epoch 0.
        let deadline = Instant::now() + config.join_timeout;
        loop {
            if self.shared.tracker.lock().expect("tracker lock").all_up() {
                break;
            }
            if Instant::now() >= deadline {
                let tracker = self.shared.tracker.lock().expect("tracker lock");
                let missing = (0..config.m)
                    .filter(|&p| !matches!(tracker.state(p), PeerState::Up | PeerState::Suspect))
                    .map(|p| format!("provider {p}"))
                    .collect();
                return Err(ClusterError::BringUp { missing });
            }
            // Joins arrive as events; the sleep below bounds the poll.
            let _ = self.events.recv_timeout(Duration::from_millis(50));
        }

        let journal = match &config.journal {
            Some(path) => Some(Journal::create(path, config.fsync)?),
            None => None,
        };

        let mut epochs = Vec::with_capacity(config.epochs as usize);
        let mut previous_start: Option<Instant> = None;
        for epoch in 0..config.epochs {
            if let Some(prev) = previous_start {
                let since = prev.elapsed();
                if since < config.epoch_period {
                    thread::sleep(config.epoch_period - since);
                }
            }
            let started = Instant::now();
            previous_start = Some(started);
            let session = config.first_session + epoch;
            let seed = config.seed.wrapping_add((epoch + 1).wrapping_mul(7919));
            let bids = generate_epoch_bids(config.n_users, config.m, seed);
            let accepted = bids.valid_user_bids().count() as u64;
            if let Some(journal) = &journal {
                // Write-ahead: bids hit the disk before the epoch counts.
                for (user, bid) in bids.valid_user_bids() {
                    journal.append_accepted(epoch, user, *bid)?;
                }
                for (slot, ask) in bids.asks().iter().enumerate() {
                    journal.append_ask(epoch, slot as u64, *ask)?;
                }
            }

            let (outcome, reason) = self.clear_epoch(epoch, session, seed, &bids);
            if let Some(journal) = &journal {
                journal.append_seal(
                    epoch,
                    SessionId(session),
                    seed,
                    accepted,
                    bids,
                    "double",
                    outcome.clone(),
                )?;
            }
            let record = ClusterEpoch {
                epoch,
                session,
                accepted,
                outcome,
                reason,
                latency: started.elapsed(),
            };
            on_epoch(&record);
            epochs.push(record);
        }

        if let Some(journal) = &journal {
            journal.sync()?;
        }
        let reconnects = self.metrics().reconnects_total();
        Ok(ClusterReport { epochs, reconnects })
    }

    /// Dispatch one epoch's work orders and fold the reports into the
    /// unanimous Definition-1 outcome. Never blocks past
    /// `session_deadline + mesh_budget +` grace; a peer that is `Down`
    /// (and silent) resolves the epoch immediately.
    fn clear_epoch(
        &mut self,
        epoch: u64,
        session: u64,
        seed: u64,
        bids: &BidVector,
    ) -> (Outcome, Option<AbortReason>) {
        let m = self.config.m;
        let (all_up, peers) = {
            let tracker = self.shared.tracker.lock().expect("tracker lock");
            let mesh_addrs = self.shared.mesh_addrs.lock().expect("mesh_addrs lock");
            let peers: Vec<PeerInfo> = (0..m)
                .map(|p| PeerInfo {
                    id: p as u32,
                    mesh_addr: mesh_addrs[p].clone().unwrap_or_default(),
                    incarnation: tracker.incarnation(p),
                })
                .collect();
            (tracker.all_up(), peers)
        };
        if !all_up {
            // Bounded degradation: do not dispatch into a hole.
            return (Outcome::Abort, Some(AbortReason::PeerDown));
        }

        let order = ControlMsg::WorkOrder { epoch, session, seed, bids: bids.clone(), peers };
        let mut dispatched = vec![false; m];
        {
            let mut writers = self.shared.writers.lock().expect("writers lock");
            for (peer, slot) in writers.iter_mut().enumerate() {
                if let Some(stream) = slot.as_mut() {
                    dispatched[peer] = write_frame(stream, &order).is_ok();
                }
            }
        }
        if dispatched.iter().any(|d| !d) {
            // A write failed mid-dispatch: the reader thread will mark
            // the peer Down; the peers that did get the order resolve
            // to ⊥ on their own deadline.
            return (Outcome::Abort, Some(AbortReason::PeerDown));
        }

        let mut reports: Vec<Option<Outcome>> = vec![None; m];
        let grace = Duration::from_secs(1);
        let deadline =
            Instant::now() + self.config.session_deadline + self.config.mesh_budget + grace;
        loop {
            if reports.iter().all(Option::is_some) {
                break;
            }
            let missing_all_down = {
                let tracker = self.shared.tracker.lock().expect("tracker lock");
                reports.iter().enumerate().filter(|(_, r)| r.is_none()).all(|(p, _)| {
                    matches!(tracker.state(p), PeerState::Down | PeerState::Reconnecting)
                })
            };
            if missing_all_down {
                // Every report still owed is owed by a dead peer: the
                // epoch resolves now, not at the session deadline.
                return (Outcome::Abort, Some(AbortReason::PeerDown));
            }
            if Instant::now() >= deadline {
                // A live-looking peer never reported: it is unreachable
                // for epoch purposes, which is the same outage.
                return (Outcome::Abort, Some(AbortReason::PeerDown));
            }
            match self.events.recv_timeout(Duration::from_millis(25)) {
                Ok(Event::Report { epoch: e, peer, outcome }) if e == epoch && peer < m => {
                    reports[peer] = Some(outcome);
                }
                Ok(_) | Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        let folded = unanimous(reports.iter().map(Option::as_ref));
        if !folded.is_abort() {
            return (folded, None);
        }
        // Classify the abort: all decided non-⊥ but disagreeing is the
        // paper's divergence case; any ⊥ report with a death behind it
        // is PeerDown; otherwise the session ran out of time.
        let all_decided = reports.iter().all(|r| matches!(r, Some(o) if !o.is_abort()));
        let any_down = {
            let tracker = self.shared.tracker.lock().expect("tracker lock");
            (0..m).any(|p| matches!(tracker.state(p), PeerState::Down | PeerState::Reconnecting))
        };
        let reason = if all_decided {
            AbortReason::Divergence
        } else if any_down {
            AbortReason::PeerDown
        } else {
            AbortReason::Deadline
        };
        (Outcome::Abort, Some(reason))
    }

    fn teardown(&mut self) {
        {
            let mut writers = self.shared.writers.lock().expect("writers lock");
            for slot in writers.iter_mut() {
                if let Some(stream) = slot.as_mut() {
                    let _ = write_frame(stream, &ControlMsg::Shutdown);
                }
            }
        }
        self.shared.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One control connection's lifecycle on the coordinator: Join →
/// JoinAck, then Ping/OutcomeReport until the socket dies.
fn serve_connection(
    mut stream: TcpStream,
    shared: Arc<Shared>,
    events: mpsc::Sender<Event>,
    config: ClusterConfig,
) {
    let _ = stream.set_nodelay(true);
    // A stray that connects and says nothing must not pin a thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Ok(ControlMsg::Join { id, mesh_addr }) = read_frame(&mut stream) else { return };
    let peer = id as usize;
    if peer >= config.m {
        return;
    }
    let incarnation = {
        let mut tracker = shared.tracker.lock().expect("tracker lock");
        tracker.begin_reconnect(peer);
        tracker.join(peer, Instant::now())
    };
    shared.mesh_addrs.lock().expect("mesh_addrs lock")[peer] = Some(mesh_addr);
    let ack = ControlMsg::JoinAck {
        incarnation,
        m: config.m as u32,
        k: config.k as u32,
        n_users: config.n_users as u32,
        deadline_ms: config.session_deadline.as_millis() as u64,
        mesh_budget_ms: config.mesh_budget.as_millis() as u64,
    };
    if write_frame(&mut stream, &ack).is_err() {
        shared.tracker.lock().expect("tracker lock").disconnect(peer);
        return;
    }
    match stream.try_clone() {
        Ok(writer) => {
            shared.writers.lock().expect("writers lock")[peer] = Some(writer);
        }
        Err(_) => {
            shared.tracker.lock().expect("tracker lock").disconnect(peer);
            return;
        }
    }
    let _ = events.send(Event::Joined);
    let _ = stream.set_read_timeout(None);

    loop {
        match read_frame(&mut stream) {
            Ok(ControlMsg::Ping) => {
                shared.tracker.lock().expect("tracker lock").heartbeat(peer, Instant::now());
            }
            Ok(ControlMsg::OutcomeReport { epoch, id, outcome }) if id as usize == peer => {
                let _ = events.send(Event::Report { epoch, peer, outcome });
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    // Only this life may declare the peer dead: a rejoin may already
    // have superseded this connection.
    {
        let mut tracker = shared.tracker.lock().expect("tracker lock");
        if tracker.incarnation(peer) == incarnation {
            tracker.disconnect(peer);
            shared.writers.lock().expect("writers lock")[peer] = None;
        }
    }
    let _ = events.send(Event::Disconnected);
}

/// Configuration of a provider role process.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// This provider's id in `0..m`.
    pub id: usize,
    /// The coordinator's control address (`--join`).
    pub coordinator: String,
    /// Where to bind the mesh listener (default an ephemeral loopback
    /// port; the coordinator learns the bound address from the Join).
    pub mesh_listen: String,
    /// First redial delay of the reconnect backoff.
    pub backoff_base: Duration,
    /// Redial delay ceiling.
    pub backoff_cap: Duration,
    /// Dial attempts before the provider gives up for good.
    pub reconnect_budget: u32,
    /// Control-plane heartbeat period.
    pub heartbeat: Duration,
    /// Jitter seed of the backoff schedule.
    pub backoff_seed: u64,
}

impl ProviderConfig {
    /// Defaults: ephemeral loopback mesh listener, 50 ms → 2 s backoff
    /// with a budget of 40 dials, 150 ms heartbeats, id-derived jitter.
    pub fn new(id: usize, coordinator: impl Into<String>) -> ProviderConfig {
        ProviderConfig {
            id,
            coordinator: coordinator.into(),
            mesh_listen: "127.0.0.1:0".into(),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            reconnect_budget: 40,
            heartbeat: Duration::from_millis(150),
            backoff_seed: id as u64 + 1,
        }
    }
}

/// End-of-run summary of a provider.
#[derive(Debug, Clone, Default)]
pub struct ProviderReport {
    /// Work orders executed.
    pub epochs: u64,
    /// Epochs this provider decided non-⊥.
    pub cleared: u64,
    /// Epochs this provider decided ⊥.
    pub aborted: u64,
    /// Control-plane reconnects after the first successful join.
    pub rejoins: u32,
}

/// The provider role: join the coordinator (redialling under backoff),
/// then clear every [`ControlMsg::WorkOrder`] over a fresh per-epoch
/// [`MuxEndpoint`] mesh until [`ControlMsg::Shutdown`].
///
/// A severed control connection sends the provider back to the dial
/// loop: it rejoins under a fresh incarnation and resumes at the next
/// epoch boundary. Mesh bring-up failures (a dead peer mid-epoch)
/// resolve to ⊥, never a hang.
///
/// # Errors
///
/// Local setup failures (mesh listener bind) or an exhausted reconnect
/// budget. Peer and coordinator deaths during a run are handled, not
/// errors.
pub fn run_provider(config: ProviderConfig) -> Result<ProviderReport, ClusterError> {
    let listener = TcpListener::bind(&config.mesh_listen)?;
    let mesh_addr = listener.local_addr()?.to_string();
    let program = Arc::new(DoubleAuctionProgram::new());
    let mut backoff = Backoff::new(
        config.backoff_base,
        config.backoff_cap,
        config.reconnect_budget,
        config.backoff_seed,
    );
    let mut report = ProviderReport::default();
    let mut joined_before = false;

    loop {
        // Dial the coordinator, paced by the jittered backoff.
        let mut stream = loop {
            match TcpStream::connect(&config.coordinator) {
                Ok(stream) => break stream,
                Err(_) => match backoff.next_delay() {
                    Some(delay) => thread::sleep(delay),
                    None => {
                        return Err(ClusterError::ReconnectExhausted {
                            attempts: backoff.attempts(),
                        })
                    }
                },
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let handshake = write_frame(
            &mut stream,
            &ControlMsg::Join { id: config.id as u32, mesh_addr: mesh_addr.clone() },
        )
        .and_then(|()| read_frame(&mut stream));
        let Ok(ControlMsg::JoinAck { incarnation, m, k, n_users, deadline_ms, mesh_budget_ms }) =
            handshake
        else {
            match backoff.next_delay() {
                Some(delay) => {
                    thread::sleep(delay);
                    continue;
                }
                None => {
                    return Err(ClusterError::ReconnectExhausted { attempts: backoff.attempts() })
                }
            }
        };
        backoff.reset();
        let _ = stream.set_read_timeout(None);
        if joined_before {
            report.rejoins += 1;
        }
        joined_before = true;

        // Heartbeat and outcome reports share one mutexed writer.
        let writer = Arc::new(Mutex::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(e) => return Err(ClusterError::Io(e)),
        }));
        let hb_stop = Arc::new(AtomicBool::new(false));
        let heartbeat = {
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&hb_stop);
            let period = config.heartbeat;
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let beat =
                        write_frame(&mut writer.lock().expect("writer lock"), &ControlMsg::Ping);
                    if beat.is_err() {
                        break;
                    }
                    thread::sleep(period);
                }
            })
        };

        // Serve work orders until shutdown or a dead control link.
        let lost_link = loop {
            match read_frame(&mut stream) {
                Ok(ControlMsg::WorkOrder { epoch, session, seed, bids, peers }) => {
                    let outcome = clear_one_epoch(
                        &config,
                        &listener,
                        incarnation,
                        m as usize,
                        k as usize,
                        n_users as usize,
                        session,
                        seed,
                        bids,
                        &peers,
                        Duration::from_millis(deadline_ms),
                        Duration::from_millis(mesh_budget_ms),
                        &program,
                    );
                    report.epochs += 1;
                    if outcome.is_abort() {
                        report.aborted += 1;
                    } else {
                        report.cleared += 1;
                    }
                    let sent = write_frame(
                        &mut writer.lock().expect("writer lock"),
                        &ControlMsg::OutcomeReport { epoch, id: config.id as u32, outcome },
                    );
                    if sent.is_err() {
                        break true;
                    }
                }
                Ok(ControlMsg::Shutdown) => break false,
                Ok(_) => {}
                Err(_) => break true,
            }
        };
        hb_stop.store(true, Ordering::Relaxed);
        let _ = heartbeat.join();
        if !lost_link {
            return Ok(report);
        }
        // Control link died: rejoin at the next epoch boundary.
    }
}

/// Run one epoch's session: bring up the per-epoch mesh under the
/// incarnation hello, drive the engine to a decision, ⊥ on any failure.
#[allow(clippy::too_many_arguments)]
fn clear_one_epoch(
    config: &ProviderConfig,
    listener: &TcpListener,
    incarnation: u32,
    m: usize,
    k: usize,
    n_users: usize,
    session: u64,
    seed: u64,
    bids: BidVector,
    peers: &[PeerInfo],
    deadline: Duration,
    mesh_budget: Duration,
    program: &Arc<DoubleAuctionProgram>,
) -> Outcome {
    if peers.len() != m {
        return Outcome::Abort;
    }
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(m);
    for peer in peers {
        match peer.mesh_addr.parse() {
            Ok(addr) => addrs.push(addr),
            Err(_) => return Outcome::Abort,
        }
    }
    let min_incarnations: Vec<u32> = peers.iter().map(|p| p.incarnation).collect();
    let options = MeshOptions { incarnation, min_incarnations, budget: mesh_budget };
    let Ok(listener) = listener.try_clone() else { return Outcome::Abort };
    let me = ProviderId(config.id as u32);
    let mut endpoint = match MuxEndpoint::establish_with_options(me, 1, listener, &addrs, &options)
    {
        // One lane: this process runs exactly one session at a time.
        Ok(mut lanes) => lanes.remove(0),
        // A dead peer never completes bring-up: honest-or-⊥, bounded
        // by the mesh budget.
        Err(_) => return Outcome::Abort,
    };
    let cfg = FrameworkConfig::new(m, k, n_users, m).with_session(SessionId(session));
    let mut engine = SessionEngine::new(
        cfg,
        me,
        Arc::clone(program),
        bids,
        // The engine seed fan-out rule of every other runtime.
        seed.wrapping_add(config.id as u64 + 1),
    );
    drive(&mut engine, &mut endpoint, deadline)
}

/// Deterministic per-epoch workload, derived purely from the epoch
/// seed: §6.2-shaped unit valuations in `[0.75, 1.25]`, demands in
/// `(0, 1]`, asks priced in `[0.01, 0.5]` with capacity around the
/// demand share — gainful trades exist in most epochs, scarce ones in
/// some.
pub fn generate_epoch_bids(n_users: usize, m: usize, seed: u64) -> BidVector {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut builder = BidVector::builder(n_users, m);
    let mut total_demand_micro = 0u64;
    for i in 0..n_users {
        let valuation = Money::from_micro(750_000 + (next() % 500_001) as i64);
        let demand = Bw::from_micro(1 + next() % MICRO as u64);
        total_demand_micro += demand.micro();
        builder = builder.user_bid(i, UserBid::new(valuation, demand));
    }
    for j in 0..m {
        let unit_cost = Money::from_micro(10_000 + (next() % 490_001) as i64);
        let share = total_demand_micro / m as u64 + 1;
        let scale = 500_000 + next() % 1_500_001; // capacity factor in [0.5, 2.0]
        let capacity = Bw::from_micro((share as u128 * scale as u128 / MICRO as u128) as u64 + 1);
        builder = builder.provider_ask(j, ProviderAsk::new(unit_cost, capacity));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ControlMsg) {
        let bytes = msg.encode_to_bytes();
        assert_eq!(ControlMsg::decode_all(&bytes).expect("decodes"), msg);
    }

    #[test]
    fn control_messages_round_trip() {
        roundtrip(ControlMsg::Join { id: 2, mesh_addr: "127.0.0.1:4100".into() });
        roundtrip(ControlMsg::JoinAck {
            incarnation: 3,
            m: 3,
            k: 1,
            n_users: 8,
            deadline_ms: 5000,
            mesh_budget_ms: 2000,
        });
        roundtrip(ControlMsg::Ping);
        roundtrip(ControlMsg::WorkOrder {
            epoch: 7,
            session: 8,
            seed: 0xFEED,
            bids: generate_epoch_bids(4, 3, 99),
            peers: vec![
                PeerInfo { id: 0, mesh_addr: "127.0.0.1:1".into(), incarnation: 1 },
                PeerInfo { id: 1, mesh_addr: "127.0.0.1:2".into(), incarnation: 4 },
            ],
        });
        roundtrip(ControlMsg::OutcomeReport { epoch: 7, id: 1, outcome: Outcome::Abort });
        roundtrip(ControlMsg::Shutdown);
    }

    #[test]
    fn epoch_bids_are_deterministic_in_the_seed() {
        let a = generate_epoch_bids(16, 3, 1234);
        let b = generate_epoch_bids(16, 3, 1234);
        assert_eq!(a, b, "same seed, same workload");
        let c = generate_epoch_bids(16, 3, 1235);
        assert_ne!(a, c, "different seed, different workload");
        assert_eq!(a.num_users(), 16);
        assert_eq!(a.num_asks(), 3);
        for ask in a.asks() {
            assert!(ask.unit_cost().is_positive());
            assert!(!ask.capacity().is_zero());
        }
    }

    #[test]
    fn cluster_config_validates_the_coalition_bound() {
        assert!(ClusterConfig::new(3, 1, 4).validate().is_ok());
        assert!(matches!(ClusterConfig::new(2, 1, 4).validate(), Err(ClusterError::Config(_))));
        let mut cfg = ClusterConfig::new(3, 1, 4);
        cfg.n_users = 0;
        assert!(cfg.validate().is_err());
    }

    /// In-process smoke of the full cluster: one coordinator, three
    /// provider threads, real sockets — the process-kill harness in
    /// `tests/process_kill.rs` does the same over real child processes.
    #[test]
    fn cluster_clears_epochs_over_real_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut config = ClusterConfig::new(3, 1, 6);
        config.epochs = 3;
        config.join_timeout = Duration::from_secs(10);
        let coordinator = Coordinator::new(listener, config).expect("coordinator");
        let addr = coordinator.local_addr().to_string();

        let providers: Vec<_> = (0..3)
            .map(|id| {
                let addr = addr.clone();
                thread::spawn(move || run_provider(ProviderConfig::new(id, addr)))
            })
            .collect();

        let report = coordinator.run(|_| {}).expect("run");
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.cleared() + report.aborted(), 3);
        assert_eq!(report.reconnects, 0, "no deaths, no reconnects");
        // A quiet loopback cluster should actually clear.
        assert!(report.cleared() >= 1, "no epoch cleared: {:?}", report.epochs);
        for provider in providers {
            let provider_report = provider.join().expect("provider thread").expect("provider run");
            assert_eq!(provider_report.rejoins, 0);
            assert_eq!(provider_report.epochs, 3);
        }
    }
}
