//! Property tests for the cryptographic substrate.

use proptest::prelude::*;

use dauctioneer_crypto::{derive_seed, sha256, Commitment, CommitmentOpening, SeedDomain, Sha256};

proptest! {
    /// Incremental hashing equals one-shot hashing for every chunking.
    #[test]
    fn incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for cut in cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Commitments verify with the right opening and fail with any
    /// tampered payload or nonce.
    #[test]
    fn commitment_binding(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        nonce in any::<[u8; 32]>(),
        tamper_at in any::<usize>(),
    ) {
        let (commitment, opening) = Commitment::commit(&payload, nonce);
        prop_assert!(commitment.verify(&opening));

        // Tamper with one payload byte (when non-empty).
        if !payload.is_empty() {
            let mut bad = payload.clone();
            let i = tamper_at % bad.len();
            bad[i] ^= 0x01;
            let forged = CommitmentOpening::from_parts(nonce, bad);
            prop_assert!(!commitment.verify(&forged));
        }

        // Tamper with the nonce.
        let mut bad_nonce = nonce;
        bad_nonce[tamper_at % 32] ^= 0x01;
        let forged = CommitmentOpening::from_parts(bad_nonce, payload.clone());
        prop_assert!(!commitment.verify(&forged));
    }

    /// Distinct payloads give distinct digests (collision sanity over the
    /// sampled space).
    #[test]
    fn distinct_inputs_distinct_digests(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// Seed derivation separates domains, materials and contexts.
    #[test]
    fn seed_derivation_separates(
        material in proptest::collection::vec(any::<u8>(), 0..32),
        context in proptest::collection::vec(any::<u8>(), 0..32),
        extra in 1u8..255,
    ) {
        let base = derive_seed(SeedDomain::Allocator, &material, &context);
        // Same inputs: same seed.
        prop_assert_eq!(base, derive_seed(SeedDomain::Allocator, &material, &context));
        // Different domain: different seed.
        prop_assert_ne!(base, derive_seed(SeedDomain::Workload, &material, &context));
        // Extended material: different seed.
        let mut material2 = material.clone();
        material2.push(extra);
        prop_assert_ne!(base, derive_seed(SeedDomain::Allocator, &material2, &context));
    }
}
