//! Cryptographic substrate for the distributed auctioneer.
//!
//! The common-coin building block of the paper (from Abraham, Dolev and
//! Halpern's leader-election protocols) requires every provider to *commit*
//! to a random value before learning the values of others, and the rational
//! consensus block uses the same commit–reveal machinery to produce an
//! unbiasable shared coin. A hash-based commitment needs a cryptographic
//! hash function; since the dependency budget of this workspace does not
//! include one, this crate implements **SHA-256 (FIPS 180-4)** from scratch
//! — validated against the NIST test vectors — plus the small constructions
//! the protocol needs on top of it:
//!
//! * [`sha256()`] / [`Sha256`] — the hash itself,
//! * [`Commitment`] / [`CommitmentOpening`] — a binding and (computationally)
//!   hiding commitment to arbitrary bytes,
//! * [`derive_seed`] — domain-separated derivation of deterministic RNG
//!   seeds from agreed-upon randomness (this is how a shared coin value is
//!   stretched into the random stream driving the allocation algorithm).
//!
//! # Example
//!
//! ```
//! use dauctioneer_crypto::{Commitment, CommitmentOpening};
//!
//! // Provider commits to its random contribution...
//! let (commitment, opening) = Commitment::commit(b"my random value", [7u8; 32]);
//! // ...broadcasts `commitment`, later reveals `opening`:
//! assert!(commitment.verify(&opening));
//! assert_eq!(opening.payload(), b"my random value");
//! ```

pub mod chain;
pub mod commit;
pub mod seed;
pub mod sha256;

pub use chain::{chain_genesis, chain_link, SettlementChain};
pub use commit::{Commitment, CommitmentOpening};
pub use seed::{derive_seed, SeedDomain};
pub use sha256::{sha256, Digest, Sha256};
