//! The settlement hash chain: tamper-evident linking of sealed epoch
//! records.
//!
//! A continuous market seals every cleared epoch into an append-only
//! settlement log. To make that log *auditable by third parties* — not
//! just readable — each seal commits to the digest of the seal before
//! it: `dᵢ = H(domain ‖ dᵢ₋₁ ‖ contentᵢ)`, anchored at a fixed,
//! domain-separated genesis digest. Any modification of a sealed record,
//! and any removal, insertion, or reordering of seals, breaks every
//! digest from that point on, so a verifier holding only the log can
//! name the first seal at which history diverges.
//!
//! This module is deliberately tiny: one genesis constant, one link
//! function, and a cursor ([`SettlementChain`]) that both the sealing
//! writer and the offline verifier drive — using the *same* code path is
//! what makes "verifier accepts what the writer wrote" a tautology
//! rather than a test obligation.
//!
//! # Example
//!
//! ```
//! use dauctioneer_crypto::SettlementChain;
//!
//! let mut writer = SettlementChain::new();
//! let d0 = writer.extend(b"epoch 0 outcome");
//! let d1 = writer.extend(b"epoch 1 outcome");
//!
//! // An independent verifier replays the log and reaches the same tip.
//! let mut verifier = SettlementChain::new();
//! assert_eq!(verifier.extend(b"epoch 0 outcome"), d0);
//! assert_eq!(verifier.extend(b"epoch 1 outcome"), d1);
//! assert_eq!(verifier.tip(), writer.tip());
//! ```

use crate::sha256::{Digest, Sha256};

/// Domain-separation prefix for settlement-chain links, disjoint from
/// the commitment domain so chain digests can never collide with
/// commitment hashes.
const CHAIN_DOMAIN: &[u8] = b"dauctioneer/settlement-chain/v1";

/// The fixed genesis digest every settlement chain starts from:
/// `H(domain ‖ "genesis")`. A constant (rather than the zero digest) so
/// an all-zeroes file cannot masquerade as a valid empty chain.
pub fn chain_genesis() -> Digest {
    let mut h = Sha256::new();
    h.update(CHAIN_DOMAIN);
    h.update(b"genesis");
    h.finalize()
}

/// One chain link: the digest committing to `content` *and* the entire
/// history before it, `H(domain ‖ prev ‖ content)`.
pub fn chain_link(prev: &Digest, content: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(CHAIN_DOMAIN);
    h.update(prev.as_bytes());
    h.update(content);
    h.finalize()
}

/// A running settlement chain: the tip digest plus the extend operation.
///
/// The sealing writer extends it once per sealed epoch; the offline
/// verifier extends an independent instance over the same record bytes
/// and compares digests link by link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettlementChain {
    tip: Digest,
    links: u64,
}

impl Default for SettlementChain {
    fn default() -> Self {
        Self::new()
    }
}

impl SettlementChain {
    /// A fresh chain at [`chain_genesis`].
    pub fn new() -> SettlementChain {
        SettlementChain { tip: chain_genesis(), links: 0 }
    }

    /// Resume a chain from a known tip (e.g. after recovering a journal
    /// whose sealed suffix was already verified).
    pub fn resume(tip: Digest, links: u64) -> SettlementChain {
        SettlementChain { tip, links }
    }

    /// Append one link over `content`; returns the new tip.
    pub fn extend(&mut self, content: &[u8]) -> Digest {
        self.tip = chain_link(&self.tip, content);
        self.links += 1;
        self.tip
    }

    /// The digest of the latest link (genesis when empty).
    pub fn tip(&self) -> Digest {
        self.tip
    }

    /// Number of links extended so far.
    pub fn links(&self) -> u64 {
        self.links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn genesis_is_stable_and_domain_separated() {
        assert_eq!(chain_genesis(), chain_genesis());
        assert_ne!(chain_genesis(), sha256(b"genesis"), "domain prefix must matter");
        assert_ne!(chain_genesis(), Digest::default(), "genesis is not the zero digest");
    }

    #[test]
    fn identical_histories_reach_identical_tips() {
        let mut a = SettlementChain::new();
        let mut b = SettlementChain::new();
        for content in [b"one".as_slice(), b"two", b"three"] {
            assert_eq!(a.extend(content), b.extend(content));
        }
        assert_eq!(a.tip(), b.tip());
        assert_eq!(a.links(), 3);
    }

    #[test]
    fn any_divergence_breaks_every_later_link() {
        let mut honest = SettlementChain::new();
        let mut tampered = SettlementChain::new();
        honest.extend(b"epoch 0");
        tampered.extend(b"epoch 0");
        honest.extend(b"epoch 1");
        tampered.extend(b"epoch 1 (tampered)");
        assert_ne!(honest.tip(), tampered.tip());
        // The chains never re-converge, even over identical suffixes.
        for content in [b"epoch 2".as_slice(), b"epoch 3"] {
            assert_ne!(honest.extend(content), tampered.extend(content));
        }
    }

    #[test]
    fn reordering_links_changes_the_tip() {
        let mut ab = SettlementChain::new();
        ab.extend(b"a");
        ab.extend(b"b");
        let mut ba = SettlementChain::new();
        ba.extend(b"b");
        ba.extend(b"a");
        assert_ne!(ab.tip(), ba.tip());
    }

    #[test]
    fn resume_continues_the_same_chain() {
        let mut full = SettlementChain::new();
        full.extend(b"a");
        let mid_tip = full.extend(b"b");
        full.extend(b"c");

        let mut resumed = SettlementChain::resume(mid_tip, 2);
        resumed.extend(b"c");
        assert_eq!(resumed.tip(), full.tip());
        assert_eq!(resumed.links(), full.links());
    }

    #[test]
    fn link_depends_on_prev_and_content() {
        let g = chain_genesis();
        let d = chain_link(&g, b"x");
        assert_ne!(chain_link(&g, b"y"), d);
        assert_ne!(chain_link(&d, b"x"), d);
    }
}
