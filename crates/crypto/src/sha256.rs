//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The implementation is the straightforward specification transcription:
//! 512-bit blocks, 64 rounds, big-endian message schedule, Merkle–Damgård
//! padding. It is validated against the NIST CAVP short-message vectors in
//! the tests below. Performance is a non-goal — commitments in this system
//! hash a few dozen bytes per protocol round.

use std::fmt;

/// A 32-byte SHA-256 digest.
///
/// # Example
///
/// ```
/// use dauctioneer_crypto::sha256;
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// First 8 bytes of the digest as a little-endian `u64` (convenient for
    /// deriving RNG seeds and coin values from hashes).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use dauctioneer_crypto::{Sha256, sha256};
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 { state: H0, buffer: [0u8; 64], buffered: 0, total_len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let want = 64 - self.buffered;
            let take = want.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            self.compress(block.try_into().unwrap());
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        self.total_len = self.total_len.wrapping_sub(1); // update() counted the pad byte
        while self.buffered != 56 {
            let was = self.buffered;
            self.update(&[0]);
            self.total_len = self.total_len.wrapping_sub(1);
            debug_assert_ne!(was, self.buffered, "padding must make progress");
        }
        let block_rest = bit_len.to_be_bytes();
        self.update(&block_rest);
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / FIPS 180-4 reference vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(sha256(input).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64-byte padding boundaries.
        let known: &[(usize, &str)] = &[
            (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"),
            (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"),
            (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6"),
            (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34"),
            (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"),
            (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"),
        ];
        for (len, expected) in known {
            let data = vec![b'a'; *len];
            assert_eq!(sha256(&data).to_hex(), *expected, "len {len}");
        }
    }

    #[test]
    fn digest_display_and_prefix() {
        let d = sha256(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert_eq!(format!("{d:?}"), format!("Digest({})", d.to_hex()));
        let expected = u64::from_le_bytes(d.as_bytes()[..8].try_into().unwrap());
        assert_eq!(d.prefix_u64(), expected);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }
}
