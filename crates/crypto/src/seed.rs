//! Domain-separated derivation of deterministic RNG seeds.
//!
//! Once the providers agree on shared randomness through the common coin,
//! every replica must expand it into the *same* random stream for the
//! allocation algorithm. [`derive_seed`] hashes the agreed value together
//! with a [`SeedDomain`] label and context bytes, producing a 32-byte seed
//! suitable for `rand::SeedableRng::from_seed`.

use crate::sha256::Sha256;

/// What a derived seed will be used for. Distinct domains guarantee that
/// the same agreed randomness never produces correlated streams in two
/// different protocol roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedDomain {
    /// Randomness driving the allocation algorithm `A`.
    Allocator,
    /// Tie-break coin used by rational consensus to pick among inputs.
    ConsensusTieBreak,
    /// Transformation of the common-coin sum into a target distribution.
    CommonCoinTransform,
    /// Workload generation (test and benchmark harnesses).
    Workload,
}

impl SeedDomain {
    fn label(self) -> &'static [u8] {
        match self {
            SeedDomain::Allocator => b"dauctioneer/seed/allocator/v1",
            SeedDomain::ConsensusTieBreak => b"dauctioneer/seed/consensus-tiebreak/v1",
            SeedDomain::CommonCoinTransform => b"dauctioneer/seed/common-coin/v1",
            SeedDomain::Workload => b"dauctioneer/seed/workload/v1",
        }
    }
}

/// Derive a 32-byte RNG seed from agreed-upon randomness.
///
/// `material` is the agreed entropy (e.g. the common-coin output bytes);
/// `context` distinguishes multiple uses within one domain (e.g. the task
/// id whose computation needs randomness).
///
/// # Example
///
/// ```
/// use dauctioneer_crypto::{derive_seed, SeedDomain};
/// use rand::{SeedableRng, RngCore, rngs::StdRng};
///
/// let seed = derive_seed(SeedDomain::Allocator, b"agreed-coin-value", b"task-1");
/// let mut a = StdRng::from_seed(seed);
/// let mut b = StdRng::from_seed(seed);
/// assert_eq!(a.next_u64(), b.next_u64()); // replicas agree
/// ```
pub fn derive_seed(domain: SeedDomain, material: &[u8], context: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(domain.label());
    h.update(&(material.len() as u64).to_le_bytes());
    h.update(material);
    h.update(&(context.len() as u64).to_le_bytes());
    h.update(context);
    h.finalize().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        let a = derive_seed(SeedDomain::Allocator, b"m", b"c");
        let b = derive_seed(SeedDomain::Allocator, b"m", b"c");
        assert_eq!(a, b);
    }

    #[test]
    fn domains_are_separated() {
        let a = derive_seed(SeedDomain::Allocator, b"m", b"c");
        let b = derive_seed(SeedDomain::ConsensusTieBreak, b"m", b"c");
        let c = derive_seed(SeedDomain::CommonCoinTransform, b"m", b"c");
        let d = derive_seed(SeedDomain::Workload, b"m", b"c");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
    }

    #[test]
    fn contexts_are_separated() {
        let a = derive_seed(SeedDomain::Allocator, b"m", b"task-1");
        let b = derive_seed(SeedDomain::Allocator, b"m", b"task-2");
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") and ("a", "bc") must not collide.
        let a = derive_seed(SeedDomain::Allocator, b"ab", b"c");
        let b = derive_seed(SeedDomain::Allocator, b"a", b"bc");
        assert_ne!(a, b);
    }

    #[test]
    fn material_changes_seed() {
        let a = derive_seed(SeedDomain::Allocator, b"m1", b"c");
        let b = derive_seed(SeedDomain::Allocator, b"m2", b"c");
        assert_ne!(a, b);
    }
}
