//! Hash-based commitments for the commit–reveal coin protocols.
//!
//! A provider commits to a payload by publishing
//! `H(domain ‖ len(nonce) ‖ nonce ‖ payload)` where the nonce is 32 random
//! bytes. The commitment is *binding* (finding a second preimage would break
//! SHA-256) and *hiding* (the 256-bit nonce blinds low-entropy payloads such
//! as single coin bits).

use std::fmt;

use crate::sha256::{Digest, Sha256};

/// Domain-separation prefix so commitment hashes can never collide with
/// other hash uses in the system.
const COMMIT_DOMAIN: &[u8] = b"dauctioneer/commitment/v1";

/// A published commitment to a hidden payload.
///
/// # Example
///
/// ```
/// use dauctioneer_crypto::Commitment;
/// let (c, opening) = Commitment::commit(b"coin bits", [1u8; 32]);
/// assert!(c.verify(&opening));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Commitment(Digest);

impl Commitment {
    /// Commit to `payload` using the caller-supplied `nonce`.
    ///
    /// The nonce must be fresh, uniform randomness for the hiding property
    /// to hold; the protocol layer draws it from the provider's local RNG.
    /// Returns the commitment to broadcast and the opening to keep secret
    /// until the reveal round.
    pub fn commit(payload: &[u8], nonce: [u8; 32]) -> (Commitment, CommitmentOpening) {
        let opening = CommitmentOpening { nonce, payload: payload.to_vec() };
        (opening.commitment(), opening)
    }

    /// Check that `opening` opens this commitment.
    pub fn verify(&self, opening: &CommitmentOpening) -> bool {
        opening.commitment() == *self
    }

    /// The raw digest (for wire encoding).
    pub fn digest(&self) -> &Digest {
        &self.0
    }

    /// Reconstruct from a raw digest (for wire decoding).
    pub fn from_digest(d: Digest) -> Commitment {
        Commitment(d)
    }
}

impl fmt::Display for Commitment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "commit:{}", self.0)
    }
}

/// The secret opening of a [`Commitment`]: the nonce and the payload.
#[derive(Clone, PartialEq, Eq)]
pub struct CommitmentOpening {
    nonce: [u8; 32],
    payload: Vec<u8>,
}

impl CommitmentOpening {
    /// Reassemble an opening from its wire parts.
    pub fn from_parts(nonce: [u8; 32], payload: Vec<u8>) -> CommitmentOpening {
        CommitmentOpening { nonce, payload }
    }

    /// The committed payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The blinding nonce.
    pub fn nonce(&self) -> &[u8; 32] {
        &self.nonce
    }

    /// Recompute the commitment this opening corresponds to.
    pub fn commitment(&self) -> Commitment {
        let mut h = Sha256::new();
        h.update(COMMIT_DOMAIN);
        h.update(&(self.nonce.len() as u64).to_le_bytes());
        h.update(&self.nonce);
        h.update(&self.payload);
        Commitment(h.finalize())
    }
}

impl fmt::Debug for CommitmentOpening {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the nonce: openings are secrets until revealed.
        write!(f, "CommitmentOpening {{ payload: {} bytes, nonce: <hidden> }}", self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_verify_roundtrip() {
        let (c, o) = Commitment::commit(b"payload", [3u8; 32]);
        assert!(c.verify(&o));
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let (c, _) = Commitment::commit(b"payload", [3u8; 32]);
        let forged = CommitmentOpening::from_parts([3u8; 32], b"payloae".to_vec());
        assert!(!c.verify(&forged));
    }

    #[test]
    fn tampered_nonce_fails_verification() {
        let (c, _) = Commitment::commit(b"payload", [3u8; 32]);
        let forged = CommitmentOpening::from_parts([4u8; 32], b"payload".to_vec());
        assert!(!c.verify(&forged));
    }

    #[test]
    fn different_nonces_hide_equal_payloads() {
        let (c1, _) = Commitment::commit(b"0", [1u8; 32]);
        let (c2, _) = Commitment::commit(b"0", [2u8; 32]);
        assert_ne!(c1, c2, "equal payloads must be hidden by distinct nonces");
    }

    #[test]
    fn opening_exposes_parts() {
        let (_, o) = Commitment::commit(b"xyz", [9u8; 32]);
        assert_eq!(o.payload(), b"xyz");
        assert_eq!(o.nonce(), &[9u8; 32]);
    }

    #[test]
    fn debug_does_not_leak_nonce() {
        let (_, o) = Commitment::commit(b"secret", [7u8; 32]);
        let s = format!("{o:?}");
        assert!(s.contains("<hidden>"));
        assert!(!s.contains("secret"));
    }

    #[test]
    fn digest_roundtrip() {
        let (c, _) = Commitment::commit(b"p", [0u8; 32]);
        assert_eq!(Commitment::from_digest(*c.digest()), c);
    }
}
